"""Ablation A (Sec. II-A3): the ball radius selects the minimum hole size.

"The size of holes to be detected is adjustable by varying r ... if one
is interested in the boundary nodes of large holes only, a larger r can
be chosen.  As a result, a node on the boundary of a small hole cannot
find an empty unit ball."

The bench deploys a sphere with one small (~1.2 radio ranges) and one
large (~2.1 radio ranges) internal hole and sweeps r: at r ~= 1 both hole
boundaries are detected, at r = 1.6 only the large one, at r = 2.5
neither.
"""

from benchmarks.conftest import print_banner
from repro.evaluation.experiments import run_ball_radius_ablation
from repro.evaluation.reporting import format_table


def test_ablation_ball_radius(benchmark):
    points = benchmark.pedantic(run_ball_radius_ablation, rounds=1, iterations=1)

    print_banner("Ablation A -- ball radius vs minimum detectable hole size")
    print(
        format_table(
            ["ball radius", "small hole nodes", "large hole nodes", "groups"],
            [
                (f"{p.radius:.3f}", p.n_small_hole_detected, p.n_large_hole_detected, p.n_groups)
                for p in points
            ],
        )
    )

    base, mid, coarse = points
    assert base.n_small_hole_detected > 0
    assert base.n_large_hole_detected > 0
    # r = 1.6 suppresses the small hole but keeps the large one.
    assert mid.n_small_hole_detected < 0.5 * base.n_small_hole_detected
    assert mid.n_large_hole_detected > 0.5 * base.n_large_hole_detected
    # r = 2.5 suppresses both holes.
    assert coarse.n_large_hole_detected < 0.5 * base.n_large_hole_detected
