"""Ablation D: collection radius -- Algorithm 1's literal 1-hop reading
versus the 2-hop collection the paper's own analysis assumes.

Lemma 1 and Theorem 1 reason about nodes "within 2r" of the tested node,
but Algorithm 1 as printed collects one-hop neighbors only.  A candidate
ball reaches up to 2r away, so the 1-hop reading leaves ~2/3 of each
ball's volume unchecked and floods the interior with false positives at
realistic densities.  This bench quantifies the gap (see DESIGN.md's
"Design decisions").
"""

from benchmarks.conftest import print_banner
from repro.evaluation.experiments import run_collection_hops_ablation
from repro.evaluation.reporting import format_table

HOPS = (1, 2, 3)


def test_ablation_collection_hops(benchmark, bench_sphere_network):
    network = bench_sphere_network

    def sweep():
        return run_collection_hops_ablation(network, hops_values=HOPS)

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Ablation D -- UBF collection radius (hops)")
    print(
        format_table(
            ["hops", "found", "correct", "mistaken", "missing"],
            [
                (h, s.n_found, s.n_correct, s.n_mistaken, s.n_missing)
                for h, s in zip(HOPS, stats)
            ],
        )
    )

    one_hop, two_hop, three_hop = stats
    # The 1-hop reading floods the interior with mistaken detections.
    assert one_hop.n_mistaken > 1.5 * two_hop.n_mistaken
    # 3-hop adds little over 2-hop: balls reach at most 2r ~= 2 hops.
    assert abs(three_hop.n_mistaken - two_hop.n_mistaken) <= max(
        10, 0.25 * two_hop.n_mistaken
    )
    # All variants still find (nearly) the whole true boundary.
    for s in stats:
        assert s.n_missing <= 0.02 * s.n_truth
