"""Ablation G: detection quality versus nodal density.

The paper's networks have nodal degree 5..45 (average 18.5).  The bench
sweeps the target degree and shows the precision mechanism: at low
density, random voids inside the network exceed the unit ball and interior
nodes legitimately detect them (mistaken vs the surface-sample ground
truth explodes); beyond degree ~20 detection stabilizes.
"""

from benchmarks.conftest import print_banner
from repro import BoundaryDetector, DeploymentConfig, generate_network, scenario_by_name
from repro.evaluation.metrics import evaluate_detection
from repro.evaluation.reporting import format_table

TARGET_DEGREES = (12, 18, 24, 32, 40)


def test_ablation_density(benchmark):
    def sweep():
        rows = []
        for degree in TARGET_DEGREES:
            config = DeploymentConfig(
                n_surface=450, n_interior=750, target_degree=degree, seed=5
            )
            network = generate_network(
                scenario_by_name("sphere"), config, scenario="sphere"
            )
            result = BoundaryDetector().detect(network)
            rows.append(
                (
                    degree,
                    float(network.graph.degrees().mean()),
                    evaluate_detection(network, result),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Ablation G -- detection quality vs nodal density")
    print(
        format_table(
            ["target deg", "avg deg", "found", "correct", "mistaken", "missing"],
            [
                (t, f"{d:.1f}", s.n_found, s.n_correct, s.n_mistaken, s.n_missing)
                for t, d, s in rows
            ],
        )
    )

    # The true boundary is found at every density.
    for _, _, stats in rows:
        assert stats.correct_pct > 0.9
    # Mistaken detections shrink as density rises (voids close up).
    mistaken = [s.n_mistaken for _, _, s in rows]
    assert mistaken[-1] < mistaken[0]
