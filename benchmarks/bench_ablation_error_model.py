"""Ablation H: sensitivity to the ranging-error model.

The paper says only "we introduce a wide range of random errors, from 0
to 100% of the radio transmission radius, in the distance measurement" --
the error *distribution* is unspecified.  This bench compares detection
under three models at matched nominal levels:

* uniform-absolute ``d + U(-e, e)`` (this repo's default sweep axis),
* uniform-relative ``d * (1 + U(-e, e))`` (smaller absolute error on the
  short edges that dominate local geometry),
* Gaussian ``d + N(0, (e/sqrt(3))^2)`` (std matched to uniform-absolute).

The knee of the degradation curve shifts by model -- which is why
EXPERIMENTS.md reports curve *shape*, not the absolute knee position,
as the reproduced quantity.
"""

import numpy as np

from benchmarks.conftest import AGGREGATE_DEPLOY, print_banner
from repro import (
    BoundaryDetector,
    DetectorConfig,
    GaussianError,
    UniformAbsoluteError,
    UniformRelativeError,
    generate_network,
    scenario_by_name,
)
from repro.evaluation.metrics import evaluate_detection
from repro.evaluation.reporting import format_table

LEVELS = (0.1, 0.3)


def _models(level):
    return (
        ("uniform-absolute", UniformAbsoluteError(level)),
        ("uniform-relative", UniformRelativeError(level)),
        ("gaussian(matched)", GaussianError(level / np.sqrt(3.0))),
    )


def test_ablation_error_model(benchmark):
    network = generate_network(
        scenario_by_name("sphere"), AGGREGATE_DEPLOY, scenario="sphere"
    )

    def sweep():
        rows = []
        for level in LEVELS:
            for name, model in _models(level):
                config = DetectorConfig(error_model=model)
                result = BoundaryDetector(config).detect(
                    network, rng=np.random.default_rng(13)
                )
                rows.append((level, name, evaluate_detection(network, result)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Ablation H -- ranging-error model sensitivity")
    print(
        format_table(
            ["level", "model", "found", "correct", "mistaken", "missing"],
            [
                (f"{lvl:.0%}", name, s.n_found, s.n_correct, s.n_mistaken, s.n_missing)
                for lvl, name, s in rows
            ],
        )
    )

    by_key = {(lvl, name): s for lvl, name, s in rows}
    # All models behave reasonably at 10%.
    for name, _ in _models(0.1):
        assert by_key[(0.1, name)].correct_pct > 0.75, name
    # The relative model is the gentlest at 30% (short edges stay precise).
    assert (
        by_key[(0.3, "uniform-relative")].correct_pct
        >= by_key[(0.3, "uniform-absolute")].correct_pct - 0.05
    )
