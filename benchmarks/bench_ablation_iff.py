"""Ablation B (Sec. II-B): IFF threshold and TTL sensitivity.

The paper fixes theta = 20 and T = 3 from the icosahedron argument.  The
bench shows what the knobs trade off: tiny theta admits isolated
fragments (more mistaken), huge theta starts eating true boundary
(missing rises).
"""

from benchmarks.conftest import print_banner
from repro.evaluation.experiments import run_iff_ablation
from repro.evaluation.reporting import format_table

THETAS = (1, 10, 20, 60, 150)
TTLS = (2, 3)


def test_ablation_iff(benchmark, bench_sphere_network):
    network = bench_sphere_network

    def grid():
        return run_iff_ablation(network, thetas=THETAS, ttls=TTLS)

    points = benchmark.pedantic(grid, rounds=1, iterations=1)

    print_banner("Ablation B -- IFF theta/TTL grid")
    print(
        format_table(
            ["ttl", "theta", "found", "correct", "mistaken", "missing"],
            [
                (p.ttl, p.theta, p.stats.n_found, p.stats.n_correct,
                 p.stats.n_mistaken, p.stats.n_missing)
                for p in points
            ],
        )
    )

    by_key = {(p.ttl, p.theta): p.stats for p in points}
    # Monotone: larger theta can only shrink the surviving set.
    for ttl in TTLS:
        founds = [by_key[(ttl, theta)].n_found for theta in THETAS]
        assert all(a >= b for a, b in zip(founds, founds[1:]))
    # The paper's default keeps the true boundary intact.
    default = by_key[(3, 20)]
    assert default.n_missing <= 0.02 * default.n_truth
    # An extreme theta destroys detection (the knob matters).
    extreme = by_key[(3, 150)]
    assert extreme.n_found < by_key[(3, 20)].n_found
