"""Ablation C (Sec. III): landmark spacing k vs mesh coarseness.

"The larger the k, the coarser the mesh surfaces, resulting in more
nodes left outside."  The bench sweeps k and reports mesh size, the
fraction of boundary nodes participating in the mesh, and the geometric
deviation of boundary nodes from the mesh.
"""

from benchmarks.conftest import print_banner
from repro.evaluation.experiments import run_landmark_k_ablation
from repro.evaluation.reporting import format_table

KS = (3, 4, 5, 6)


def test_ablation_landmark_k(benchmark, bench_sphere_network):
    network = bench_sphere_network

    def sweep():
        return run_landmark_k_ablation(network, ks=KS)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Ablation C -- landmark spacing k vs mesh coarseness")
    rows = []
    for p in points:
        mesh = p.meshes[0] if p.meshes else None
        rows.append(
            (
                p.k,
                mesh.n_vertices if mesh else 0,
                mesh.n_faces if mesh else 0,
                f"{mesh.covered_fraction:.0%}" if mesh else "n/a",
                f"{mesh.mean_deviation:.2f}" if mesh and mesh.mean_deviation is not None else "n/a",
            )
        )
    print(format_table(["k", "landmarks", "faces", "covered", "mean dev"], rows))

    vertex_counts = [p.meshes[0].n_vertices for p in points if p.meshes]
    # Coarser spacing -> fewer landmarks, monotonically.
    assert all(a >= b for a, b in zip(vertex_counts, vertex_counts[1:]))
    # Fine k covers more boundary nodes than coarse k.
    covered = [p.meshes[0].covered_fraction for p in points if p.meshes]
    assert covered[0] > covered[-1]
