"""Ablation E: MDS versus trilateration local coordinates.

The paper picks improved MDS [31] from "multiple schemes [27]-[31]".
This bench substitutes incremental trilateration (the other classic
family) into the same pipeline and compares detection quality under
ranging noise.

Measured shape: the two schemes fail in opposite directions.  MDS frames
average the noise, so errors produce *misses* (frames stay plausible but
nodes drift); trilateration propagates placement errors incrementally, so
its frames shatter and almost every node finds an empty ball --
near-total recall with *precision collapse* (mistaken detections several
times MDS's at every noise level).  Either way MDS dominates on
precision, supporting the paper's choice of [31].
"""

import numpy as np

from benchmarks.conftest import AGGREGATE_DEPLOY, print_banner
from repro import (
    BoundaryDetector,
    DetectorConfig,
    UniformAbsoluteError,
    generate_network,
    scenario_by_name,
)
from repro.evaluation.metrics import evaluate_detection
from repro.evaluation.reporting import format_table

LEVELS = (0.05, 0.2, 0.4)


def test_ablation_localization(benchmark):
    network = generate_network(
        scenario_by_name("sphere"), AGGREGATE_DEPLOY, scenario="sphere"
    )

    def sweep():
        rows = []
        for level in LEVELS:
            for mode in ("mds", "trilateration"):
                config = DetectorConfig(
                    error_model=UniformAbsoluteError(level), localization=mode
                )
                result = BoundaryDetector(config).detect(
                    network, rng=np.random.default_rng(11)
                )
                rows.append((level, mode, evaluate_detection(network, result)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Ablation E -- localization scheme (MDS vs trilateration)")
    print(
        format_table(
            ["error", "scheme", "found", "correct", "mistaken", "missing"],
            [
                (f"{lvl:.0%}", mode, s.n_found, s.n_correct, s.n_mistaken, s.n_missing)
                for lvl, mode, s in rows
            ],
        )
    )

    by_key = {(lvl, mode): s for lvl, mode, s in rows}
    # Both recover most of the true boundary at low noise.
    assert by_key[(0.05, "mds")].correct_pct > 0.85
    assert by_key[(0.05, "trilateration")].correct_pct > 0.6
    # Trilateration's precision collapses relative to MDS at every level:
    # its shattered frames flag interior nodes wholesale.
    for level in LEVELS:
        assert (
            by_key[(level, "trilateration")].n_mistaken
            > 2 * by_key[(level, "mds")].n_mistaken
        ), f"level {level}"
