"""Ablation F: quasi-unit-disk radio model.

Definition 1 assumes only "an arbitrary radio transmission model".  The
bench repeats detection under quasi-UDG connectivity (links certain below
alpha, a linear gray zone to 1) and shows the algorithm keeps working:
gray-zone link pruning lowers degrees, so the effective density drops,
but the boundary is still recovered.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro import BoundaryDetector, DeploymentConfig, generate_network, scenario_by_name
from repro.evaluation.metrics import evaluate_detection
from repro.evaluation.reporting import format_table

ALPHAS = (None, 0.9, 0.75, 0.6)


def test_ablation_quasi_udg(benchmark):
    def sweep():
        rows = []
        for alpha in ALPHAS:
            config = DeploymentConfig(
                n_surface=450,
                n_interior=750,
                target_degree=32,
                seed=3,
                quasi_udg_alpha=alpha,
            )
            network = generate_network(
                scenario_by_name("sphere"), config, scenario="sphere"
            )
            result = BoundaryDetector().detect(network)
            rows.append(
                (
                    alpha,
                    float(network.graph.degrees().mean()),
                    evaluate_detection(network, result),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Ablation F -- quasi-UDG radio model")
    print(
        format_table(
            ["alpha", "avg degree", "found", "correct", "mistaken", "missing"],
            [
                (
                    "UDG" if alpha is None else f"{alpha:.2f}",
                    f"{deg:.1f}",
                    s.n_found,
                    s.n_correct,
                    s.n_mistaken,
                    s.n_missing,
                )
                for alpha, deg, s in rows
            ],
        )
    )

    # Gray-zone pruning lowers degree monotonically with alpha.
    degrees = [deg for _, deg, _ in rows]
    assert degrees[0] >= degrees[1] >= degrees[2] >= degrees[3]
    # Detection survives the radio model change.
    for alpha, _, stats in rows:
        assert stats.correct_pct > 0.95, f"alpha={alpha}: {stats.as_row()}"
