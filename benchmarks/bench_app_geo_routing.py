"""Application bench: boundary-aware geographic routing.

The paper motivates boundary surfaces with "greedy routing among many
others".  This bench measures the delivery rate of plain greedy
forwarding versus greedy with boundary-surface recovery on the one-hole
network, where routes crossing the hole's shadow stall at its rim.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro import BoundaryDetector
from repro.applications.geo_routing import GeoRouter, delivery_rate
from repro.evaluation.reporting import format_table


def test_app_geo_routing(benchmark, bench_one_hole_network):
    network = bench_one_hole_network
    detection = BoundaryDetector().detect(network)
    graph = network.graph
    rng = np.random.default_rng(41)
    raw = rng.choice(graph.n_nodes, size=(60, 2), replace=True)
    pairs = [(int(a), int(b)) for a, b in raw if a != b]

    plain = GeoRouter(graph, recovery="none")
    recovered = GeoRouter(graph, detection.boundary, recovery="boundary")

    def run_both():
        return delivery_rate(plain, pairs), delivery_rate(recovered, pairs)

    rate_plain, rate_recovered = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_banner("Application -- geographic routing across a hole")
    print(
        format_table(
            ["router", "delivery rate"],
            [
                ("greedy only", f"{rate_plain:.1%}"),
                ("greedy + boundary recovery", f"{rate_recovered:.1%}"),
            ],
        )
    )

    assert rate_recovered >= rate_plain
    assert rate_recovered > 0.9
