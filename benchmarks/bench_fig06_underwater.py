"""Fig. 6: underwater network -- smooth water surface, bumpy seabed.

Paper shape: both the smooth surface and the bumpy bottom are identified
as (one connected) boundary, and a closed triangular mesh is built.
"""

from benchmarks.conftest import run_scenario_bench


def test_fig06_underwater(benchmark):
    run_scenario_bench(benchmark, "underwater", "Fig. 6", expected_groups=1)
