"""Fig. 7: 3D space network with one internal hole.

Paper shape: the outer boundary and the hole boundary are both detected
and separate into two groups, each with its own mesh.
"""

from benchmarks.conftest import run_scenario_bench


def test_fig07_one_hole(benchmark):
    result = run_scenario_bench(
        benchmark, "one_hole", "Fig. 7", expected_groups=2
    )
    # The hole's boundary group is much smaller than the outer boundary.
    assert result.group_sizes[1] < result.group_sizes[0]
