"""Fig. 8: 3D space network with two internal holes.

Paper shape: three boundary groups (outer + two holes), all meshed.
"""

from benchmarks.conftest import run_scenario_bench


def test_fig08_two_holes(benchmark):
    result = run_scenario_bench(
        benchmark, "two_holes", "Fig. 8", expected_groups=3
    )
    assert result.group_sizes[0] > result.group_sizes[1]
    assert result.group_sizes[0] > result.group_sizes[2]
