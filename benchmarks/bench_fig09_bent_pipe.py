"""Fig. 9: network deployed in a bended pipe.

Paper shape: the pipe wall is identified as one boundary and meshed.
The thin, highly curved tube is the hardest surface for the
connectivity-only crossing heuristic, so the closed-edge fraction floor
is lower here than for the convex scenarios.
"""

from benchmarks.conftest import run_scenario_bench


def test_fig09_bent_pipe(benchmark):
    run_scenario_bench(benchmark, "bent_pipe", "Fig. 9", expected_groups=1)
