"""Fig. 10: network deployed in a sphere.

Paper shape: boundary nodes accurately identified, mesh well constructed.
The sphere is the cleanest case: the mesh should be a closed 2-manifold
with Euler characteristic 2.
"""

from benchmarks.conftest import run_scenario_bench


def test_fig10_sphere(benchmark):
    result = run_scenario_bench(benchmark, "sphere", "Fig. 10", expected_groups=1)
    mesh = result.meshes[0]
    assert mesh.is_two_manifold
    assert mesh.euler_characteristic == 2
