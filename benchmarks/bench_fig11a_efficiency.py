"""Fig. 11(a): algorithm efficiency -- found/correct/mistaken/missing as
percentages of the true boundary, aggregated across scenarios.

Paper shape: near-100% found and correct at low error; mistaken and
missing grow with error, with found falling.
"""

from benchmarks.conftest import FIG11_SCENARIOS, print_banner
from repro.evaluation.reporting import render_error_sweep_percent


def test_fig11a_efficiency(benchmark, fig11_sweep_points):
    # The sweep is computed once (session fixture); time one render pass.
    rendered = benchmark.pedantic(
        render_error_sweep_percent, args=(fig11_sweep_points,), rounds=3
    )

    print_banner("Fig. 11(a) -- algorithm efficiency (aggregate, percent)")
    print(f"scenarios: {', '.join(FIG11_SCENARIOS)}")
    print(rendered)

    points = fig11_sweep_points
    assert points[0].stats.correct_pct > 0.95
    assert points[0].stats.missing_pct < 0.05
    # Degradation: correct falls, missing rises toward high error.
    assert points[-1].stats.correct_pct < points[0].stats.correct_pct
    assert points[-1].stats.missing_pct > points[0].stats.missing_pct
