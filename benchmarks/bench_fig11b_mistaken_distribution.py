"""Fig. 11(b): aggregate hop distribution of mistaken boundary nodes.

Paper shape: the distance from a mistaken node to a correct boundary node
"is always less than 3 hops, with a majority of them in one (over 60%)
and two hops (over 30%)".
"""

from benchmarks.conftest import print_banner
from repro.evaluation.metrics import distribution_percentages
from repro.evaluation.reporting import render_mistaken_distribution


def test_fig11b_mistaken_distribution(benchmark, fig11_sweep_points):
    rendered = benchmark.pedantic(
        render_mistaken_distribution, args=(fig11_sweep_points,), rounds=3
    )

    print_banner("Fig. 11(b) -- mistaken boundary node hop distribution")
    print(rendered)

    # At every level with mistaken nodes, nearly all are within 3 hops and
    # 1-hop dominates.
    for point in fig11_sweep_points:
        total = sum(point.mistaken_hops.values())
        if total < 20:
            continue
        pct = distribution_percentages(point.mistaken_hops)
        within_three = sum(pct.get(b, 0.0) for b in (0, 1, 2, 3))
        assert within_three > 0.9, f"level {point.level}: {pct}"
        assert pct.get(1, 0.0) > 0.4, f"level {point.level}: {pct}"
