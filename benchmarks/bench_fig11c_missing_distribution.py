"""Fig. 11(c): aggregate hop distribution of missing boundary nodes.

Paper shape: "almost 100% of the missing boundary nodes are within
one-hop neighborhood of correctly identified boundary nodes" -- they are
scattered, not clustered, so landmark election still works.
"""

from benchmarks.conftest import print_banner
from repro.evaluation.metrics import distribution_percentages
from repro.evaluation.reporting import render_missing_distribution


def test_fig11c_missing_distribution(benchmark, fig11_sweep_points):
    rendered = benchmark.pedantic(
        render_missing_distribution, args=(fig11_sweep_points,), rounds=3
    )

    print_banner("Fig. 11(c) -- missing boundary node hop distribution")
    print(rendered)

    # The ~100%-within-one-hop claim holds in the regime where detection
    # itself works (the paper: "almost perfectly ... less than 30%").
    # Beyond that our noise model erodes the correct set wholesale and
    # the statistic loses meaning; see EXPERIMENTS.md.
    for point in fig11_sweep_points:
        if point.level > 0.25:
            continue
        total = sum(point.missing_hops.values())
        if total < 20:
            continue
        pct = distribution_percentages(point.missing_hops)
        assert pct.get(0, 0.0) + pct.get(1, 0.0) > 0.75, (
            f"level {point.level}: {pct}"
        )
