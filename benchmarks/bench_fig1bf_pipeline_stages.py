"""Figs. 1(b)-(f): the construction pipeline stage by stage.

Reproduces the illustration sequence on a 3D network: detected boundary
nodes (b), elected landmarks / Voronoi cells (c), the CDG with its
crossing edges (d), the planar CDM (e), and the final triangular mesh (f).
The timed kernel is the full surface construction.
"""

from benchmarks.conftest import print_banner
from repro import BoundaryDetector
from repro.evaluation.mesh_metrics import evaluate_mesh
from repro.surface.pipeline import SurfaceBuilder


def test_fig1bf_pipeline_stages(benchmark, bench_one_hole_network):
    network = bench_one_hole_network
    result = BoundaryDetector().detect(network)
    builder = SurfaceBuilder()

    def build_surfaces():
        return builder.build_records(network.graph, result.groups)

    records = benchmark.pedantic(build_surfaces, rounds=1, iterations=1)

    print_banner("Figs. 1(b)-(f) -- pipeline stages on a network with a hole")
    print(f"network:        {network.summary()}")
    print(f"(b) boundary:   {len(result.boundary)} nodes in "
          f"{len(result.groups)} groups {[len(g) for g in result.groups]}")
    for i, record in enumerate(records):
        quality = evaluate_mesh(network, record.mesh)
        print(f"--- boundary group {i} ---")
        print(f"(c) landmarks:  {len(record.landmarks)} "
              f"(cells: {len(set(record.cells.values()))})")
        print(f"(d) CDG:        {len(record.cdg_edges)} edges")
        print(f"(e) CDM:        {len(record.cdm_edges)} edges "
              f"({len(record.cdm_rejected)} rejected as invalid)")
        print(f"(f) mesh:       {quality.as_row()}")

    assert records
    assert len(records) == 2  # outer boundary + one hole
    for record in records:
        # CDM is a subgraph of CDG (Step III only deletes).
        assert record.cdm_edges <= record.cdg_edges
