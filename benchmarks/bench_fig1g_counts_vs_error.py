"""Fig. 1(g): number of boundary nodes found/correct/mistaken/missing
versus distance measurement error.

Paper shape: found ~= correct and mistaken ~= missing ~= 0 below ~30%
error; beyond that missing rises steadily and found falls.

The timed kernel is one full noisy-pipeline detection (localization +
UBF + IFF) at the 20% error point; the sweep table itself comes from the
session-shared sweep.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro import BoundaryDetector, DetectorConfig, UniformAbsoluteError
from repro.evaluation.reporting import render_error_sweep_counts


def test_fig1g_counts_vs_error(
    benchmark, bench_one_hole_network, fig1_sweep_points
):
    network = bench_one_hole_network
    detector = BoundaryDetector(
        DetectorConfig(error_model=UniformAbsoluteError(0.2))
    )

    def detect_once():
        return detector.detect(network, rng=np.random.default_rng(1))

    benchmark.pedantic(detect_once, rounds=1, iterations=1)

    print_banner(
        "Fig. 1(g) -- boundary node counts vs distance measurement error"
    )
    print(f"network: {network.summary()}")
    print(render_error_sweep_counts(fig1_sweep_points))

    points = fig1_sweep_points
    assert points[0].stats.correct_pct > 0.95
    assert points[-1].stats.correct_pct < points[0].stats.correct_pct
