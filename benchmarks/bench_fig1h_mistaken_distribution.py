"""Fig. 1(h): hop distribution of mistaken boundary nodes vs error.

Paper shape: mistaken nodes always within ~3 hops of a correctly
identified boundary node, the majority at 1 hop (>60%), most of the rest
at 2 hops.

The timed kernel is the hop-distribution computation (a multi-source BFS
over the full graph) at one error point.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro import BoundaryDetector, DetectorConfig, UniformAbsoluteError
from repro.evaluation.metrics import (
    distribution_percentages,
    mistaken_hop_distribution,
)
from repro.evaluation.reporting import render_mistaken_distribution


def test_fig1h_mistaken_distribution(
    benchmark, bench_one_hole_network, fig1_sweep_points
):
    network = bench_one_hole_network
    result = BoundaryDetector(
        DetectorConfig(error_model=UniformAbsoluteError(0.3))
    ).detect(network, rng=np.random.default_rng(2))

    buckets = benchmark.pedantic(
        mistaken_hop_distribution,
        args=(network, result),
        rounds=3,
        iterations=1,
    )

    print_banner("Fig. 1(h) -- distribution of mistaken boundary nodes")
    print(render_mistaken_distribution(fig1_sweep_points))

    # Shape assertion at moderate error: mistaken nodes hug the boundary.
    moderate = fig1_sweep_points[2]  # 20% error
    pct = distribution_percentages(moderate.mistaken_hops)
    assert pct.get(0, 0.0) + pct.get(1, 0.0) + pct.get(2, 0.0) > 0.8
    assert sum(buckets.values()) > 0
