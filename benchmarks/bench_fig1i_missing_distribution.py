"""Fig. 1(i): hop distribution of missing boundary nodes vs error.

Paper shape: ~100% of missed boundary nodes have a correctly identified
boundary node within one hop (they are scattered, not clustered), so the
landmark election and mesh construction survive them.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro import BoundaryDetector, DetectorConfig, UniformAbsoluteError
from repro.evaluation.metrics import (
    distribution_percentages,
    missing_hop_distribution,
)
from repro.evaluation.reporting import render_missing_distribution


def test_fig1i_missing_distribution(
    benchmark, bench_one_hole_network, fig1_sweep_points
):
    network = bench_one_hole_network
    result = BoundaryDetector(
        DetectorConfig(error_model=UniformAbsoluteError(0.3))
    ).detect(network, rng=np.random.default_rng(2))

    buckets = benchmark.pedantic(
        missing_hop_distribution,
        args=(network, result),
        rounds=3,
        iterations=1,
    )

    print_banner("Fig. 1(i) -- distribution of missing boundary nodes")
    print(render_missing_distribution(fig1_sweep_points))

    # Shape assertions in the regime where detection still works (the
    # paper: "almost perfectly ... less than 30%"): the missing nodes are
    # overwhelmingly within one hop of a correct boundary node.  Beyond
    # ~30% our additive noise model degrades faster than the paper's
    # (unspecified) one; see EXPERIMENTS.md.
    for idx in (1, 2):  # 10% and 20% error
        point = fig1_sweep_points[idx]
        total = sum(point.missing_hops.values())
        if total < 20:
            continue
        pct = distribution_percentages(point.missing_hops)
        assert pct.get(0, 0.0) + pct.get(1, 0.0) > 0.8, (
            f"level {point.level}: {pct}"
        )
    assert isinstance(buckets, dict)
