"""Figs. 1(j)-(l): the triangular mesh under 20/30/40% distance error.

Paper claim: "the triangular mesh is not seriously deformed under
distance measurement errors" -- the meshes at 20-40% error look like the
error-free one.  Quantified here as: mesh still built, high two-faced
edge fraction, and mean deviation from the true boundary staying within a
radio range of the error-free mesh's deviation.
"""

from benchmarks.conftest import print_banner
from repro.evaluation.experiments import run_mesh_error_sweep
from repro.evaluation.reporting import render_mesh_error_sweep

ERROR_LEVELS = (0.0, 0.2, 0.3, 0.4)


def test_fig1jkl_mesh_under_error(benchmark, bench_one_hole_network):
    network = bench_one_hole_network

    def sweep():
        return run_mesh_error_sweep(network, levels=ERROR_LEVELS, seed=5)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Figs. 1(j)-(l) -- triangular mesh under measurement error")
    print(render_mesh_error_sweep(points))

    baseline = points[0].meshes[0]
    for point in points:
        assert point.meshes, f"no mesh at {point.level:.0%} error"
        main_mesh = point.meshes[0]
        assert main_mesh.two_faced_edge_fraction > 0.6
        if main_mesh.mean_deviation is not None and baseline.mean_deviation is not None:
            assert main_mesh.mean_deviation < baseline.mean_deviation + 1.0
