"""repro-bench: pipeline-stage perf regression against committed baselines.

Runs the pinned ``ubf_2k`` scenario through every pipeline stage via
:func:`repro.evaluation.bench.run_bench`, prints the bench table, writes
``BENCH_<stage>.json`` artifacts, and compares them against the baselines
committed under ``benchmarks/baselines/``.

Two kinds of gate:

* **Counters** (hardware-independent): Theorem-1 work counters, candidate
  and boundary set sizes, and mesh topology must match the baseline within
  a tight relative tolerance.  Any drift means the algorithm changed.
* **Wall time** (hardware-dependent): the vectorized kernel must stay
  within a generous factor of the baseline median and must beat the naive
  oracle by the acceptance floor (``speedup_vs_naive >= 2``).
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import print_banner
from repro.evaluation.bench import (
    DEFAULT_COUNTER_RTOL,
    DEFAULT_MIN_SPEEDUP,
    DEFAULT_TIME_FACTOR,
    check_regression,
    render_bench_table,
    run_bench,
    write_artifacts,
)

BASELINE_DIR = Path(__file__).parent / "baselines"
ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def test_perf_regression(benchmark):
    results = benchmark.pedantic(
        lambda: run_bench(repeat=3), rounds=1, iterations=1
    )

    print_banner("repro-bench -- pipeline stage timings (scenario ubf_2k)")
    print(render_bench_table(results))

    ARTIFACT_DIR.mkdir(exist_ok=True)
    write_artifacts(results, ARTIFACT_DIR)

    ubf = results["ubf"]
    assert ubf["kernels_agree"], "vectorized kernel diverged from naive oracle"
    assert ubf["speedup_vs_naive"] >= DEFAULT_MIN_SPEEDUP, (
        f"vectorized kernel only {ubf['speedup_vs_naive']:.1f}x faster than "
        f"naive (acceptance floor: {DEFAULT_MIN_SPEEDUP}x)"
    )

    issues = check_regression(
        results,
        BASELINE_DIR,
        time_factor=DEFAULT_TIME_FACTOR,
        counter_rtol=DEFAULT_COUNTER_RTOL,
        min_speedup=DEFAULT_MIN_SPEEDUP,
    )
    assert not issues, "perf regression vs committed baseline:\n" + "\n".join(
        f"  - {issue}" for issue in issues
    )
