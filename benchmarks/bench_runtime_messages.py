"""Message complexity of the distributed protocols.

The paper claims IFF "has a complexity of O(1)" per node (a TTL-bounded
local flood).  The bench runs the actual message-passing protocols and
reports total messages and messages per participating node; the IFF flood
should stay bounded by a constant times theta-neighborhood size, and the
grouping/election protocols should scale with the boundary size.
"""

from benchmarks.conftest import print_banner
from repro import BoundaryDetector
from repro.evaluation.reporting import format_table
from repro.runtime.protocols import (
    distributed_landmark_election,
    run_grouping_distributed,
    run_iff_distributed,
    run_voronoi_distributed,
)
from repro.surface.landmarks import elect_landmarks


def test_runtime_message_costs(benchmark, bench_sphere_network):
    network = bench_sphere_network
    result = BoundaryDetector().detect(network)
    graph = network.graph
    candidates = result.candidates
    group = result.groups[0]

    def iff_run():
        return run_iff_distributed(graph, candidates, theta=20, ttl=3)

    _, iff_sim = benchmark.pedantic(iff_run, rounds=1, iterations=1)

    _, grouping_sim = run_grouping_distributed(graph, result.boundary)
    landmarks, election_msgs = distributed_landmark_election(graph, group, 4)
    _, voronoi_sim = run_voronoi_distributed(graph, group, landmarks)

    n_cand = len(candidates)
    n_boundary = len(result.boundary)
    rows = [
        ("IFF flood (ttl=3)", iff_sim.messages_sent,
         f"{iff_sim.messages_sent / n_cand:.1f}"),
        ("grouping (min-label)", grouping_sim.messages_sent,
         f"{grouping_sim.messages_sent / n_boundary:.1f}"),
        ("landmark election (k=4)", election_msgs,
         f"{election_msgs / len(group):.1f}"),
        ("voronoi cells", voronoi_sim.messages_sent,
         f"{voronoi_sim.messages_sent / len(group):.1f}"),
    ]
    print_banner("Runtime -- message costs of the distributed protocols")
    print(format_table(["protocol", "messages", "per node"], rows))

    # IFF is a TTL-3 flood: each node rebroadcasts each distinct nearby
    # originator at most once, so total messages are bounded by
    # sum over nodes of (origins heard) * (boundary degree).  Check the
    # structural bound rather than a magic constant.
    graph_bound = 0
    candidate_set = set(candidates)
    for node in candidates:
        heard = len(graph.bfs_hops([node], within=candidate_set, max_hops=3))
        degree = sum(1 for v in graph.neighbors(node) if int(v) in candidate_set)
        graph_bound += heard * degree
    assert iff_sim.messages_sent <= graph_bound
    assert iff_sim.quiesced
    assert grouping_sim.quiesced
    assert voronoi_sim.quiesced
