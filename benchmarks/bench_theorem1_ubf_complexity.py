"""Theorem 1: per-node UBF cost versus nodal density.

The theorem bounds a node's work at Theta(rho^2) candidate balls (pairs
of neighbors) with Theta(rho) emptiness checks each.  The bench sweeps
the target degree and reports the mean exhaustive candidate count; the
growth should be roughly quadratic in the mean degree.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.evaluation.experiments import run_ubf_complexity
from repro.evaluation.reporting import render_complexity

TARGET_DEGREES = (10.0, 15.0, 20.0, 25.0, 30.0)


def test_theorem1_ubf_complexity(benchmark):
    def sweep():
        return run_ubf_complexity(
            target_degrees=TARGET_DEGREES, n_surface=300, n_interior=600
        )

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Theorem 1 -- UBF candidate balls vs nodal density")
    print(render_complexity(points))

    degrees = np.array([p.mean_degree for p in points])
    balls = np.array([p.mean_balls_tested for p in points])
    # Fit log(balls) ~ alpha * log(degree): Theta(rho^2) predicts alpha ~ 2.
    alpha = np.polyfit(np.log(degrees), np.log(balls), 1)[0]
    print(f"fitted exponent: balls ~ degree^{alpha:.2f} (theory: 2)")
    assert 1.5 < alpha < 2.6

    # Monotone growth in density.
    assert (np.diff(balls) > 0).all()
