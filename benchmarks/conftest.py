"""Shared fixtures and helpers for the figure-reproduction benches.

Every bench prints the paper-shaped table for its figure and times a core
computation with pytest-benchmark.  Networks are kept laptop-sized (the
paper used 4210 nodes; we default to ~1800) -- absolute counts scale with
deployment size, the curve *shapes* are what is reproduced.

The full error sweep behind Figs. 1(g)-(i) is computed once per session
(`fig1_sweep_points`); each figure bench then times its own distinct
computation and prints its table from the shared sweep.
"""

from __future__ import annotations

import pytest

from repro import DeploymentConfig, generate_network, scenario_by_name
from repro.evaluation.experiments import run_error_sweep

#: Standard deployment for figure benches (validated to give clean
#: detection and closed meshes across all five scenarios).
BENCH_DEPLOY = DeploymentConfig(
    n_surface=700, n_interior=1100, target_degree=30, seed=3
)

#: Smaller deployment for multi-network aggregate benches (Fig. 11).
AGGREGATE_DEPLOY = DeploymentConfig(
    n_surface=450, n_interior=750, target_degree=28, seed=3
)

#: Error levels for the Fig. 1 sweep: the paper sweeps 0..100% in 10%
#: steps; benches use a coarser grid to keep runtime reasonable.
BENCH_ERROR_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0)


@pytest.fixture(scope="session")
def bench_sphere_network():
    """The shared sphere network used by several benches."""
    return generate_network(
        scenario_by_name("sphere"), BENCH_DEPLOY, scenario="sphere"
    )


@pytest.fixture(scope="session")
def bench_one_hole_network():
    """A network with one *large* internal hole for the Fig. 1 benches.

    The paper's Fig. 1 network (4210 nodes) features a prominent hole
    whose boundary population is large enough to survive IFF under heavy
    measurement noise.  The library's standard ``one_hole`` scenario keeps
    its hole barely above the unit-ball detectability threshold (the
    Fig. 7 setting); at Fig. 1's noise levels that small hole fragments
    and the missing-node statistics get dominated by one lost hole rather
    than by scattered misses.  A hole of ~4 radio ranges diameter (about
    140 boundary nodes at this deployment) matches the paper's proportions.
    """
    from repro.shapes.csg import Difference
    from repro.shapes.solids import Sphere

    shape = Difference(
        Sphere(radius=1.0), [Sphere(center=(0.1, 0.0, 0.0), radius=0.5)]
    )
    return generate_network(shape, BENCH_DEPLOY, scenario="one_big_hole")


@pytest.fixture(scope="session")
def fig1_sweep_points(bench_one_hole_network):
    """The error sweep shared by the Fig. 1(g)/(h)/(i) benches.

    Fig. 1 of the paper uses a single 3D network with an interior hole
    (4210 nodes there); the same sweep data feeds all three subfigures.
    """
    return run_error_sweep(bench_one_hole_network, BENCH_ERROR_LEVELS, seed=17)


#: Scenarios and levels pooled for the Fig. 11 aggregate benches.
FIG11_SCENARIOS = ("sphere", "one_hole", "underwater")
FIG11_LEVELS = (0.0, 0.2, 0.4, 0.6, 1.0)


@pytest.fixture(scope="session")
def fig11_sweep_points():
    """Aggregate sweep shared by the Fig. 11(a)/(b)/(c) benches.

    The paper pools "over 10,000 sample boundary nodes" across networks;
    this pools three scenario networks at laptop scale.
    """
    from repro.evaluation.experiments import run_aggregate_sweep

    return run_aggregate_sweep(
        FIG11_SCENARIOS, AGGREGATE_DEPLOY, FIG11_LEVELS, seed=23
    )


def print_banner(title: str) -> None:
    """Uniform banner so bench output reads like the paper's figure list."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_scenario_bench(benchmark, scenario: str, figure: str, expected_groups: int):
    """Shared driver for the Figs. 6-10 scenario benches.

    Times the full pipeline (deploy -> detect -> mesh) on one scenario,
    prints the paper-shaped summary, and asserts the paper's qualitative
    claims: ground truth recovered, boundary groups match the region's
    topology, meshes constructed and mostly closed.
    """
    from repro.evaluation.experiments import run_scenario
    from repro.evaluation.reporting import render_scenario_result

    def run():
        return run_scenario(scenario, BENCH_DEPLOY)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner(f"{figure} -- {scenario} scenario")
    print(render_scenario_result(result))

    assert result.detection.correct_pct > 0.97
    assert len(result.group_sizes) == expected_groups
    assert result.meshes, "no boundary mesh constructed"
    assert result.meshes[0].two_faced_edge_fraction > 0.6
    return result
