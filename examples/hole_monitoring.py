#!/usr/bin/env python
"""Hole monitoring: detecting a void that appears after node failures.

The paper motivates boundary detection with event monitoring: "upon a
fire, the sensors located in the fire are likely destroyed (and thus
resulting a void area of failed nodes)".  This example plays that story
end to end with the :mod:`repro.events` subsystem:

1. deploy a healthy network inside a solid sphere -- a single outer
   boundary, no holes;
2. run detection and confirm exactly one boundary group;
3. destroy every node inside an event region (a ball in the interior),
   creating a genuine hole;
4. re-run detection on the survivors: a second boundary group appears,
   delineating the event region;
5. report the monitor's precision (event-group nodes actually on the
   frontier) and frontier coverage, and estimate the hole's size.

Usage::

    python examples/hole_monitoring.py
"""

from repro import (
    BoundaryDetector,
    DeploymentConfig,
    DetectorConfig,
    IFFConfig,
    analyze_hole,
    generate_network,
    sphere_scenario,
)
from repro.events import EventMonitor, SphericalEvent


def main() -> None:
    print("== healthy deployment (solid sphere) ==")
    network = generate_network(
        sphere_scenario(),
        DeploymentConfig(
            n_surface=600, n_interior=1400, target_degree=30, seed=21
        ),
        scenario="sphere",
    )
    print(network.summary())

    detector_config = DetectorConfig(iff=IFFConfig(theta=10, ttl=3))
    healthy = BoundaryDetector(detector_config).detect(network)
    print(f"healthy boundary groups: {[len(g) for g in healthy.groups]}")

    print("\n== event: destroying nodes in the event region ==")
    event = SphericalEvent(center=(0.0, 0.0, 0.0), radius=1.8)
    monitor = EventMonitor(detector_config)
    report = monitor.inspect(network, event)
    print(
        f"destroyed {report.outcome.n_destroyed} nodes; "
        f"{report.outcome.survivor.n_nodes} survive"
    )
    print(
        f"post-event boundary groups: "
        f"{[len(g) for g in report.detection.groups]}"
    )

    if not report.event_detected:
        print("no hole group detected -- increase event size or density")
        return

    print(
        f"\nevent boundary: {sum(len(g) for g in report.event_groups)} nodes "
        f"across {len(report.event_groups)} group(s)"
    )
    print(f"precision (on true frontier): {report.precision:.0%}")
    print(f"interior frontier coverage:   {report.coverage:.0%}")

    print("\n== hole geometry estimate ==")
    hole = analyze_hole(report.outcome.survivor.graph, report.event_groups[0])
    print(hole.as_row())
    print(f"ground truth: event radius {event.radius:.2f} radio ranges")


if __name__ == "__main__":
    main()
