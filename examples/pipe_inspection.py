#!/usr/bin/env python
"""Pipeline-interior inspection: the paper's Fig. 9 scenario under error.

Sensor nodes fill a bent pipe (e.g. dispersed through a duct or pipeline
section).  The inspection:

1. deploys the network inside the bent pipe;
2. sweeps distance-measurement error over 0%..40% and prints the
   Fig. 1(g)-style detection table for this geometry;
3. builds the boundary mesh at each error level and reports the mesh
   deviation from the true pipe wall -- the paper's Figs. 1(j)-(l)
   robustness story on a non-convex shape.

Usage::

    python examples/pipe_inspection.py
"""

from repro import DeploymentConfig, bent_pipe_scenario, generate_network
from repro.evaluation.experiments import run_error_sweep, run_mesh_error_sweep
from repro.evaluation.reporting import (
    render_error_sweep_counts,
    render_mesh_error_sweep,
    render_mistaken_distribution,
)


def main() -> None:
    print("== deploying network in a bent pipe (Fig. 9) ==")
    network = generate_network(
        bent_pipe_scenario(),
        DeploymentConfig(
            n_surface=600, n_interior=800, target_degree=28, seed=9
        ),
        scenario="bent_pipe",
    )
    print(network.summary())

    levels = (0.0, 0.2, 0.4)
    print("\n== detection vs distance measurement error ==")
    points = run_error_sweep(network, levels, seed=3)
    print(render_error_sweep_counts(points))

    print("\n== where do mistaken nodes sit? (hops to correct boundary) ==")
    print(render_mistaken_distribution(points))

    print("\n== mesh quality vs error (Figs. 1(j)-(l) analogue) ==")
    mesh_points = run_mesh_error_sweep(network, levels=(0.0, 0.3), seed=3)
    print(render_mesh_error_sweep(mesh_points))


if __name__ == "__main__":
    main()
