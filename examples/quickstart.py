#!/usr/bin/env python
"""Quickstart: detect the boundary of a spherical 3D network, build its mesh.

Runs the paper's full pipeline with default parameters on the Fig. 10
scenario:

1. deploy a network inside a sphere (ground-truth boundary nodes on the
   surface, an interior cloud inside, radio range normalized to 1);
2. detect boundary nodes with Unit Ball Fitting + Isolated Fragment
   Filtering;
3. build the locally planarized triangular boundary mesh;
4. print detection accuracy and mesh topology.

Usage::

    python examples/quickstart.py
"""

from repro import (
    BoundaryDetector,
    DeploymentConfig,
    SurfaceBuilder,
    compute_network_stats,
    generate_network,
    sphere_scenario,
)
from repro.evaluation import evaluate_detection, evaluate_mesh


def main() -> None:
    print("== deploying network (sphere scenario, Fig. 10) ==")
    network = generate_network(
        sphere_scenario(),
        DeploymentConfig(
            n_surface=500, n_interior=1000, target_degree=28, seed=42
        ),
        scenario="sphere",
    )
    print(compute_network_stats(network).as_row())

    print("\n== detecting boundary nodes (UBF + IFF) ==")
    detector = BoundaryDetector()  # paper defaults: r = 1+1e-3, theta=20, T=3
    result = detector.detect(network)
    stats = evaluate_detection(network, result)
    print(stats.as_row())
    print(f"boundary groups: {[len(g) for g in result.groups]}")

    print("\n== constructing the triangular boundary mesh ==")
    meshes = SurfaceBuilder().build(network.graph, result.groups)
    for mesh in meshes:
        quality = evaluate_mesh(network, mesh)
        print(quality.as_row())
        assert quality.euler_characteristic == 2 or not quality.is_two_manifold

    if meshes:
        from repro.io.svg import render_detection_svg

        render_detection_svg(
            network, result.boundary, "quickstart.svg", mesh=meshes[0]
        )
        print("wrote quickstart.svg (open in any browser)")

    print("\ndone -- a sphere boundary should yield a 2-manifold with chi=2")


if __name__ == "__main__":
    main()
