#!/usr/bin/env python
"""Graph tools on boundary surfaces: routing and hole analysis.

The paper constructs 2-manifold boundary meshes "to enable available
graph theory tools to be applied on 3D surfaces, such as embedding,
localization, partition, and greedy routing".  This demo exercises two
such tools shipped in :mod:`repro.applications`:

1. **Greedy surface routing** -- messages routed between boundary nodes
   along the constructed mesh, with the greedy/fallback split reported;
2. **Hole analysis** -- position, radius, and volume estimates for the
   internal hole of the Fig. 7 scenario, compared against ground truth.

Usage::

    python examples/surface_tools_demo.py
"""

import numpy as np

from repro import (
    BoundaryDetector,
    DeploymentConfig,
    SurfaceBuilder,
    SurfaceRouter,
    analyze_hole,
    generate_network,
    one_hole_scenario,
)


def main() -> None:
    print("== deploying the one-hole scenario (Fig. 7) ==")
    network = generate_network(
        one_hole_scenario(),
        DeploymentConfig(
            n_surface=700, n_interior=1100, target_degree=30, seed=13
        ),
        scenario="one_hole",
    )
    print(network.summary())

    result = BoundaryDetector().detect(network)
    print(f"boundary groups: {[len(g) for g in result.groups]}")
    meshes = SurfaceBuilder().build(network.graph, result.groups)
    outer_mesh = meshes[0]
    print(f"outer mesh: {outer_mesh.summary()}")

    print("\n== greedy routing on the outer boundary surface ==")
    router = SurfaceRouter(network.graph, outer_mesh)
    rng = np.random.default_rng(2)
    group = outer_mesh.group
    greedy_ratios = []
    for i in range(5):
        src, dst = (int(x) for x in rng.choice(group, size=2, replace=False))
        route = router.route(src, dst)
        greedy_ratios.append(route.greedy_success_ratio)
        print(
            f"  {src} -> {dst}: {len(route.landmark_route)} landmark hops, "
            f"{len(route.node_route)} node hops, "
            f"greedy {route.greedy_success_ratio:.0%}"
        )
    print(f"mean greedy success: {np.mean(greedy_ratios):.0%}")

    print("\n== analyzing the detected hole ==")
    hole_group = result.groups[1]
    report = analyze_hole(network.graph, hole_group)
    print(report.as_row())
    true_radius = 0.38 * network.scale
    print(
        f"ground truth: hole radius {true_radius:.2f} radio ranges "
        f"(estimate off by "
        f"{abs(report.mean_radius - true_radius) / true_radius:.0%})"
    )


if __name__ == "__main__":
    main()
