#!/usr/bin/env python
"""Underwater reconnaissance survey: the paper's Fig. 6 scenario.

An underwater sensor network spans the water column between the (smooth)
ocean surface and a (bumpy) seabed.  The survey:

1. deploys the network in the terrain volume;
2. detects the boundary nodes -- these sample the ocean surface, the
   seabed, and the survey area's side walls;
3. splits detected boundary nodes into "surface", "bottom", and "side"
   classes by their position, reporting how well each physical boundary is
   sampled (the paper's point: both the smooth surface and the bumpy
   bottom are identified);
4. builds the closed triangular boundary mesh and exports it as OBJ for
   inspection in a 3D viewer;
5. repeats detection under 20% distance-measurement error to show the
   survey degrades gracefully.

Usage::

    python examples/underwater_survey.py [out.obj]
"""

import sys

import numpy as np

from repro import (
    BoundaryDetector,
    DeploymentConfig,
    DetectorConfig,
    SurfaceBuilder,
    UniformAbsoluteError,
    generate_network,
    underwater_scenario,
)
from repro.evaluation import evaluate_detection, evaluate_mesh
from repro.io import export_mesh_obj
from repro.shapes.terrain import UnderwaterTerrain


def classify_boundary_nodes(network, boundary, terrain: UnderwaterTerrain):
    """Split detected boundary nodes into surface / bottom / side classes.

    Classification uses the node's proximity (in model units) to the
    terrain's top and bottom height fields; everything else near the
    footprint edge is a side-wall node.
    """
    scale = network.scale
    positions = network.graph.positions / scale  # back to model units
    near = 0.08  # model-unit tolerance
    classes = {"surface": [], "bottom": [], "side": [], "other": []}
    for node in sorted(boundary):
        x, y, z = positions[node]
        if abs(z - float(terrain.top_height(x, y))) < near:
            classes["surface"].append(node)
        elif abs(z - float(terrain.bottom_height(x, y))) < near:
            classes["bottom"].append(node)
        elif (
            min(x, terrain.size[0] - x) < near
            or min(y, terrain.size[1] - y) < near
        ):
            classes["side"].append(node)
        else:
            classes["other"].append(node)
    return classes


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "underwater_mesh.obj"
    terrain = underwater_scenario()

    print("== deploying underwater survey network (Fig. 6) ==")
    network = generate_network(
        terrain,
        DeploymentConfig(
            n_surface=700, n_interior=1000, target_degree=28, seed=11
        ),
        scenario="underwater",
    )
    print(network.summary())

    print("\n== boundary detection (perfect ranging) ==")
    result = BoundaryDetector().detect(network)
    print(evaluate_detection(network, result).as_row())

    classes = classify_boundary_nodes(network, result.boundary, terrain)
    for name in ("surface", "bottom", "side", "other"):
        print(f"  {name:8s}: {len(classes[name])} nodes")

    print("\n== boundary mesh ==")
    meshes = SurfaceBuilder().build(network.graph, result.groups)
    for mesh in meshes:
        print(evaluate_mesh(network, mesh).as_row())
    if meshes:
        export_mesh_obj(meshes[0], network.graph, out_path)
        print(f"wrote {out_path}")

    print("\n== detection under 20% distance measurement error ==")
    noisy = BoundaryDetector(
        DetectorConfig(error_model=UniformAbsoluteError(0.2))
    ).detect(network, rng=np.random.default_rng(1))
    print(evaluate_detection(network, noisy).as_row())


if __name__ == "__main__":
    main()
