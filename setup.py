"""Setup shim for environments without the `wheel` package.

`pyproject.toml` is the single source of configuration; this file only
enables legacy installs (`python setup.py develop`) on machines where
PEP 517 editable builds are unavailable (e.g. offline boxes missing
`wheel`).
"""
from setuptools import setup

setup()
