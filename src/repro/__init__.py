"""repro: boundary detection in 3D wireless networks.

A from-scratch reproduction of *"Localized Algorithm for Precise Boundary
Detection in 3D Wireless Networks"* (Zhou, Xia, Jin, Wu -- ICDCS 2010).

The package identifies the boundary nodes of a 3D wireless network with the
paper's two-phase localized algorithm -- Unit Ball Fitting (UBF) followed by
Isolated Fragment Filtering (IFF) -- and constructs a locally planarized
2-manifold triangular mesh for every inner and outer boundary surface.

Quickstart::

    import numpy as np
    from repro import (
        BoundaryDetector, DeploymentConfig, SurfaceBuilder,
        generate_network, sphere_scenario,
    )

    network = generate_network(
        sphere_scenario(),
        DeploymentConfig(n_surface=500, n_interior=1200, seed=42),
        scenario="sphere",
    )
    result = BoundaryDetector().detect(network)
    meshes = SurfaceBuilder().build(network.graph, result.groups)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced figure.
"""

from repro.core import (
    BoundaryDetectionResult,
    BoundaryDetector,
    DetectorConfig,
    IFFConfig,
    UBFConfig,
    detect_boundary,
    group_boundary_nodes,
    run_iff,
    run_ubf,
)
from repro.network import (
    DeploymentConfig,
    DistanceErrorModel,
    GaussianError,
    MeasuredDistances,
    Network,
    NetworkGraph,
    NetworkStats,
    NoError,
    UniformAbsoluteError,
    UniformRelativeError,
    compute_network_stats,
    generate_network,
    measure_distances,
)
from repro.shapes import (
    SCENARIOS,
    AxisAlignedBox,
    BentPipe,
    Cylinder,
    Difference,
    Shape3D,
    Sphere,
    Torus,
    Union,
    UnderwaterTerrain,
    bent_pipe_scenario,
    one_hole_scenario,
    scenario_by_name,
    sphere_scenario,
    two_hole_scenario,
    underwater_scenario,
)
from repro.applications import (
    GeoRouter,
    HoleReport,
    RouteResult,
    SurfaceRouter,
    analyze_hole,
)
from repro.events import EventMonitor, SphericalEvent, apply_event
from repro.surface import SurfaceBuilder, SurfaceConfig, TriangularMesh

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BoundaryDetector",
    "BoundaryDetectionResult",
    "DetectorConfig",
    "UBFConfig",
    "IFFConfig",
    "detect_boundary",
    "run_ubf",
    "run_iff",
    "group_boundary_nodes",
    # network
    "Network",
    "NetworkGraph",
    "NetworkStats",
    "DeploymentConfig",
    "generate_network",
    "compute_network_stats",
    "DistanceErrorModel",
    "NoError",
    "UniformAbsoluteError",
    "UniformRelativeError",
    "GaussianError",
    "MeasuredDistances",
    "measure_distances",
    # shapes
    "Shape3D",
    "Sphere",
    "AxisAlignedBox",
    "Cylinder",
    "Torus",
    "BentPipe",
    "UnderwaterTerrain",
    "Difference",
    "Union",
    "SCENARIOS",
    "scenario_by_name",
    "sphere_scenario",
    "one_hole_scenario",
    "two_hole_scenario",
    "bent_pipe_scenario",
    "underwater_scenario",
    # surface
    "SurfaceBuilder",
    "SurfaceConfig",
    "TriangularMesh",
    # applications
    "SurfaceRouter",
    "RouteResult",
    "GeoRouter",
    "analyze_hole",
    "HoleReport",
    # events
    "EventMonitor",
    "SphericalEvent",
    "apply_event",
]
