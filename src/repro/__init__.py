"""repro: boundary detection in 3D wireless networks.

A from-scratch reproduction of *"Localized Algorithm for Precise Boundary
Detection in 3D Wireless Networks"* (Zhou, Xia, Jin, Wu -- ICDCS 2010).

The package identifies the boundary nodes of a 3D wireless network with the
paper's two-phase localized algorithm -- Unit Ball Fitting (UBF) followed by
Isolated Fragment Filtering (IFF) -- and constructs a locally planarized
2-manifold triangular mesh for every inner and outer boundary surface.

Quickstart::

    import numpy as np
    from repro import (
        BoundaryDetector, DeploymentConfig, SurfaceBuilder,
        generate_network, sphere_scenario,
    )

    network = generate_network(
        sphere_scenario(),
        DeploymentConfig(n_surface=500, n_interior=1200, seed=42),
        scenario="sphere",
    )
    result = BoundaryDetector().detect(network)
    meshes = SurfaceBuilder().build(network.graph, result.groups)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced figure.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # eager imports for type checkers only
    from repro.applications import (
        GeoRouter,
        HoleReport,
        RouteResult,
        SurfaceRouter,
        analyze_hole,
    )
    from repro.core import (
        BoundaryDetectionResult,
        BoundaryDetector,
        DetectorConfig,
        IFFConfig,
        UBFConfig,
        detect_boundary,
        group_boundary_nodes,
        run_iff,
        run_ubf,
    )
    from repro.events import EventMonitor, SphericalEvent, apply_event
    from repro.network import (
        DeploymentConfig,
        DistanceErrorModel,
        GaussianError,
        MeasuredDistances,
        Network,
        NetworkGraph,
        NetworkStats,
        NoError,
        UniformAbsoluteError,
        UniformRelativeError,
        compute_network_stats,
        generate_network,
        measure_distances,
    )
    from repro.shapes import (
        SCENARIOS,
        AxisAlignedBox,
        BentPipe,
        Cylinder,
        Difference,
        Shape3D,
        Sphere,
        Torus,
        Union,
        UnderwaterTerrain,
        bent_pipe_scenario,
        one_hole_scenario,
        scenario_by_name,
        sphere_scenario,
        two_hole_scenario,
        underwater_scenario,
    )
    from repro.observability import (
        NULL_TRACER,
        MetricsRegistry,
        Tracer,
        load_trace,
        validate_trace_lines,
        write_trace,
    )
    from repro.service import JobBudget, JobSpec, JobStore, RetryBackoff, Worker
    from repro.surface import SurfaceBuilder, SurfaceConfig, TriangularMesh

__version__ = "1.0.0"

#: Public name -> defining submodule.  Exports resolve lazily on first
#: attribute access (PEP 562): importing ``repro`` must not import numpy,
#: so the stdlib-only ``repro.analysis`` linter stays runnable in hermetic
#: environments (e.g. the CI lint job) with no dependencies installed.
_EXPORT_MODULES = {
    "repro.core": (
        "BoundaryDetectionResult",
        "BoundaryDetector",
        "DetectorConfig",
        "IFFConfig",
        "UBFConfig",
        "detect_boundary",
        "group_boundary_nodes",
        "run_iff",
        "run_ubf",
    ),
    "repro.network": (
        "DeploymentConfig",
        "DistanceErrorModel",
        "GaussianError",
        "MeasuredDistances",
        "Network",
        "NetworkGraph",
        "NetworkStats",
        "NoError",
        "UniformAbsoluteError",
        "UniformRelativeError",
        "compute_network_stats",
        "generate_network",
        "measure_distances",
    ),
    "repro.shapes": (
        "SCENARIOS",
        "AxisAlignedBox",
        "BentPipe",
        "Cylinder",
        "Difference",
        "Shape3D",
        "Sphere",
        "Torus",
        "Union",
        "UnderwaterTerrain",
        "bent_pipe_scenario",
        "one_hole_scenario",
        "scenario_by_name",
        "sphere_scenario",
        "two_hole_scenario",
        "underwater_scenario",
    ),
    "repro.applications": (
        "GeoRouter",
        "HoleReport",
        "RouteResult",
        "SurfaceRouter",
        "analyze_hole",
    ),
    "repro.events": (
        "EventMonitor",
        "SphericalEvent",
        "apply_event",
    ),
    "repro.surface": (
        "SurfaceBuilder",
        "SurfaceConfig",
        "TriangularMesh",
    ),
    "repro.observability": (
        "MetricsRegistry",
        "NULL_TRACER",
        "Tracer",
        "load_trace",
        "validate_trace_lines",
        "write_trace",
    ),
    "repro.service": (
        "JobBudget",
        "JobSpec",
        "JobStore",
        "RetryBackoff",
        "Worker",
    ),
}

_EXPORTS = {
    name: module for module, names in _EXPORT_MODULES.items() for name in names
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    import importlib

    module_name = _EXPORTS.get(name)
    if module_name is not None:
        value = getattr(importlib.import_module(module_name), name)
        globals()[name] = value  # cache so __getattr__ runs once per name
        return value
    if not name.startswith("_"):
        # ``import repro; repro.core`` worked when the imports above were
        # eager; keep submodule attribute access alive for that idiom.
        try:
            return importlib.import_module(f"repro.{name}")
        except ModuleNotFoundError as exc:
            if exc.name != f"repro.{name}":
                raise  # a real missing dependency inside the submodule
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
