"""repro.analysis: AST-based static analysis for the reproduction.

A dependency-free (stdlib-``ast``) lint subsystem that mechanically
enforces the invariants the paper's claims rest on:

* **LOC001** locality -- ``repro.core`` / ``repro.surface`` never read
  ground truth (that is what makes the algorithm *localized*);
* **LAY002** layering -- imports follow the
  ``geometry -> ... -> cli`` DAG with no upward edges;
* **RNG003** reproducibility -- randomness flows through seeded
  ``np.random.Generator`` parameters;
* **MUT004** mutable default arguments;
* **EXC005** bare / over-broad ``except``;
* **CFG006** config keys must exist on the dataclasses in
  ``repro/core/config.py``;
* **DET007** no set iteration / unsorted filesystem enumeration in
  ranked layers;
* **PAR008** pool payloads must be module-level picklable functions
  without module-global mutation;
* **FLT009** no exact float ``==``/``!=`` or float reductions over
  unordered collections in ranked layers;
* **TRC010** tracer spans entered with ``with``; metric names keep one
  kind.

Run as ``repro-lint <paths>`` or ``python -m repro.analysis <paths>``.
Per-line escape hatch: ``# lint: allow[CODE] -- justification``.
See ``docs/STATIC_ANALYSIS.md`` for the full catalogue.

The dynamic half of the sanitizer lives in
:mod:`repro.analysis.sanitize` (``repro-san``): it re-runs a pinned
scenario across hash seeds and worker counts and byte-diffs the outputs.
"""

from repro.analysis.cli import main
from repro.analysis.configschema import ConfigSchema, extract_config_schema
from repro.analysis.context import LAYER_RANKS, ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import lint_paths, lint_source
from repro.analysis.registry import Rule, iter_rules, register

__all__ = [
    "ConfigSchema",
    "Diagnostic",
    "LAYER_RANKS",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "extract_config_schema",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "main",
    "register",
]
