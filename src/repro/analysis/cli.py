"""``repro-lint`` command-line interface.

Usage::

    repro-lint src                  # lint a tree (exit 1 on any finding)
    repro-lint src/repro/core       # lint a subtree
    repro-lint --select LOC001 src  # run a subset of rules
    repro-lint --list-rules         # print the rule catalogue

Also reachable as ``python -m repro.analysis``.  The linter is stdlib-only
by design: it must run in hermetic environments with no network access.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import lint_paths
from repro.analysis.registry import iter_rules
from repro.analysis.reporter import render_rule_list, report, report_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based checks for the paper's locality, layering, and "
            "reproducibility invariants (see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (diagnostics only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "output format; json emits a sorted-key document that also "
            "lists suppressed findings (default: text)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        render_rule_list()
        return 0
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        try:
            # Validate before linting: a tree with no .py files must still
            # reject an unknown code instead of reporting itself clean.
            iter_rules(select)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    keep_suppressed = args.format == "json"
    diagnostics, errors = lint_paths(
        args.paths, select=select, keep_suppressed=keep_suppressed
    )
    if args.format == "json":
        return report_json(diagnostics, errors)
    return report(diagnostics, errors, quiet=args.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
