"""Extract the configuration schema from ``repro/core/config.py``.

CFG006 checks that every config attribute referenced anywhere in ``src/``
actually exists on the config dataclasses.  To stay dependency-free the
schema is recovered statically: the config module is parsed with
:mod:`ast` and every ``@dataclass``-decorated class contributes

* its annotated fields (constructor keywords and readable attributes),
* its ``@property`` names,
* its plain method names,

plus, for chained resolution (``cfg.ubf.radius``), a map from field name
to the config class named in its annotation when there is one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class ConfigClass:
    """Members of one config dataclass."""

    name: str
    fields: Set[str] = field(default_factory=set)
    members: Set[str] = field(default_factory=set)
    #: field name -> config class name, for annotations like ``ubf: UBFConfig``
    field_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ConfigSchema:
    """All config dataclasses found in the config module."""

    classes: Dict[str, ConfigClass] = field(default_factory=dict)

    def resolve_chain(self, class_name: str, attr: str) -> Optional[str]:
        """Class of ``<class_name> instance>.<attr>`` when attr is itself a config."""
        cfg = self.classes.get(class_name)
        if cfg is None:
            return None
        return cfg.field_types.get(attr)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


#: Typing wrappers whose argument is still an *instance* of the wrapped
#: class.  Generic containers (``List[UBFConfig]``, ``Sequence[...]``)
#: are deliberately absent: a list of configs is not a config, and
#: resolving through them would make CFG006 flag ordinary container
#: methods (``configs.append``) as unknown config attributes.
_OPTIONAL_WRAPPERS = frozenset({"Optional", "Union"})


def _annotation_class_name(annotation: ast.expr, known: Set[str]) -> Optional[str]:
    """Name of a known config class ``annotation`` types an instance of.

    Handles bare names, ``Optional[X]`` / ``Union[X, None]`` / ``X | None``
    wrappers, and string annotations.  Container generics resolve to None.
    """
    if isinstance(annotation, ast.Name) and annotation.id in known:
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value.strip(), mode="eval")
        except SyntaxError:
            return None
        return _annotation_class_name(parsed.body, known)
    if isinstance(annotation, ast.Subscript):
        wrapper = annotation.value
        if isinstance(wrapper, ast.Name):
            wrapper_name: Optional[str] = wrapper.id
        elif isinstance(wrapper, ast.Attribute):
            wrapper_name = wrapper.attr
        else:
            wrapper_name = None
        if wrapper_name not in _OPTIONAL_WRAPPERS:
            return None
        inner = annotation.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for elt in elts:
            found = _annotation_class_name(elt, known)
            if found is not None:
                return found
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_class_name(annotation.left, known) or _annotation_class_name(
            annotation.right, known
        )
    if isinstance(annotation, ast.Attribute) and annotation.attr in known:
        return annotation.attr
    return None


def extract_config_schema(source: str) -> ConfigSchema:
    """Parse a config module's source into a :class:`ConfigSchema`."""
    tree = ast.parse(source)
    schema = ConfigSchema()
    class_nodes = [
        node
        for node in tree.body
        if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node)
    ]
    known = {node.name for node in class_nodes}
    for node in class_nodes:
        cfg = ConfigClass(name=node.name)
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cfg.fields.add(stmt.target.id)
                cfg.members.add(stmt.target.id)
                chained = _annotation_class_name(stmt.annotation, known)
                if chained is not None:
                    cfg.field_types[stmt.target.id] = chained
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cfg.members.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cfg.members.add(target.id)
        schema.classes[node.name] = cfg
    return schema
