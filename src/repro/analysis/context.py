"""Per-module and per-project context handed to lint rules.

A :class:`ModuleContext` bundles everything a rule may need about one
source file: its path, its dotted module name (resolved by walking up
``__init__.py`` markers), the parsed AST, the raw source, and the per-line
suppression table.  A :class:`ProjectContext` carries whole-tree facts --
today only the configuration schema extracted from
``repro/core/config.py`` (see :mod:`repro.analysis.configschema`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Optional

from repro.analysis.configschema import ConfigSchema
from repro.analysis.suppressions import collect_suppressions

#: Layer ranks of the import DAG (lower may never import higher).  The
#: paper's pipeline fixes the spine geometry -> network -> core -> surface;
#: ``shapes`` (ground-truth region generators) sits below ``network`` which
#: samples deployments from it.  ``runtime`` (the message-passing simulator
#: and its fault models) ranks alongside ``surface``: it is infrastructure
#: the consumer layers drive -- ``evaluation`` runs protocols under
#: injected faults for the robustness sweeps -- but it never imports them.
#: The consumer layers -- applications, evaluation, io, events -- sit side
#: by side above with no lateral edges, so any of them can be deleted
#: without touching the others.  ``service`` (the durable job queue and
#: worker pool) drives full pipeline runs *through* the evaluation layer,
#: so it sits above the consumers; ``cli`` and the lint subsystem are
#: topmost.  ``observability`` (stdlib-only tracing/metrics) ranks *below*
#: the whole spine: every layer may emit spans and metrics, so the one
#: legal position for the subsystem is underneath ``geometry``, importing
#: nothing.
LAYER_RANKS: Dict[str, int] = {
    "observability": -1,
    "geometry": 0,
    "shapes": 1,
    "network": 2,
    "core": 3,
    "surface": 4,
    "runtime": 4,
    "applications": 5,
    "evaluation": 5,
    "io": 5,
    "events": 5,
    "service": 6,
    "cli": 7,
    "analysis": 7,
}

#: Rank assigned to the package root (``repro/__init__.py``): it re-exports
#: the public API and therefore sits above everything.
ROOT_RANK = 8


def resolve_module_name(path: Path) -> str:
    """Dotted module name of ``path``, walking up ``__init__.py`` markers.

    ``src/repro/core/ubf.py`` -> ``repro.core.ubf``;
    ``src/repro/core/__init__.py`` -> ``repro.core``.  A file outside any
    package resolves to its bare stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def layer_of(module_name: str) -> Optional[int]:
    """Rank of a ``repro.*`` module in the layering DAG, None if exempt."""
    parts = module_name.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ROOT_RANK
    return LAYER_RANKS.get(parts[1])


@dataclass
class ModuleContext:
    """Everything rules know about one source file."""

    path: str
    module_name: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, *, path: str = "<string>", module_name: str = "<module>"
    ) -> "ModuleContext":
        return cls(
            path=path,
            module_name=module_name,
            source=source,
            tree=ast.parse(source),
            suppressions=collect_suppressions(source),
        )

    @classmethod
    def from_file(cls, file_path: Path, *, display_path: Optional[str] = None) -> "ModuleContext":
        source = file_path.read_text(encoding="utf-8")
        return cls.from_source(
            source,
            path=display_path if display_path is not None else str(file_path),
            module_name=resolve_module_name(file_path),
        )


@dataclass
class ProjectContext:
    """Whole-tree facts shared by all modules in one lint run."""

    config_schema: Optional[ConfigSchema] = None
