"""Diagnostic records emitted by lint rules.

A diagnostic pinpoints one violation: the file, the 1-based line, the rule
code (``LOC001`` .. ``TRC010``), and a human-readable message.  The render
format is the conventional ``file:line: CODE message`` so editors and CI
annotators can parse it.  ``suppressed`` marks findings silenced by a
``# lint: allow[...]`` comment; the engine drops them by default and only
materializes them (flagged) when asked, so machine-readable output can
show reviewers what the escape hatch is hiding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered by (path, line, code) for stable output."""

    path: str
    line: int
    code: str
    message: str
    suppressed: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form with the fields CI annotators consume."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }
