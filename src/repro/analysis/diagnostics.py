"""Diagnostic records emitted by lint rules.

A diagnostic pinpoints one violation: the file, the 1-based line, the rule
code (``LOC001`` .. ``CFG006``), and a human-readable message.  The render
format is the conventional ``file:line: CODE message`` so editors and CI
annotators can parse it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered by (path, line, code) for stable output."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"
