"""Lint engine: discover files, build contexts, run rules, filter allows.

The engine is deliberately dependency-free (stdlib only) so it can run in
hermetic environments with no network access.  Entry points:

* :func:`lint_paths` -- lint files/directories on disk (the CLI path);
* :func:`lint_source` -- lint an in-memory snippet under a chosen module
  name (the unit-test path).
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import repro.analysis.rules  # noqa: F401  (registers the shipped rules)
from repro.analysis.configschema import ConfigSchema, extract_config_schema
from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import iter_rules
from repro.analysis.suppressions import is_suppressed

#: Repo-relative suffix of the module CFG006 extracts its schema from.
CONFIG_MODULE_SUFFIX = ("repro", "core", "config.py")


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a sorted, deduplicated .py list."""
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            seen[candidate.resolve()] = candidate
    return [seen[key] for key in sorted(seen)]


def _find_config_source(files: Sequence[Path]) -> Optional[str]:
    for file_path in files:
        if file_path.resolve().parts[-3:] == CONFIG_MODULE_SUFFIX:
            return file_path.read_text(encoding="utf-8")
    return None


def build_project_context(files: Sequence[Path]) -> ProjectContext:
    config_source = _find_config_source(files)
    schema: Optional[ConfigSchema] = None
    if config_source is not None:
        schema = extract_config_schema(config_source)
    return ProjectContext(config_schema=schema)


def _run_rules(
    module: ModuleContext,
    project: ProjectContext,
    select: Optional[Sequence[str]],
    keep_suppressed: bool = False,
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for rule in iter_rules(select):
        for diag in rule.check(module, project):
            if is_suppressed(module.suppressions, diag.line, diag.code):
                if keep_suppressed:
                    out.append(dataclasses.replace(diag, suppressed=True))
            else:
                out.append(diag)
    return out


def lint_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    keep_suppressed: bool = False,
) -> Tuple[List[Diagnostic], List[str]]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(diagnostics, errors)`` where ``errors`` are file-level
    problems (unreadable file, syntax error) reported separately from rule
    findings so a broken file cannot masquerade as a clean one.  With
    ``keep_suppressed``, findings silenced by ``# lint: allow[...]`` are
    returned too, marked ``suppressed=True`` (the JSON reporter shows them
    so the escape hatch stays auditable); they never affect exit codes.
    """
    files = discover_files([Path(p) for p in paths])
    project = build_project_context(files)
    diagnostics: List[Diagnostic] = []
    errors: List[str] = []
    for file_path in files:
        try:
            module = ModuleContext.from_file(file_path)
        except OSError as exc:
            errors.append(f"{file_path}: unreadable: {exc}")
            continue
        except SyntaxError as exc:
            errors.append(f"{file_path}:{exc.lineno or 0}: syntax error: {exc.msg}")
            continue
        diagnostics.extend(_run_rules(module, project, select, keep_suppressed))
    return sorted(diagnostics), errors


def lint_source(
    source: str,
    *,
    module_name: str = "repro.example",
    path: str = "<string>",
    config_source: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    keep_suppressed: bool = False,
) -> List[Diagnostic]:
    """Lint one in-memory module (unit-test entry point).

    ``module_name`` controls layer/locality classification;
    ``config_source`` optionally supplies the CFG006 schema module.
    """
    module = ModuleContext.from_source(source, path=path, module_name=module_name)
    schema = extract_config_schema(config_source) if config_source is not None else None
    project = ProjectContext(config_schema=schema)
    return sorted(_run_rules(module, project, select, keep_suppressed))


def parse_check(source: str) -> ast.Module:
    """Parse helper kept public for tooling; raises SyntaxError on bad input."""
    return ast.parse(source)
