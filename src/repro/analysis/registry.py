"""Rule registry.

Rules are small classes with a ``code`` (``LOC001``), a one-line
``summary``, and a ``check(module, project)`` generator of diagnostics.
They self-register at import time through the :func:`register` decorator;
:func:`iter_rules` returns them in code order.  The engine imports
:mod:`repro.analysis.rules` once so every shipped rule is registered before
any file is linted.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic


class Rule:
    """Base class for lint rules."""

    code: str = ""
    summary: str = ""

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, module: ModuleContext, line: int, message: str) -> Diagnostic:
        return Diagnostic(path=module.path, line=line, code=self.code, message=message)


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def iter_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Registered rules in code order, optionally restricted to ``select``."""
    wanted = None if select is None else {code.upper() for code in select}
    unknown = wanted - set(_REGISTRY) if wanted is not None else set()
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [
        _REGISTRY[code]
        for code in sorted(_REGISTRY)
        if wanted is None or code in wanted
    ]
