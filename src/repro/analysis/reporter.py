"""Render lint results for terminals and CI logs."""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence, TextIO

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import iter_rules


def report(
    diagnostics: Sequence[Diagnostic],
    errors: Sequence[str],
    *,
    stream: Optional[TextIO] = None,
    quiet: bool = False,
) -> int:
    """Print diagnostics and return the process exit code.

    0 -- clean; 1 -- rule violations; 2 -- file-level errors (unreadable
    or unparsable input), which dominate because a file the linter cannot
    read is not known to be clean.  Suppressed diagnostics (present only
    when the engine ran with ``keep_suppressed``) never count toward the
    exit code.
    """
    out = stream if stream is not None else sys.stdout
    active = [diag for diag in diagnostics if not diag.suppressed]
    for diag in active:
        print(diag.render(), file=out)
    for error in errors:
        print(f"error: {error}", file=out)
    if not quiet:
        if active or errors:
            counts = _counts_by_code(active)
            summary = ", ".join(f"{code} x{n}" for code, n in counts)
            if summary:
                print(f"repro-lint: {len(active)} finding(s): {summary}", file=out)
        else:
            print("repro-lint: clean", file=out)
    if errors:
        return 2
    return 1 if active else 0


def report_json(
    diagnostics: Sequence[Diagnostic],
    errors: Sequence[str],
    *,
    stream: Optional[TextIO] = None,
) -> int:
    """Machine-readable variant of :func:`report` (``--format json``).

    Emits one JSON document with sorted keys so output is byte-stable:
    ``findings`` (each with ``code``/``path``/``line``/``message``/
    ``suppressed``) and ``errors``.  Suppressed findings are listed --
    the ``# lint: allow`` escape hatch stays auditable -- but only
    unsuppressed ones drive the exit code, matching text mode.
    """
    out = stream if stream is not None else sys.stdout
    doc = {
        "errors": list(errors),
        "findings": [diag.as_dict() for diag in diagnostics],
    }
    print(json.dumps(doc, sort_keys=True, indent=2), file=out)
    if errors:
        return 2
    return 1 if any(not diag.suppressed for diag in diagnostics) else 0


def _counts_by_code(diagnostics: Sequence[Diagnostic]) -> List[tuple]:
    counts = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return sorted(counts.items())


def render_rule_list(stream: Optional[TextIO] = None) -> None:
    """Print the registered rule catalogue (``--list-rules``)."""
    out = stream if stream is not None else sys.stdout
    for rule in iter_rules():
        print(f"{rule.code}  {rule.summary}", file=out)
