"""Shipped lint rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`:

* ``LOC001`` locality (:mod:`repro.analysis.rules.locality`)
* ``LAY002`` layering (:mod:`repro.analysis.rules.layering`)
* ``RNG003`` reproducible randomness (:mod:`repro.analysis.rules.rng`)
* ``MUT004`` / ``EXC005`` Python pitfalls (:mod:`repro.analysis.rules.pitfalls`)
* ``CFG006`` config-key consistency (:mod:`repro.analysis.rules.config_keys`)
* ``DET007`` deterministic ordering (:mod:`repro.analysis.rules.determinism`)
* ``PAR008`` fork/pickle safety (:mod:`repro.analysis.rules.parallel_safety`)
* ``FLT009`` float hazards (:mod:`repro.analysis.rules.float_hazards`)
* ``TRC010`` observability misuse (:mod:`repro.analysis.rules.tracing`)
"""

from repro.analysis.rules import (  # noqa: F401  (import for registration side effect)
    config_keys,
    determinism,
    float_hazards,
    layering,
    locality,
    parallel_safety,
    pitfalls,
    rng,
    tracing,
)
