"""Shipped lint rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`:

* ``LOC001`` locality (:mod:`repro.analysis.rules.locality`)
* ``LAY002`` layering (:mod:`repro.analysis.rules.layering`)
* ``RNG003`` reproducible randomness (:mod:`repro.analysis.rules.rng`)
* ``MUT004`` / ``EXC005`` Python pitfalls (:mod:`repro.analysis.rules.pitfalls`)
* ``CFG006`` config-key consistency (:mod:`repro.analysis.rules.config_keys`)
"""

from repro.analysis.rules import (  # noqa: F401  (import for registration side effect)
    config_keys,
    layering,
    locality,
    pitfalls,
    rng,
)
