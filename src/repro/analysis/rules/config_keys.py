"""CFG006 -- config-key consistency against ``repro/core/config.py``.

A silent typo like ``config.collection_hop`` (for ``collection_hops``)
raises only at run time, deep inside an experiment sweep.  This rule
resolves, statically, which expressions hold instances of the config
dataclasses (``UBFConfig``, ``IFFConfig``, ``DetectorConfig``) and checks

* every attribute read on them against the class's fields, properties and
  methods, and
* every keyword passed to their constructors against the declared fields.

Type information is recovered from parameter annotations, direct
constructor assignments (``cfg = UBFConfig(...)``), ``self.<attr>``
bindings made from annotated ``__init__`` parameters, and chained config
fields (``cfg.ubf.radius`` knows ``ubf`` is a ``UBFConfig``).  Anything
the resolver cannot type is left alone -- the rule only fires on objects
it has positively identified as config instances.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.configschema import ConfigSchema, _annotation_class_name
from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register


@register
class ConfigKeyRule(Rule):
    code = "CFG006"
    summary = "config attribute reads and constructor keywords must match repro/core/config.py"

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        schema = project.config_schema
        if schema is None or not schema.classes:
            return
        scanner = _Scanner(self, module, schema)
        scanner.scan_module(module.tree)
        yield from scanner.findings


class _Scanner:
    """Walks one module, tracking which names hold config instances."""

    def __init__(self, rule: ConfigKeyRule, module: ModuleContext, schema: ConfigSchema):
        self.rule = rule
        self.module = module
        self.schema = schema
        self.findings: List[Diagnostic] = []

    # -- type resolution ------------------------------------------------

    def _constructor_class(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self.schema.classes:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in self.schema.classes:
            return func.attr
        return None

    def _resolve(self, node: ast.expr, env: Dict[str, str], self_attrs: Dict[str, str],
                 self_type: Optional[str]) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id == "self" and self_type is not None:
                return self_type
            return env.get(node.id)
        if isinstance(node, ast.Call):
            return self._constructor_class(node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if node.attr in self_attrs:
                    return self_attrs[node.attr]
                if self_type is not None:
                    return self.schema.resolve_chain(self_type, node.attr)
                return None
            inner = self._resolve(node.value, env, self_attrs, self_type)
            if inner is not None:
                return self.schema.resolve_chain(inner, node.attr)
        return None

    # -- scanning -------------------------------------------------------

    def scan_module(self, tree: ast.Module) -> None:
        env: Dict[str, str] = {}
        self._scan_body(tree.body, env, {}, None)

    def _param_types(self, fn: ast.FunctionDef) -> Dict[str, str]:
        known = set(self.schema.classes)
        types: Dict[str, str] = {}
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
        for arg in args:
            if arg.annotation is not None:
                cls = _annotation_class_name(arg.annotation, known)
                if cls is not None:
                    types[arg.arg] = cls
        # unannotated params with a config-constructor default
        defaults = fn.args.defaults
        if defaults:
            for arg, default in zip(args[-len(defaults):], defaults):
                if arg.arg not in types and isinstance(default, ast.Call):
                    cls = self._constructor_class(default)
                    if cls is not None:
                        types[arg.arg] = cls
        return types

    def _collect_self_attrs(self, cls_node: ast.ClassDef) -> Dict[str, str]:
        """``self.<name>`` bindings visible to every method of the class."""
        known = set(self.schema.classes)
        out: Dict[str, str] = {}
        for stmt in cls_node.body:
            # dataclass-style declaration: ``ubf: UBFConfig``
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls = _annotation_class_name(stmt.annotation, known)
                if cls is not None:
                    out[stmt.target.id] = cls
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = self._param_types(stmt)
                for inner in ast.walk(stmt):
                    if not (isinstance(inner, ast.Assign) and len(inner.targets) == 1):
                        continue
                    target = inner.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    cls = self._resolve(inner.value, dict(params), {}, None)
                    if cls is not None:
                        out[target.attr] = cls
        return out

    def _scan_body(self, body, env: Dict[str, str], self_attrs: Dict[str, str],
                   self_type: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                cls_self_type = stmt.name if stmt.name in self.schema.classes else None
                cls_attrs = self._collect_self_attrs(stmt)
                for deco in stmt.decorator_list:
                    self._scan_expr(deco, env, self_attrs, self_type)
                self._scan_body(stmt.body, dict(env), cls_attrs, cls_self_type)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_env = dict(env)
                fn_env.update(self._param_types(stmt))
                for default in list(stmt.args.defaults) + [
                    d for d in stmt.args.kw_defaults if d is not None
                ]:
                    self._scan_expr(default, env, self_attrs, self_type)
                self._scan_body(stmt.body, fn_env, self_attrs, self_type)
            else:
                self._scan_stmt(stmt, env, self_attrs, self_type)

    def _scan_stmt(self, stmt: ast.stmt, env, self_attrs, self_type) -> None:
        if isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_body([stmt], env, self_attrs, self_type)
        elif isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, env, self_attrs, self_type)
            cls = self._resolve(stmt.value, env, self_attrs, self_type)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if cls is not None:
                        env[target.id] = cls
                    else:
                        env.pop(target.id, None)
                else:
                    self._scan_expr(target, env, self_attrs, self_type)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, env, self_attrs, self_type)
            if isinstance(stmt.target, ast.Name):
                cls = _annotation_class_name(stmt.annotation, set(self.schema.classes))
                if cls is not None:
                    env[stmt.target.id] = cls
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, env, self_attrs, self_type)
                elif isinstance(child, ast.stmt):
                    self._scan_stmt(child, env, self_attrs, self_type)
                elif isinstance(child, (ast.excepthandler, ast.withitem, ast.comprehension)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.expr):
                            self._scan_expr(sub, env, self_attrs, self_type)
                        elif isinstance(sub, ast.stmt):
                            self._scan_stmt(sub, env, self_attrs, self_type)

    def _scan_expr(self, expr: ast.expr, env, self_attrs, self_type) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                self._check_attribute(node, env, self_attrs, self_type)
            elif isinstance(node, ast.Call):
                self._check_constructor(node)

    def _check_attribute(self, node: ast.Attribute, env, self_attrs, self_type) -> None:
        owner = self._resolve(node.value, env, self_attrs, self_type)
        if owner is None:
            return
        cfg = self.schema.classes.get(owner)
        if cfg is None or node.attr in cfg.members or node.attr.startswith("__"):
            return
        self.findings.append(
            self.rule.diagnostic(
                self.module,
                node.lineno,
                f"unknown config attribute '{node.attr}' on {owner} "
                f"(known: {', '.join(sorted(cfg.members))})",
            )
        )

    def _check_constructor(self, call: ast.Call) -> None:
        cls = self._constructor_class(call)
        if cls is None:
            return
        cfg = self.schema.classes[cls]
        for kw in call.keywords:
            if kw.arg is None:  # **splat -- not statically checkable
                continue
            if kw.arg not in cfg.fields:
                self.findings.append(
                    self.rule.diagnostic(
                        self.module,
                        kw.value.lineno,
                        f"unknown constructor keyword '{kw.arg}' for {cls} "
                        f"(fields: {', '.join(sorted(cfg.fields))})",
                    )
                )
