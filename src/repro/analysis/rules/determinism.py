"""DET007 -- nondeterministic iteration order in ranked layers.

The repo's caching, sharding, and byte-diff claims all rest on one
premise: identical inputs produce identical outputs, byte for byte.  Two
stdlib conveniences silently break that premise:

* **Iterating a ``set``/``frozenset``.**  Iteration order depends on the
  elements' hashes; for strings (and any object falling back to
  ``PYTHONHASHSEED``-salted hashing) the order changes *between
  interpreter runs*.  Results assembled by walking a set -- group lists,
  output rows, dict displays built from set comprehensions -- therefore
  differ run to run even for identical inputs.
* **Unsorted filesystem enumeration.**  ``os.listdir``, ``os.scandir``,
  ``glob.glob`` and ``Path.iterdir``/``glob``/``rglob`` return entries in
  whatever order the OS hands back -- stable on one machine, different on
  the next.

The rule fires only inside ranked layers of the import DAG (modules the
layering table in :mod:`repro.analysis.context` knows about): that is the
code whose outputs the determinism contract covers.  The fix is almost
always ``sorted(...)`` at the iteration point; where unordered iteration
is genuinely harmless (feeding a commutative reduction into an ordered
sink, say) use ``# lint: allow[DET007]`` with a justification.

Provability, not suspicion: the rule flags only expressions it can
*prove* are sets -- set displays, set comprehensions, ``set(...)`` /
``frozenset(...)`` calls, set-algebra binops of proven sets, and names
whose every binding in the module is one of those.  A name ever bound to
anything else (or shadowed by a loop target, parameter, or import) is
left alone, so there are no false positives by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.context import ModuleContext, ProjectContext, layer_of
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

#: Constructor names whose call results are provably sets.
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Set-algebra operators: applied to a proven set, the result is a set.
SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Builtins that materialize their argument's iteration order into an
#: ordered result -- passing a set through them bakes the nondeterministic
#: order in.
ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})

#: ``os``/``glob`` module-level functions returning entries in OS order.
FS_MODULE_FUNCS: FrozenSet[Tuple[str, str]] = frozenset(
    {("os", "listdir"), ("os", "scandir"), ("glob", "glob"), ("glob", "iglob")}
)

#: ``pathlib.Path`` methods returning entries in OS order.
FS_PATH_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _name_of(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    return None


def collect_set_names(tree: ast.Module) -> Set[str]:
    """Names whose *every* binding in the module is a provable set.

    One fixpoint-free pass: a name qualifies when all its ``=``/``:=``
    assignments carry literal-level set expressions and the name is never
    rebound by a loop target, ``with`` alias, comprehension target,
    parameter, import, or augmented assignment (those make its type
    unknowable here).
    """
    assigned: Dict[str, List[ast.expr]] = {}
    tainted: Set[str] = set()

    def taint_target(target: ast.expr) -> None:
        for node in ast.walk(target):
            name = _name_of(node)
            if name:
                tainted.add(name)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = _name_of(target)
                if name is not None:
                    assigned.setdefault(name, []).append(node.value)
                else:
                    taint_target(target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            name = _name_of(node.target)
            if name is not None:
                assigned.setdefault(name, []).append(node.value)
        elif isinstance(node, ast.NamedExpr):
            name = _name_of(node.target)
            if name is not None:
                assigned.setdefault(name, []).append(node.value)
        elif isinstance(node, ast.AugAssign):
            taint_target(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            taint_target(node.target)
        elif isinstance(node, ast.comprehension):
            taint_target(node.target)
        elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
            taint_target(node.optional_vars)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                tainted.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                tainted.add(arg.arg)
            for vararg in (args.vararg, args.kwarg):
                if vararg is not None:
                    tainted.add(vararg.arg)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            tainted.update(node.names)

    return {
        name
        for name, values in assigned.items()
        if name not in tainted
        and all(is_provable_set(value, frozenset()) for value in values)
    }


def is_provable_set(node: ast.expr, set_names: FrozenSet[str]) -> bool:
    """True when ``node`` is a set beyond doubt (see module docstring)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _name_of(node.func)
        return name in SET_CONSTRUCTORS
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
        return is_provable_set(node.left, set_names) or is_provable_set(
            node.right, set_names
        )
    return False


def iteration_sites(tree: ast.Module) -> Iterator[Tuple[ast.expr, str]]:
    """Yield ``(iterable_expr, context_description)`` for order-sensitive sinks."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "for loop"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, "comprehension"
        elif isinstance(node, ast.Call):
            func_name = _name_of(node.func)
            if func_name in ORDER_SENSITIVE_WRAPPERS and node.args:
                yield node.args[0], f"{func_name}()"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
            ):
                yield node.args[0], "str.join()"


def build_parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    """Map ``id(child)`` to its parent node for wrapped-call checks."""
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _is_sorted_wrapped(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    parent = parents.get(id(node))
    return (
        isinstance(parent, ast.Call)
        and _name_of(parent.func) == "sorted"
        and bool(parent.args)
        and parent.args[0] is node
    )


@register
class DeterministicOrderRule(Rule):
    code = "DET007"
    summary = (
        "no iteration over sets and no unsorted filesystem enumeration in "
        "ranked layers (hash/OS order leaks into results)"
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        if layer_of(module.module_name) is None:
            return
        set_names = frozenset(collect_set_names(module.tree))
        for iterable, context in iteration_sites(module.tree):
            if is_provable_set(iterable, set_names):
                yield self.diagnostic(
                    module,
                    iterable.lineno,
                    f"iteration over a set in {context}: set order is "
                    "hash-dependent and varies across runs; iterate "
                    "sorted(...) or an ordered container",
                )
        parents = build_parent_map(module.tree)
        yield from self._check_fs_enumeration(module, parents)

    def _check_fs_enumeration(
        self, module: ModuleContext, parents: Dict[int, ast.AST]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            shown = self._fs_call_name(node)
            if shown is None or _is_sorted_wrapped(node, parents):
                continue
            yield self.diagnostic(
                module,
                node.lineno,
                f"unsorted {shown}: directory order is OS-dependent; wrap "
                "the call in sorted(...) so downstream output is stable",
            )

    @staticmethod
    def _fs_call_name(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            base = _name_of(func.value)
            if base is not None and (base, func.attr) in FS_MODULE_FUNCS:
                return f"{base}.{func.attr}()"
            if func.attr in FS_PATH_METHODS and base not in ("os", "glob"):
                return f".{func.attr}()"
        return None
