"""FLT009 -- float hazards on result-bearing paths.

Boundary verdicts must not flip with the last ulp of a computation.  Two
hazards are statically recognizable:

* **Exact equality against a float.**  ``x == 0.0`` / ``x != 1.5`` is a
  knife edge: the comparison outcome depends on rounding that varies with
  evaluation order, vectorization width, and compiler flags.  The
  scale-invariance bug this rule pack shipped with (an absolute
  degeneracy cutoff in the ball-fit kernel flipping verdicts under
  uniform scaling) is exactly this class.  Use a tolerance scaled to the
  operands -- or, where *exact* zero genuinely is the sentinel (a config
  field compared to its default, a division guard whose near-zero cases
  are masked separately), annotate with ``# lint: allow[FLT009]`` and a
  justification.
* **Float reduction over an unordered collection.**  ``sum`` over a
  ``set`` accumulates in hash order; float addition is not associative,
  so the low bits of the result change run to run.  Sort first, or
  reduce over an ordered container.

Like DET007, the rule fires only inside ranked layers (see
:mod:`repro.analysis.context`): evaluation scripts and tests may compare
floats exactly on purpose.  Only provable cases are flagged -- a float
literal (or unary minus / ``float(...)`` call around one) on either side
of ``==``/``!=``, and ``sum(...)`` over an expression proven to be a set
by the DET007 machinery.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext, ProjectContext, layer_of
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import collect_set_names, is_provable_set


def _float_operand(node: ast.expr) -> Optional[str]:
    """Rendered form of ``node`` when it is provably a float expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return repr(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _float_operand(node.operand)
        if inner is not None:
            sign = "-" if isinstance(node.op, ast.USub) else "+"
            return f"{sign}{inner}"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return "float(...)"
    return None


@register
class FloatHazardRule(Rule):
    code = "FLT009"
    summary = (
        "no exact ==/!= against float values and no float reductions over "
        "unordered collections in ranked layers"
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        if layer_of(module.module_name) is None:
            return
        set_names = frozenset(collect_set_names(module.tree))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
                and is_provable_set(node.args[0], set_names)
            ):
                yield self.diagnostic(
                    module,
                    node.lineno,
                    "sum() over a set accumulates floats in hash order "
                    "(addition is not associative); sort the elements first",
                )

    def _check_compare(self, module: ModuleContext, node: ast.Compare) -> Iterator[Diagnostic]:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            shown = _float_operand(left) or _float_operand(right)
            if shown is None:
                continue
            symbol = "==" if isinstance(op, ast.Eq) else "!="
            yield self.diagnostic(
                module,
                node.lineno,
                f"exact {symbol} against float {shown}: use a tolerance "
                "(math.isclose / np.isclose or an explicit eps scaled to "
                "the operands), or allow[FLT009] where exact zero is the "
                "intended sentinel",
            )
