"""LAY002 -- layering: imports must follow the package DAG downward.

The spine mirrors the paper's pipeline stages::

    geometry -> shapes -> network -> core -> {surface, runtime}
        -> {applications, evaluation, io, events} -> cli

A module may import from its own package or any *strictly lower* layer.
Upward edges and lateral edges between distinct same-rank packages are
both violations: the consumer layers above ``surface``/``runtime`` are
deliberately independent of each other, and ``surface`` and ``runtime``
never import one another.  Relative imports are resolved against the
importing module's package before ranking.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext, ProjectContext, layer_of
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register


def _top_package(module_name: str) -> Optional[str]:
    parts = module_name.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _resolve_relative(importer: str, module: Optional[str], level: int) -> Optional[str]:
    """Absolute dotted target of a ``from ... import`` statement."""
    if level == 0:
        return module
    base = importer.split(".")
    # level=1 strips the module segment, each extra level one package more.
    if len(base) < level:
        return None
    prefix = base[: len(base) - level]
    return ".".join(prefix + [module]) if module else ".".join(prefix)


@register
class LayeringRule(Rule):
    code = "LAY002"
    summary = "imports must follow the geometry->...->cli DAG with no upward or lateral edges"

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        own_rank = layer_of(module.module_name)
        if own_rank is None:
            return
        own_pkg = _top_package(module.module_name)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                targets = [(alias.name, node.lineno) for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                resolved = _resolve_relative(module.module_name, node.module, node.level)
                targets = [(resolved, node.lineno)] if resolved else []
            else:
                continue
            for target, lineno in targets:
                if not target or not target.startswith("repro"):
                    continue
                target_rank = layer_of(target)
                target_pkg = _top_package(target)
                if target_rank is None:
                    continue
                if target_pkg is not None and target_pkg == own_pkg:
                    continue  # intra-package imports are always fine
                if target_rank > own_rank:
                    yield self.diagnostic(
                        module,
                        lineno,
                        f"upward import: {module.module_name} (layer {own_rank}) "
                        f"imports {target} (layer {target_rank})",
                    )
                elif target_rank == own_rank:
                    yield self.diagnostic(
                        module,
                        lineno,
                        f"lateral import between same-layer packages: "
                        f"{module.module_name} imports {target}",
                    )
