"""LOC001 -- locality: algorithm layers may not peek at ground truth.

The paper's central claim is that UBF/IFF and surface reconstruction are
*localized*: every node decides from its one-hop neighborhood embedded in
a locally built coordinate frame.  Ground-truth positions and the
ground-truth boundary labels exist in this codebase only so deployments
can be generated and detections scored.  Code under ``repro.core`` and
``repro.surface`` therefore may not

* read the ground-truth attributes (``.positions``, ``.truth``,
  ``.truth_boundary``, ``.truth_boundary_set``), nor
* import ``repro.evaluation`` (the scorer) or ``repro.shapes`` (the
  ground-truth region generators).

Documented evaluation shims escape with ``# lint: allow[LOC001]`` plus a
justification comment on the same line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

LOCALIZED_PACKAGES = ("repro.core", "repro.surface")
GROUND_TRUTH_ATTRS = frozenset(
    {"positions", "truth", "truth_boundary", "truth_boundary_set"}
)
FORBIDDEN_IMPORTS = ("repro.evaluation", "repro.shapes")


def _in_localized_layer(module_name: str) -> bool:
    return any(
        module_name == pkg or module_name.startswith(pkg + ".")
        for pkg in LOCALIZED_PACKAGES
    )


@register
class LocalityRule(Rule):
    code = "LOC001"
    summary = (
        "repro.core / repro.surface must stay localized: no ground-truth "
        "attribute reads, no imports of repro.evaluation or repro.shapes"
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        if not _in_localized_layer(module.module_name):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in GROUND_TRUTH_ATTRS:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    f"ground-truth attribute '.{node.attr}' read inside localized "
                    f"module {module.module_name}; algorithm code must use "
                    "locally built frames (see docs/STATIC_ANALYSIS.md)",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bad = _forbidden_target(alias.name)
                    if bad:
                        yield self.diagnostic(
                            module,
                            node.lineno,
                            f"localized module {module.module_name} imports {bad}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                bad = _forbidden_target(node.module)
                if bad:
                    yield self.diagnostic(
                        module,
                        node.lineno,
                        f"localized module {module.module_name} imports {bad}",
                    )


def _forbidden_target(dotted: str) -> str:
    for pkg in FORBIDDEN_IMPORTS:
        if dotted == pkg or dotted.startswith(pkg + "."):
            return pkg
    return ""
