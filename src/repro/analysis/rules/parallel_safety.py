"""PAR008 -- fork/pickle safety for pool payloads and worker functions.

``run_sharded`` (and the stdlib pool APIs underneath it) promises
byte-identical results for any worker count.  That promise survives only
if everything shipped to a worker process round-trips through pickle and
carries no hidden shared state.  Three patterns break it:

* **Lambdas as pool payloads.**  ``pool.map(lambda ...)`` raises under the
  ``spawn`` start method and silently relies on ``fork`` elsewhere --
  either way the payload is not a stable, picklable unit of work.
* **Nested functions as pool payloads.**  A function defined inside
  another function closure-captures its environment (commonly an
  ``np.random.Generator`` or a ``Tracer``); pickle cannot serialize the
  closure, and under ``fork`` each worker gets a *copy* whose mutations
  (RNG state advances, recorded spans) never propagate back.
* **Module-global mutation inside worker functions.**  A function passed
  to a pool (payload or ``initializer=``) that assigns to, or calls a
  mutator on, a module-level binding builds per-process state.  The
  parent never sees those writes, so results can depend on which worker
  ran which shard.  The one sanctioned idiom -- installing a read-only
  payload once per worker from the pool initializer -- must carry a
  justified ``# lint: allow[PAR008]``.

Payload sinks recognized: ``<pool|executor>.map/submit/imap/
imap_unordered/apply/apply_async/starmap``, the ``initializer=`` /
``target=`` keywords of ``ProcessPoolExecutor`` / ``Pool`` / ``Process``
constructors, and the sharded drivers ``run_sharded`` /
``run_ubf_parallel`` / ``run_frames_parallel``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

#: Method names that submit work to a pool-like receiver.
POOL_METHODS = frozenset(
    {"map", "submit", "imap", "imap_unordered", "apply", "apply_async", "starmap"}
)

#: Receiver identifiers (final segment, lowercased) treated as pools.
POOL_RECEIVER_HINTS = ("pool", "executor")

#: Constructors whose keywords carry worker functions.
POOL_CONSTRUCTORS = frozenset({"ProcessPoolExecutor", "Pool", "Process"})
POOL_CONSTRUCTOR_KEYWORDS = frozenset({"initializer", "target"})

#: Sharded drivers from :mod:`repro.core.parallel`; the first positional
#: argument is the (picklable) task payload.
SHARDED_DRIVERS = frozenset(
    {"run_sharded", "run_ubf_parallel", "run_frames_parallel"}
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _final_identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _module_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound by assignments at module top level."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _function_index(
    tree: ast.Module,
) -> Tuple[Dict[str, ast.FunctionDef], Set[str]]:
    """(module-level defs by name, names of nested defs)."""
    top_level: Dict[str, ast.FunctionDef] = {}
    nested: Set[str] = set()

    def walk(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth == 0 and isinstance(child, ast.FunctionDef):
                    top_level[child.name] = child
                elif depth > 0:
                    nested.add(child.name)
                walk(child, depth + 1)
            elif isinstance(child, ast.ClassDef):
                # Methods keep the enclosing depth: a depth-0 method used as
                # a payload is picklable (via its instance) but still gets
                # the global-mutation check; it is never a "nested" closure.
                walk(child, depth)
            else:
                walk(child, depth)

    walk(tree, 0)
    return top_level, nested


def _payload_sites(tree: ast.Module) -> Iterator[Tuple[ast.expr, str]]:
    """Yield ``(payload_expr, sink_description)`` for every pool sink."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in POOL_METHODS:
            receiver = _final_identifier(func.value)
            if receiver is not None and any(
                hint in receiver.lower() for hint in POOL_RECEIVER_HINTS
            ):
                if node.args:
                    yield node.args[0], f"{receiver}.{func.attr}()"
        name = _final_identifier(func)
        if name in POOL_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg in POOL_CONSTRUCTOR_KEYWORDS:
                    yield keyword.value, f"{name}({keyword.arg}=...)"
        elif name in SHARDED_DRIVERS and node.args:
            yield node.args[0], f"{name}()"


@register
class ParallelSafetyRule(Rule):
    code = "PAR008"
    summary = (
        "pool payloads must be module-level picklable functions that do "
        "not mutate module globals"
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        top_level, nested = _function_index(module.tree)
        globals_ = _module_level_bindings(module.tree)
        worker_fns: List[Tuple[str, ast.FunctionDef, str]] = []
        seen_workers: Set[str] = set()

        for payload, sink in _payload_sites(module.tree):
            if isinstance(payload, ast.Lambda):
                yield self.diagnostic(
                    module,
                    payload.lineno,
                    f"lambda passed to {sink}: lambdas cannot be pickled to "
                    "worker processes; define the worker at module level",
                )
                continue
            name = _final_identifier(payload)
            if name is None:
                continue
            if name in nested and name not in top_level:
                yield self.diagnostic(
                    module,
                    payload.lineno,
                    f"nested function '{name}' passed to {sink}: closures "
                    "(captured rng/tracer state included) do not pickle and "
                    "fork-copied state never propagates back; define the "
                    "worker at module level",
                )
            elif name in top_level and name not in seen_workers:
                seen_workers.add(name)
                worker_fns.append((name, top_level[name], sink))

        for name, fn, sink in worker_fns:
            yield from self._check_global_mutation(module, name, fn, sink, globals_)

    def _check_global_mutation(
        self,
        module: ModuleContext,
        fn_name: str,
        fn: ast.FunctionDef,
        sink: str,
        globals_: Set[str],
    ) -> Iterator[Diagnostic]:
        declared_global: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        mutable = globals_ | declared_global

        def flag(lineno: int, name: str) -> Diagnostic:
            return self.diagnostic(
                module,
                lineno,
                f"worker function '{fn_name}' (passed to {sink}) mutates "
                f"module global '{name}'; worker-process writes never reach "
                "the parent -- return state explicitly",
            )

        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    name = self._mutated_global(target, mutable, declared_global)
                    if name is not None:
                        yield flag(node.lineno, name)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutable
            ):
                yield flag(node.lineno, node.func.value.id)

    @staticmethod
    def _mutated_global(
        target: ast.expr, mutable: Set[str], declared_global: Set[str]
    ) -> Optional[str]:
        # x = ... rebinds a local unless declared global; x[k] = ... and
        # x.attr = ... mutate whatever module-level object x names.
        if isinstance(target, ast.Name) and target.id in declared_global:
            return target.id
        if isinstance(target, (ast.Subscript, ast.Attribute)) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id in mutable:
                return target.value.id
        return None
