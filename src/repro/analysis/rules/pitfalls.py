"""MUT004 / EXC005 -- classic Python pitfalls that corrupt experiments.

MUT004 flags mutable default arguments (``def f(xs=[])``): the default is
created once per *process*, so state leaks across calls and across
repeated experiment runs in one session -- exactly the kind of hidden
coupling a reproduction cannot afford.  Immutable dataclass defaults such
as ``config: UBFConfig = UBFConfig()`` are fine (the config classes are
``frozen=True``) and are not flagged.

EXC005 flags bare ``except:`` and over-broad ``except Exception`` /
``except BaseException`` handlers, which swallow numerical errors (and
``KeyboardInterrupt`` in the bare case) and convert wrong answers into
silent ones.  A broad handler that unconditionally re-raises (contains a
bare ``raise``) is accepted -- that is the legitimate cleanup idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    code = "MUT004"
    summary = "no mutable default arguments (lists/dicts/sets created once per process)"

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    fn_name = getattr(node, "name", "<lambda>")
                    yield self.diagnostic(
                        module,
                        default.lineno,
                        f"mutable default argument in '{fn_name}'; use None and "
                        "create the container inside the function",
                    )


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(inner, ast.Raise) and inner.exc is None
        for inner in ast.walk(handler)
    )


def _broad_name(type_node: ast.expr) -> str:
    if isinstance(type_node, ast.Name) and type_node.id in BROAD_EXCEPTIONS:
        return type_node.id
    if isinstance(type_node, ast.Tuple):
        for elt in type_node.elts:
            name = _broad_name(elt)
            if name:
                return name
    return ""


@register
class BroadExceptRule(Rule):
    code = "EXC005"
    summary = "no bare or over-broad except handlers (unless they re-raise)"

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    "bare 'except:' swallows every error including "
                    "KeyboardInterrupt; catch the specific exception",
                )
                continue
            broad = _broad_name(node.type)
            if broad and not _reraises(node):
                yield self.diagnostic(
                    module,
                    node.lineno,
                    f"over-broad 'except {broad}' without re-raise; catch the "
                    "specific exception or re-raise after cleanup",
                )
