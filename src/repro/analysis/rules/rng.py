"""RNG003 -- reproducibility: randomness must flow through seeded Generators.

Every experiment in the reproduction is replayable because algorithm code
takes an explicit ``np.random.Generator`` parameter.  Three patterns break
that contract and are flagged:

* any ``np.random.<fn>(...)`` / ``random.<fn>(...)`` call at module level
  (import-time RNG state makes results depend on import order);
* ``default_rng()`` with no seed argument anywhere outside the CLI layer
  (``repro.cli`` parses ``--seed`` and is the one place an unseeded
  generator could legitimately originate -- and even there a seed default
  is preferred);
* the legacy global-state mutators ``np.random.seed`` / ``random.seed`` /
  ``np.random.set_state`` at any depth, which poison unrelated callers.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

UNSEEDED_EXEMPT_MODULES = ("repro.cli",)
GLOBAL_STATE_FNS = frozenset({"seed", "set_state"})


def _collect_random_aliases(tree: ast.Module) -> tuple:
    """Names bound to numpy / numpy.random / random by top-level imports."""
    numpy_aliases: Set[str] = set()
    nprandom_aliases: Set[str] = set()
    random_aliases: Set[str] = set()
    default_rng_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    numpy_aliases.add(bound)
                elif alias.name == "numpy.random":
                    if alias.asname:
                        # ``import numpy.random as npr``: npr IS the module
                        nprandom_aliases.add(alias.asname)
                    else:
                        # plain ``import numpy.random`` binds the root name,
                        # so calls look like ``numpy.random.<fn>(...)``
                        numpy_aliases.add("numpy")
                elif alias.name == "random":
                    random_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom) and node.module in ("numpy.random", "random"):
            for alias in node.names:
                bound = alias.asname or alias.name
                if node.module == "numpy.random" and alias.name == "default_rng":
                    default_rng_names.add(bound)
                elif node.module == "random":
                    random_aliases.add(bound)  # direct fn import, flagged by name
    return numpy_aliases, nprandom_aliases, random_aliases, default_rng_names


def _random_call_name(call: ast.Call, numpy_aliases, nprandom_aliases, random_aliases, default_rng_names):
    """('np.random', fn) / ('random', fn) / ('default_rng', fn) or None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        # np.random.<fn>(...)
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        ):
            return ("np.random", func.attr)
        if isinstance(base, ast.Name):
            if base.id in nprandom_aliases:
                return ("np.random", func.attr)
            if base.id in random_aliases:
                return ("random", func.attr)
    elif isinstance(func, ast.Name):
        if func.id in default_rng_names:
            return ("default_rng", "default_rng")
        if func.id in random_aliases:
            return ("random", func.id)
    return None


@register
class RngRule(Rule):
    code = "RNG003"
    summary = (
        "no module-level np.random/random calls, no unseeded default_rng() "
        "outside the CLI, no legacy global RNG state"
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        aliases = _collect_random_aliases(module.tree)
        exempt_unseeded = module.module_name in UNSEEDED_EXEMPT_MODULES
        yield from self._walk(module, module.tree, aliases, depth=0, exempt=exempt_unseeded)

    def _walk(self, module, node, aliases, depth, exempt) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Call):
            yield from self._check_call(module, node, aliases, depth, exempt)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Only the body is deferred to call time.  Defaults, decorators,
            # and annotations execute in the enclosing scope when the ``def``
            # runs, so ``def f(x=np.random.rand())`` at module level is a
            # module-level call.
            body = node.body if isinstance(node.body, list) else [node.body]
            body_ids = {id(stmt) for stmt in body}
            for child in ast.iter_child_nodes(node):
                child_depth = depth + 1 if id(child) in body_ids else depth
                yield from self._walk(module, child, aliases, child_depth, exempt)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, aliases, depth, exempt)

    def _check_call(self, module, call, aliases, depth, exempt) -> Iterator[Diagnostic]:
        resolved = _random_call_name(call, *aliases)
        if resolved is None:
            return
        family, fn = resolved
        is_default_rng = fn == "default_rng"
        unseeded = is_default_rng and not call.args and not call.keywords
        shown = fn if family == "default_rng" else f"{family}.{fn}"
        if depth == 0:
            yield self.diagnostic(
                module,
                call.lineno,
                f"module-level {shown}() call; seed an np.random.Generator "
                "inside the consuming function instead",
            )
        elif fn in GLOBAL_STATE_FNS and family in ("np.random", "random"):
            yield self.diagnostic(
                module,
                call.lineno,
                f"global RNG state mutation {family}.{fn}(); pass an explicit "
                "np.random.Generator instead",
            )
        elif unseeded and not exempt:
            yield self.diagnostic(
                module,
                call.lineno,
                "unseeded default_rng(); algorithm code must accept a seeded "
                "np.random.Generator parameter",
            )
        elif is_default_rng or family == "random":
            return
        elif family == "np.random":
            # Seeded default_rng aside, np.random.<fn> uses the legacy
            # global-state API even inside functions.
            yield self.diagnostic(
                module,
                call.lineno,
                f"legacy np.random.{fn}() call; use a seeded "
                "np.random.Generator parameter",
            )
