"""TRC010 -- observability misuse detectable statically.

Two contract violations against :mod:`repro.observability` are visible in
the AST:

* **Spans opened outside a context manager.**  ``tracer.span(...)``
  returns an *unentered* context manager; calling it as a bare statement
  (or stashing it without ``with``) records nothing and -- worse --
  silently unbalances the caller's mental model of the trace.  The only
  correct forms are ``with tracer.span(...) [as s]:`` and returning the
  context manager to a caller that enters it.  The check keys on the
  receiver spelling (a final identifier containing ``tracer``), so
  unrelated ``.span()`` methods (e.g. ``re.Match.span``) are untouched.
* **Metric kind conflicts.**  ``registry.counter("x")`` after
  ``registry.gauge("x")`` raises ``TypeError`` at run time -- but only on
  the run that reaches the second call site.  When both sites name the
  metric with a string literal the conflict is provable statically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.context import ModuleContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import build_parent_map

#: Receiver identifiers (final segment, lowercased substring match)
#: treated as tracers / metric registries.
TRACER_RECEIVER_HINT = "tracer"
REGISTRY_RECEIVER_HINTS = ("registry", "metrics")

#: MetricsRegistry factory methods, keyed to the kind they create.
METRIC_KINDS = ("counter", "gauge", "histogram")


def _final_identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class TracingMisuseRule(Rule):
    code = "TRC010"
    summary = (
        "tracer spans must be entered with 'with'; metric names must keep "
        "one kind per module"
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Diagnostic]:
        parents = build_parent_map(module.tree)
        yield from self._check_spans(module, parents)
        yield from self._check_metric_kinds(module)

    def _check_spans(
        self, module: ModuleContext, parents: Dict[int, ast.AST]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "span"):
                continue
            receiver = _final_identifier(func.value)
            if receiver is None or TRACER_RECEIVER_HINT not in receiver.lower():
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                continue
            if isinstance(parent, ast.Return):
                continue  # handing the context manager to the caller
            yield self.diagnostic(
                module,
                node.lineno,
                f"span opened on '{receiver}' without a 'with' block: the "
                "context manager is never entered, so the span is never "
                "recorded; write 'with ...span(...) as s:'",
            )

    def _check_metric_kinds(self, module: ModuleContext) -> Iterator[Diagnostic]:
        first_kind: Dict[str, Tuple[str, int]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in METRIC_KINDS):
                continue
            receiver = _final_identifier(func.value)
            if receiver is None or not any(
                hint in receiver.lower() for hint in REGISTRY_RECEIVER_HINTS
            ):
                continue
            if not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            kind = func.attr
            seen = first_kind.get(name)
            if seen is None:
                first_kind[name] = (kind, node.lineno)
            elif seen[0] != kind:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    f"metric {name!r} requested as {kind} but registered as "
                    f"{seen[0]} on line {seen[1]}; a kind conflict raises "
                    "TypeError on the first run that reaches this call",
                )
