"""``repro-san`` -- dynamic determinism sanitizer (byte-diff harness).

The static rules (DET007/PAR008/FLT009/TRC010) catch nondeterminism the
AST can prove; this module catches the rest empirically.  It re-runs one
pinned, seeded scenario end to end -- ``generate`` -> ``detect`` ->
``surface`` -- in a fresh subprocess per *cell* of a small matrix:

* ``PYTHONHASHSEED`` in ``{0, 1, random}`` -- flushes out hash-order
  leaks (set iteration, dict displays built from sets), which only vary
  *between* interpreter runs;
* ``--workers`` in ``{1, 2, 4}`` -- flushes out sharding and
  pool-scheduling leaks (including the shared-memory payload transport);
* ``--engines`` (optional third axis) -- replays the matrix per
  localization engine.  Engines legitimately differ at the documented
  1e-9 coordinate tolerance, so cells are byte-compared only against the
  first cell *of the same engine*; the axis checks that each engine is
  individually deterministic across hash seeds and worker counts.  Pair
  it with ``--error`` > 0, otherwise localization resolves to ``true``
  and no engine runs at all.
* ``--ubf-kernels`` (optional fourth axis) -- replays the matrix per UBF
  emptiness kernel.  Unlike engines, kernels promise *identical*
  observables, so all kernels of one engine share a single byte-diff
  group: a vectorized cell and a batched cell must produce the same
  bytes.

Every artifact the pipeline serializes -- the network JSON, the detection
result, each exported mesh OBJ, and the JSONL execution trace (recorded
under the deterministic ``--trace-clock tick`` so timestamps are
replayable) -- must be byte-identical across all cells.  Traces are
normalized first by dropping the few span attributes that *name* the cell
(currently ``workers``): those record run identity, not run behavior.

On divergence the harness reports the first differing artifact, line, and
-- for JSON/JSONL lines -- the first differing field inside the enclosing
span/document, then exits 1.  Subprocess or usage failures exit 2.

Subprocesses are required because ``PYTHONHASHSEED`` is read once at
interpreter start; no amount of in-process re-seeding can vary it.

Usage::

    repro-san                          # pinned 2k scenario, 3x3 matrix
    repro-san --surface-nodes 80 --interior-nodes 80   # quick local run
    repro-san --hash-seeds 0,1 --workers 1,2           # smaller matrix
    repro-san --self-test              # prove the diff path detects drift

Also reachable as ``python -m repro.analysis.sanitize``.  Stdlib-only by
design, like the rest of :mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Hash-seed values for the default matrix.  "random" asks CPython for a
#: fresh salt, so any hash-order leak diverges from the pinned cells.
DEFAULT_HASH_SEEDS = ("0", "1", "random")

#: Worker counts for the default matrix.
DEFAULT_WORKERS = (1, 2, 4)

#: Localization engines for the default matrix.  A single entry keeps the
#: default run a two-axis matrix; pass ``--engines batch,sparse`` (with
#: ``--error`` > 0) to replay it once per engine.
DEFAULT_ENGINES = ("batch",)

#: UBF kernels for the default matrix.  A single entry keeps the default
#: run small; pass ``--ubf-kernels vectorized,batched`` to assert the
#: kernels are byte-interchangeable end to end.
DEFAULT_KERNELS = ("vectorized",)

#: UBF kernels ``repro detect --kernel`` accepts (hardcoded: this module
#: is stdlib-only by design and must not import repro.geometry).
VALID_KERNELS = ("naive", "vectorized", "batched", "native")

#: Span attributes that identify the run rather than describe behavior;
#: stripped from traces before diffing (see module docstring).  Dotted
#: entries address nested dicts (the ``detect`` span records its whole
#: config, worker count and kernel included).  ``kernel`` qualifies
#: because the kernels contract *is* byte-identical outputs -- the cells
#: must only differ in the attribute naming the kernel.
RUN_IDENTITY_ATTRS = (
    "workers",
    "config.workers",
    "kernel",
    "config.ubf.kernel",
)

#: Serialization settings matching repro.observability.export, so a
#: normalized trace that drops nothing round-trips byte-identically.
_JSON_SEPARATORS = (", ", ": ")


class CellError(RuntimeError):
    """A cell's subprocess failed; the matrix cannot be compared."""


@dataclasses.dataclass(frozen=True)
class Cell:
    """One point of the sanitizer matrix."""

    hash_seed: str
    workers: int
    engine: str = "batch"
    kernel: str = "vectorized"

    @property
    def label(self) -> str:
        return (
            f"hashseed={self.hash_seed},workers={self.workers},"
            f"engine={self.engine},kernel={self.kernel}"
        )

    @property
    def dirname(self) -> str:
        return (
            f"cell_hs{self.hash_seed}_w{self.workers}"
            f"_{self.engine}_{self.kernel}"
        )


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """The pinned scenario every cell replays."""

    scenario: str = "sphere"
    surface_nodes: int = 600
    interior_nodes: int = 1400
    degree: float = 25.0
    seed: int = 0
    error: float = 0.0


def build_cells(
    hash_seeds: Sequence[str] = DEFAULT_HASH_SEEDS,
    workers: Sequence[int] = DEFAULT_WORKERS,
    engines: Sequence[str] = DEFAULT_ENGINES,
    kernels: Sequence[str] = DEFAULT_KERNELS,
) -> List[Cell]:
    """The full matrix in deterministic (engine-major) order.

    Engine-major ordering keeps each engine's cells contiguous, so the
    per-engine baseline (the group's first cell) is always the group's
    ``kernel[0] x hash_seed[0] x workers[0]`` corner.  Kernels deliberately
    do *not* form their own groups -- see the module docstring.
    """
    return [
        Cell(hs, w, e, kn)
        for e in engines
        for kn in kernels
        for hs in hash_seeds
        for w in workers
    ]


def _src_root() -> Path:
    # sanitize.py lives at src/repro/analysis/sanitize.py; subprocesses
    # must import the same tree regardless of the caller's cwd.
    return Path(__file__).resolve().parents[2]


def _cell_env(cell: Cell) -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = cell.hash_seed
    existing = env.get("PYTHONPATH")
    src = str(_src_root())
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def run_cell(spec: ScenarioSpec, cell: Cell, cell_dir: Path) -> None:
    """Run generate -> detect -> surface for one cell.

    All artifact paths are relative to ``cell_dir`` so recorded span
    attributes (e.g. the network path) are identical across cells.
    """
    steps = [
        [
            "generate",
            "--scenario", spec.scenario,
            "--surface-nodes", str(spec.surface_nodes),
            "--interior-nodes", str(spec.interior_nodes),
            "--degree", str(spec.degree),
            "--seed", str(spec.seed),
            "--out", "net.json",
        ],
        [
            "detect",
            "--network", "net.json",
            "--seed", str(spec.seed),
            "--error", str(spec.error),
            "--engine", cell.engine,
            "--kernel", cell.kernel,
            "--workers", str(cell.workers),
            "--out", "result.json",
            "--trace", "trace.jsonl",
            "--trace-clock", "tick",
        ],
        [
            "surface",
            "--network", "net.json",
            "--result", "result.json",
            "--out-prefix", "mesh",
        ],
    ]
    env = _cell_env(cell)
    for step in steps:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli"] + step,
            cwd=str(cell_dir),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        if proc.returncode != 0:
            tail = proc.stderr.decode("utf-8", errors="replace").strip().splitlines()
            raise CellError(
                f"cell {cell.label}: '{step[0]}' exited "
                f"{proc.returncode}: {' | '.join(tail[-3:]) or '<no stderr>'}"
            )


def _pop_path(mapping: Dict[str, object], dotted: str) -> None:
    """Remove ``a.b.c`` from nested dicts; missing segments are a no-op."""
    parts = dotted.split(".")
    for part in parts[:-1]:
        nested = mapping.get(part)
        if not isinstance(nested, dict):
            return
        mapping = nested
    mapping.pop(parts[-1], None)


def normalize_trace(raw: bytes) -> bytes:
    """Strip run-identity span attributes; keep everything else verbatim.

    Re-serializes each line with the exporter's own sorted-key settings,
    so a trace with nothing to strip normalizes to its original bytes.
    """
    out_lines: List[str] = []
    for line in raw.decode("utf-8").splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        attrs = doc.get("attrs")
        if isinstance(attrs, dict):
            for dotted in RUN_IDENTITY_ATTRS:
                _pop_path(attrs, dotted)
        out_lines.append(json.dumps(doc, sort_keys=True, separators=_JSON_SEPARATORS))
    return ("\n".join(out_lines) + "\n").encode("utf-8")


def collect_artifacts(cell_dir: Path) -> Dict[str, bytes]:
    """Read every comparable artifact a cell produced, traces normalized."""
    artifacts: Dict[str, bytes] = {}
    for name in ("net.json", "result.json"):
        path = cell_dir / name
        if path.exists():
            artifacts[name] = path.read_bytes()
    trace = cell_dir / "trace.jsonl"
    if trace.exists():
        artifacts["trace.jsonl"] = normalize_trace(trace.read_bytes())
    for mesh in sorted(cell_dir.glob("mesh_*.obj")):
        artifacts[mesh.name] = mesh.read_bytes()
    return artifacts


def _first_json_field_diff(base: object, other: object, path: str = "") -> Optional[str]:
    """Dotted path of the first differing field between two JSON values."""
    if type(base) is not type(other):
        return f"{path or '$'} (type {type(base).__name__} vs {type(other).__name__})"
    if isinstance(base, dict):
        for key in sorted(set(base) | set(other)):
            sub = f"{path}.{key}" if path else key
            if key not in base:
                return f"{sub} (missing in baseline)"
            if key not in other:
                return f"{sub} (missing in this cell)"
            found = _first_json_field_diff(base[key], other[key], sub)
            if found is not None:
                return found
        return None
    if isinstance(base, list):
        for i, (b, o) in enumerate(zip(base, other)):
            found = _first_json_field_diff(b, o, f"{path}[{i}]")
            if found is not None:
                return found
        if len(base) != len(other):
            return f"{path or '$'} (length {len(base)} vs {len(other)})"
        return None
    if base != other:
        return f"{path or '$'} ({base!r} vs {other!r})"
    return None


def _describe_line_diff(base_line: str, other_line: str) -> str:
    """Field-level description when both lines parse as JSON, else raw."""
    try:
        base_doc = json.loads(base_line)
        other_doc = json.loads(other_line)
    except ValueError:
        return f"baseline {base_line!r} vs {other_line!r}"
    where = ""
    if isinstance(base_doc, dict) and "name" in base_doc:
        where = f" in span '{base_doc['name']}'"
    field = _first_json_field_diff(base_doc, other_doc)
    return f"first divergent field{where}: {field}"


def first_divergence(name: str, base: bytes, other: bytes) -> Optional[str]:
    """Human-readable description of the first byte-level divergence."""
    if base == other:
        return None
    base_lines = base.decode("utf-8", errors="replace").splitlines()
    other_lines = other.decode("utf-8", errors="replace").splitlines()
    for i, (b, o) in enumerate(zip(base_lines, other_lines), start=1):
        if b != o:
            return f"{name}: line {i}: {_describe_line_diff(b, o)}"
    return (
        f"{name}: line {min(len(base_lines), len(other_lines)) + 1}: "
        f"baseline has {len(base_lines)} line(s), this cell {len(other_lines)}"
    )


Runner = Callable[[ScenarioSpec, Cell, Path], None]


def run_matrix(
    spec: ScenarioSpec,
    cells: Sequence[Cell],
    workdir: Path,
    *,
    runner: Runner = run_cell,
    progress: Callable[[str], None] = lambda line: None,
) -> Tuple[bool, List[str]]:
    """Run every cell and byte-diff artifacts against its engine baseline.

    Cells are compared against the first cell *with the same engine*:
    engines agree only to the documented 1e-9 coordinate tolerance, so a
    cross-engine byte-diff would report that tolerance as a divergence.
    Within one engine, every (hash seed, worker count) cell must be
    byte-identical.

    Returns ``(identical, report_lines)``; raises :class:`CellError` when
    a cell's subprocess fails (exit 2 territory -- nothing to compare).
    """
    if len(cells) < 2:
        raise ValueError("need at least two cells to compare")
    report: List[str] = []
    baselines: Dict[str, Tuple[Cell, Dict[str, bytes]]] = {}
    for index, cell in enumerate(cells):
        cell_dir = workdir / cell.dirname
        cell_dir.mkdir(parents=True, exist_ok=True)
        progress(f"[{index + 1}/{len(cells)}] {cell.label}")
        runner(spec, cell, cell_dir)
        artifacts = collect_artifacts(cell_dir)
        if not artifacts:
            raise CellError(f"cell {cell.label}: produced no artifacts")
        if cell.engine not in baselines:
            baselines[cell.engine] = (cell, artifacts)
            continue
        baseline_cell, baseline = baselines[cell.engine]
        for missing in sorted(set(baseline) - set(artifacts)):
            report.append(f"{missing}: missing in cell {cell.label}")
        for extra in sorted(set(artifacts) - set(baseline)):
            report.append(f"{extra}: only in cell {cell.label}")
        for name in sorted(set(baseline) & set(artifacts)):
            diff = first_divergence(name, baseline[name], artifacts[name])
            if diff is not None:
                report.append(f"cell {cell.label} vs {baseline_cell.label}: {diff}")
    return (not report), report


def _self_test_runner(spec: ScenarioSpec, cell: Cell, cell_dir: Path) -> None:
    """Deliberately nondeterministic runner: leaks the cell identity.

    Stands in for a pipeline with a worker-count leak, proving the diff
    path reports artifact, line, and field (no subprocesses involved).
    """
    doc = {"boundary": [1, 2, 3], "workers_leak": cell.workers}
    (cell_dir / "result.json").write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )


def _self_test(spec: ScenarioSpec, cells: Sequence[Cell], workdir: Path) -> int:
    ok, report = run_matrix(spec, cells, workdir, runner=_self_test_runner)
    if ok:
        print("self-test FAILED: injected divergence was not detected")
        return 1
    print("self-test OK: injected divergence detected:")
    for line in report:
        print(f"  {line}")
    return 0


def _parse_csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-san",
        description=(
            "byte-diff one pinned scenario across PYTHONHASHSEED and "
            "worker-count cells (see docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument("--scenario", default="sphere")
    parser.add_argument("--surface-nodes", type=int, default=600)
    parser.add_argument("--interior-nodes", type=int, default=1400)
    parser.add_argument("--degree", type=float, default=25.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--error",
        type=float,
        default=0.0,
        help="uniform absolute ranging error; > 0 makes detection run MDS "
        "localization, exercising the --engines axis (default: 0)",
    )
    parser.add_argument(
        "--engines",
        default=",".join(DEFAULT_ENGINES),
        help="comma-separated localization engines; each engine forms its "
        "own byte-diff group (default: batch)",
    )
    parser.add_argument(
        "--ubf-kernels",
        default=",".join(DEFAULT_KERNELS),
        help="comma-separated UBF kernels; kernels share one byte-diff "
        "group per engine -- their artifacts must be byte-identical "
        "(default: vectorized)",
    )
    parser.add_argument(
        "--hash-seeds",
        default=",".join(DEFAULT_HASH_SEEDS),
        help="comma-separated PYTHONHASHSEED values (default: 0,1,random)",
    )
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKERS),
        help="comma-separated worker counts (default: 1,2,4)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for per-cell artifacts (default: a temp dir, "
        "removed on success, kept on divergence)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the divergence report here (CI artifact)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the diff path against an injected divergence and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = ScenarioSpec(
        scenario=args.scenario,
        surface_nodes=args.surface_nodes,
        interior_nodes=args.interior_nodes,
        degree=args.degree,
        seed=args.seed,
        error=args.error,
    )
    hash_seeds = _parse_csv(args.hash_seeds)
    for hs in hash_seeds:
        if hs != "random" and not hs.isdigit():
            print(f"error: invalid hash seed {hs!r}", file=sys.stderr)
            return 2
    try:
        workers = [int(w) for w in _parse_csv(args.workers)]
    except ValueError:
        print(f"error: invalid --workers {args.workers!r}", file=sys.stderr)
        return 2
    engines = _parse_csv(args.engines)
    for engine in engines:
        if engine not in ("batch", "sparse", "pernode"):
            print(f"error: invalid engine {engine!r}", file=sys.stderr)
            return 2
    kernels = _parse_csv(args.ubf_kernels)
    for kernel in kernels:
        if kernel not in VALID_KERNELS:
            print(f"error: invalid kernel {kernel!r}", file=sys.stderr)
            return 2
    cells = build_cells(hash_seeds, workers, engines, kernels)
    if len(cells) < 2:
        print("error: matrix needs at least two cells", file=sys.stderr)
        return 2

    own_workdir = args.workdir is None
    workdir = Path(
        tempfile.mkdtemp(prefix="repro-san-") if own_workdir else args.workdir
    )
    workdir.mkdir(parents=True, exist_ok=True)

    if args.self_test:
        code = _self_test(spec, cells, workdir)
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        return code

    try:
        ok, report = run_matrix(spec, cells, workdir, progress=print)
    except CellError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if ok:
        groups = len({cell.engine for cell in cells})
        group_note = f" in {groups} engine group(s)" if groups > 1 else ""
        print(
            f"repro-san: OK -- {len(cells)} cells byte-identical"
            f"{group_note} ({cells[0].label} is the baseline)"
        )
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        return 0

    print(f"repro-san: DIVERGENCE -- {len(report)} difference(s):")
    for line in report:
        print(f"  {line}")
    if args.report:
        Path(args.report).write_text("\n".join(report) + "\n", encoding="utf-8")
        print(f"wrote {args.report}")
    print(f"artifacts kept under {workdir}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
