"""Per-line lint suppression comments.

The escape hatch is explicit and code-scoped::

    graph = network.positions  # lint: allow[LOC001] -- evaluation shim, see docs

Only the codes named inside the brackets are suppressed, and only on the
line carrying the comment.  Several codes may be listed separated by
commas: ``# lint: allow[LOC001,RNG003]``.  A blanket ``allow[]`` (empty
bracket) suppresses nothing -- suppression must always name its rule.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_,\s]*)\]")


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the set of rule codes allowed there."""
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() for code in match.group(1).split(",") if code.strip()
        )
        if codes:
            out[lineno] = codes
    return out


def is_suppressed(suppressions: Dict[int, FrozenSet[str]], line: int, code: str) -> bool:
    return code.upper() in suppressions.get(line, frozenset())
