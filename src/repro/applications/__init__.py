"""Applications built on detected boundaries and meshes.

The paper's stated purpose for the locally planarized 2-manifold surfaces
is "to enable available graph theory tools to be applied on 3D surfaces,
such as embedding, localization, partition, and greedy routing among many
others" (Sec. I-B).  This package delivers two such tools:

* :mod:`repro.applications.surface_routing` -- greedy geographic routing
  *on the boundary surface*: landmark-level greedy forwarding over the
  mesh with guaranteed-progress fallback, plus node-level path expansion
  through the recorded virtual-edge paths.
* :mod:`repro.applications.hole_analysis` -- quantitative descriptions of
  detected holes (extent, centroid, volume estimate) from their boundary
  groups, the "delineate the event region" use case of Sec. I.
"""

from repro.applications.geo_routing import GeoRouter, GeoRouteResult, delivery_rate
from repro.applications.hole_analysis import HoleReport, analyze_hole
from repro.applications.partition import (
    SurfacePartition,
    balanced_partition,
    cell_partition,
)
from repro.applications.surface_routing import RouteResult, SurfaceRouter

__all__ = [
    "SurfaceRouter",
    "RouteResult",
    "GeoRouter",
    "GeoRouteResult",
    "delivery_rate",
    "analyze_hole",
    "HoleReport",
    "SurfacePartition",
    "cell_partition",
    "balanced_partition",
]
