"""Boundary-aware geographic routing through the network volume.

The classic consumer of boundary information: greedy geographic
forwarding delivers messages along the straight line to the destination
until it hits a *local minimum* -- typically the rim of a hole, where
every neighbor is farther from the destination than the current node.
2D protocols recover by face routing on a planarized graph; in 3D no such
planarization exists, which is exactly why the paper builds boundary
surfaces.

:class:`GeoRouter` implements greedy forwarding with a boundary-surface
recovery mode: on a local minimum at a boundary node (or adjacent to
one), the packet walks along the *detected boundary subgraph* -- always
moving to the boundary neighbor closest to the destination -- until plain
greedy can resume strictly closer than where it stalled.  The comparison
knob ``recovery`` = ``"none"`` | ``"boundary"`` lets the bench quantify
the delivery-rate gain the detected boundary provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.network.graph import NetworkGraph


@dataclass
class GeoRouteResult:
    """Outcome of one geographic routing attempt.

    Attributes
    ----------
    path:
        Node walk from source to destination; empty when undelivered.
    delivered:
        Whether the destination was reached.
    greedy_hops / recovery_hops:
        Hop counts by forwarding mode.
    stalls:
        Number of local minima encountered.
    """

    path: List[int] = field(default_factory=list)
    delivered: bool = False
    greedy_hops: int = 0
    recovery_hops: int = 0
    stalls: int = 0

    @property
    def greedy_success_ratio(self) -> float:
        """Fraction of hops decided by pure greedy progress."""
        total = self.greedy_hops + self.recovery_hops
        return self.greedy_hops / total if total else 1.0


class GeoRouter:
    """Greedy geographic router with boundary-surface recovery.

    Parameters
    ----------
    graph:
        Full network connectivity (positions are the routing metric).
    boundary:
        The detected boundary node set; required for ``recovery =
        "boundary"``.
    recovery:
        ``"none"`` -- plain greedy, drop on a local minimum;
        ``"boundary"`` -- walk the boundary subgraph until greedy can
        resume closer to the destination.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        boundary: Optional[Set[int]] = None,
        *,
        recovery: str = "boundary",
    ):
        if recovery not in ("none", "boundary"):
            raise ValueError("recovery must be 'none' or 'boundary'")
        if recovery == "boundary" and boundary is None:
            raise ValueError("boundary recovery requires the boundary set")
        self.graph = graph
        self.boundary: Set[int] = set(int(b) for b in boundary) if boundary else set()
        self.recovery = recovery

    def _greedy_next(self, node: int, dst_pos: np.ndarray) -> Optional[int]:
        """Strictly-closer neighbor nearest to the destination, or None."""
        positions = self.graph.positions
        here = float(np.linalg.norm(positions[node] - dst_pos))
        best: Optional[tuple] = None
        for nbr in self.graph.neighbors(node):
            nbr = int(nbr)
            d = float(np.linalg.norm(positions[nbr] - dst_pos))
            if d < here and (best is None or (d, nbr) < best):
                best = (d, nbr)
        return best[1] if best else None

    def _recovery_walk(
        self,
        start: int,
        dst_pos: np.ndarray,
        stall_distance: float,
        visited: Set[int],
        budget: int,
    ) -> Optional[List[int]]:
        """Walk the boundary subgraph until strictly closer than the stall.

        The walk greedily follows the unvisited boundary neighbor closest
        to the destination; it ends successfully at the first node whose
        distance beats ``stall_distance`` (from where plain greedy can
        resume).  Returns the walked segment excluding ``start``, or None
        when the walk dead-ends or exhausts its budget.
        """
        positions = self.graph.positions
        segment: List[int] = []
        current = start
        for _ in range(budget):
            candidates = [
                int(v)
                for v in self.graph.neighbors(current)
                if int(v) in self.boundary and int(v) not in visited
            ]
            if not candidates:
                return None
            nxt = min(
                candidates,
                key=lambda v: (float(np.linalg.norm(positions[v] - dst_pos)), v),
            )
            segment.append(nxt)
            visited.add(nxt)
            current = nxt
            if float(np.linalg.norm(positions[current] - dst_pos)) < stall_distance:
                return segment
        return None

    def route(self, src: int, dst: int, *, max_hops: Optional[int] = None) -> GeoRouteResult:
        """Route from ``src`` to ``dst``; see class docs for the modes."""
        limit = max_hops if max_hops is not None else 4 * self.graph.n_nodes
        positions = self.graph.positions
        dst_pos = positions[dst]
        result = GeoRouteResult(path=[src])
        visited: Set[int] = {src}
        current = src
        hops = 0
        while hops < limit:
            if current == dst:
                result.delivered = True
                return result
            nxt = self._greedy_next(current, dst_pos)
            if nxt is not None:
                result.path.append(nxt)
                result.greedy_hops += 1
                visited.add(nxt)
                current = nxt
                hops += 1
                continue
            # Local minimum.
            result.stalls += 1
            if self.recovery == "none":
                result.path = []
                return result
            # Enter recovery from the stalled node (or a boundary neighbor).
            entry = current
            if entry not in self.boundary:
                gateway = [
                    int(v)
                    for v in self.graph.neighbors(current)
                    if int(v) in self.boundary and int(v) not in visited
                ]
                if not gateway:
                    result.path = []
                    return result
                entry = min(
                    gateway,
                    key=lambda v: (float(np.linalg.norm(positions[v] - dst_pos)), v),
                )
                result.path.append(entry)
                result.recovery_hops += 1
                visited.add(entry)
                hops += 1
            stall_distance = float(np.linalg.norm(positions[current] - dst_pos))
            segment = self._recovery_walk(
                entry, dst_pos, stall_distance, visited, budget=limit - hops
            )
            if segment is None:
                result.path = []
                return result
            result.path.extend(segment)
            result.recovery_hops += len(segment)
            hops += len(segment)
            current = segment[-1]
        if current == dst:
            # Arrived on the final allowed hop.
            result.delivered = True
            return result
        result.path = []
        return result


def delivery_rate(
    router: GeoRouter,
    pairs,
) -> float:
    """Fraction of source/destination pairs the router delivers."""
    pairs = list(pairs)
    if not pairs:
        return 0.0
    delivered = sum(1 for s, d in pairs if router.route(int(s), int(d)).delivered)
    return delivered / len(pairs)
