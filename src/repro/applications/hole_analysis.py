"""Quantitative descriptions of detected holes.

The paper's motivating scenario is delineating an event region (a fire, a
chemical plume) from the void it leaves in the network.  Given a detected
hole's boundary group, this module estimates where the hole is and how big
it is -- the actionable numbers a monitoring application needs.

All estimates use only the boundary nodes' positions: the hole interior is
by definition empty of nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.network.graph import NetworkGraph


@dataclass(frozen=True)
class HoleReport:
    """Geometric summary of one detected hole.

    Attributes
    ----------
    n_boundary_nodes:
        Size of the hole's boundary group.
    centroid:
        Mean position of the boundary nodes (a consistent estimator of the
        hole center for roughly convex holes).
    mean_radius, max_radius:
        Distances of the boundary nodes from the centroid; for a spherical
        void the mean radius estimates the hole radius.
    volume_estimate:
        Convex-proxy volume: the ball of radius ``mean_radius``.  Reported
        as None when the boundary has fewer than 4 nodes.
    extent:
        Axis-aligned bounding box (lo, hi) of the boundary nodes.
    """

    n_boundary_nodes: int
    centroid: np.ndarray
    mean_radius: float
    max_radius: float
    volume_estimate: Optional[float]
    extent: tuple

    def as_row(self) -> str:
        """Formatted one-line summary."""
        vol = f"{self.volume_estimate:.2f}" if self.volume_estimate else "n/a"
        return (
            f"hole: {self.n_boundary_nodes} boundary nodes, "
            f"center=({self.centroid[0]:.2f}, {self.centroid[1]:.2f}, "
            f"{self.centroid[2]:.2f}), "
            f"radius(mean/max)={self.mean_radius:.2f}/{self.max_radius:.2f}, "
            f"volume~{vol}"
        )


def analyze_hole(graph: NetworkGraph, group: Sequence[int]) -> HoleReport:
    """Summarize a hole from its detected boundary group.

    Parameters
    ----------
    graph:
        The network graph (positions in radio-range units).
    group:
        Boundary node IDs of one hole (a non-outer group from
        :func:`repro.core.grouping.group_boundary_nodes`).
    """
    members = sorted(int(g) for g in group)
    if not members:
        raise ValueError("cannot analyze an empty boundary group")
    positions = graph.positions[np.asarray(members, dtype=int)]
    centroid = positions.mean(axis=0)
    radii = np.linalg.norm(positions - centroid, axis=1)
    mean_radius = float(radii.mean())
    volume = (
        4.0 / 3.0 * np.pi * mean_radius ** 3 if len(members) >= 4 else None
    )
    return HoleReport(
        n_boundary_nodes=len(members),
        centroid=centroid,
        mean_radius=mean_radius,
        max_radius=float(radii.max()),
        volume_estimate=volume,
        extent=(positions.min(axis=0), positions.max(axis=0)),
    )


def rank_holes(graph: NetworkGraph, groups: Sequence[Sequence[int]]) -> List[HoleReport]:
    """Analyze all non-outer groups, largest hole first.

    ``groups`` is the full group list from detection; the first (largest)
    group is assumed to be the outer boundary and skipped.
    """
    reports = [analyze_hole(graph, g) for g in groups[1:]]
    reports.sort(key=lambda r: -(r.volume_estimate or 0.0))
    return reports
