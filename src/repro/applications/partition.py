"""Surface partitioning: splitting a boundary into contiguous patches.

"Partition" is one of the graph tools the paper motivates its meshes with
(Sec. I-B).  Two partitioners are provided:

* :func:`cell_partition` -- the combinatorial Voronoi cells from the mesh
  construction themselves: one contiguous patch per landmark, which is
  the natural data-aggregation unit (each patch has a built-in head).
* :func:`balanced_partition` -- merges adjacent cells greedily until a
  requested patch count is reached, keeping patches contiguous and
  roughly size-balanced; useful when an application wants `p` work
  regions rather than one per landmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.network.graph import NetworkGraph
from repro.surface.landmarks import assign_voronoi_cells


@dataclass
class SurfacePartition:
    """A partition of one boundary group into contiguous patches.

    Attributes
    ----------
    patches:
        List of node-ID lists, each sorted; disjoint, covering the group.
    heads:
        One representative node per patch (the landmark for cell
        partitions, the smallest contained landmark after merging).
    """

    patches: List[List[int]]
    heads: List[int]

    @property
    def sizes(self) -> List[int]:
        """Patch sizes, aligned with ``patches``."""
        return [len(p) for p in self.patches]

    def patch_of(self) -> Dict[int, int]:
        """Node -> patch index lookup."""
        lookup: Dict[int, int] = {}
        for idx, patch in enumerate(self.patches):
            for node in patch:
                lookup[node] = idx
        return lookup


def cell_partition(
    graph: NetworkGraph,
    group: Sequence[int],
    landmarks: Sequence[int],
) -> SurfacePartition:
    """One patch per landmark: the mesh's combinatorial Voronoi cells."""
    cells = assign_voronoi_cells(graph, group, landmarks)
    by_landmark: Dict[int, List[int]] = {int(l): [] for l in landmarks}
    for node, owner in cells.items():
        by_landmark[owner].append(node)
    heads = sorted(by_landmark)
    return SurfacePartition(
        patches=[sorted(by_landmark[h]) for h in heads],
        heads=heads,
    )


def _patch_adjacency(
    graph: NetworkGraph, partition: SurfacePartition
) -> Dict[int, Set[int]]:
    """Which patches touch (share a one-hop boundary edge)."""
    lookup = partition.patch_of()
    adjacency: Dict[int, Set[int]] = {
        i: set() for i in range(len(partition.patches))
    }
    for node, patch in lookup.items():
        for nbr in graph.neighbors(node):
            other = lookup.get(int(nbr))
            if other is not None and other != patch:
                adjacency[patch].add(other)
                adjacency[other].add(patch)
    return adjacency


def balanced_partition(
    graph: NetworkGraph,
    group: Sequence[int],
    landmarks: Sequence[int],
    n_patches: int,
) -> SurfacePartition:
    """Merge adjacent Voronoi cells down to ``n_patches`` patches.

    Greedy: repeatedly merge the smallest patch into its smallest
    adjacent patch.  Patches stay contiguous because only adjacent
    patches merge.

    Raises
    ------
    ValueError
        If ``n_patches`` is not positive or exceeds the landmark count.
    """
    if n_patches < 1:
        raise ValueError("n_patches must be positive")
    base = cell_partition(graph, group, landmarks)
    if n_patches > len(base.patches):
        raise ValueError(
            f"cannot split {len(base.patches)} cells into {n_patches} patches"
        )
    patches: Dict[int, List[int]] = {i: list(p) for i, p in enumerate(base.patches)}
    heads: Dict[int, int] = {i: h for i, h in enumerate(base.heads)}
    adjacency = _patch_adjacency(graph, base)

    while len(patches) > n_patches:
        smallest = min(patches, key=lambda i: (len(patches[i]), i))
        neighbors = [n for n in adjacency[smallest] if n in patches]
        if not neighbors:
            # Disconnected remnant (cannot happen for one connected group,
            # guarded for safety): merge with the overall smallest other.
            neighbors = [i for i in patches if i != smallest]
            if not neighbors:
                break
        target = min(neighbors, key=lambda i: (len(patches[i]), i))
        patches[target].extend(patches.pop(smallest))
        heads[target] = min(heads[target], heads.pop(smallest))
        merged_neighbors = adjacency.pop(smallest)
        for other in merged_neighbors:
            adjacency[other].discard(smallest)
            if other != target and other in adjacency:
                adjacency[other].add(target)
                adjacency[target].add(other)
        adjacency[target].discard(target)

    order = sorted(patches, key=lambda i: heads[i])
    return SurfacePartition(
        patches=[sorted(patches[i]) for i in order],
        heads=[heads[i] for i in order],
    )
