"""Greedy routing on a boundary mesh.

Routes a message between two boundary nodes along the boundary surface:

1. each endpoint resolves to its nearest mesh landmark (hop distance in
   the boundary subgraph);
2. landmark-level greedy forwarding walks the mesh: each landmark forwards
   to its mesh-neighbor closest (Euclidean, in true positions) to the
   destination landmark; on a local minimum it falls back to the mesh's
   BFS next-hop, which always exists on a connected mesh;
3. the landmark route expands to a node-level walk through the virtual
   edges' recorded boundary paths.

This is deliberately simple -- it demonstrates that the constructed mesh
is a usable routing substrate (the paper's motivation), not a new routing
contribution.  The greedy/fallback split is reported so experiments can
measure how often pure greedy succeeds on the locally planarized surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh, edge_key


@dataclass
class RouteResult:
    """Outcome of one surface routing attempt.

    Attributes
    ----------
    landmark_route:
        Sequence of mesh landmarks visited (source landmark first).
    node_route:
        Full node-level walk along the boundary subgraph, expanded through
        the mesh edges' recorded paths (may be empty if expansion was not
        requested or paths are missing).
    greedy_hops:
        Landmark steps decided by pure greedy progress.
    fallback_hops:
        Landmark steps that required the BFS fallback (local minima of the
        greedy potential).
    """

    landmark_route: List[int]
    node_route: List[int] = field(default_factory=list)
    greedy_hops: int = 0
    fallback_hops: int = 0

    @property
    def delivered(self) -> bool:
        """Whether the route reached the destination landmark."""
        return bool(self.landmark_route)

    @property
    def greedy_success_ratio(self) -> float:
        """Fraction of landmark steps that pure greedy decided."""
        total = self.greedy_hops + self.fallback_hops
        return self.greedy_hops / total if total else 1.0


class SurfaceRouter:
    """Routing engine over one boundary mesh.

    Parameters
    ----------
    graph:
        The network graph (for positions and boundary-subgraph BFS).
    mesh:
        A constructed boundary mesh whose ``group`` holds the boundary
        nodes of the surface.
    """

    def __init__(self, graph: NetworkGraph, mesh: TriangularMesh):
        if not mesh.edges:
            raise ValueError("cannot route on a mesh with no edges")
        self.graph = graph
        self.mesh = mesh
        self._adjacency = mesh.adjacency()
        self._members: Set[int] = set(mesh.group) if mesh.group else set(mesh.vertices)

    # ------------------------------------------------------------------
    # Landmark resolution
    # ------------------------------------------------------------------

    def nearest_landmark(self, node: int) -> Optional[int]:
        """The mesh landmark hop-closest to ``node`` in the boundary subgraph.

        Ties break to the smallest landmark ID.  None when ``node`` cannot
        reach any landmark inside the boundary subgraph.
        """
        if node in self._adjacency:
            return node
        hops = self.graph.bfs_hops([node], within=self._members)
        best: Optional[tuple] = None
        for landmark in self.mesh.vertices:
            if landmark in hops:
                candidate = (hops[landmark], landmark)
                if best is None or candidate < best:
                    best = candidate
        return best[1] if best else None

    # ------------------------------------------------------------------
    # Landmark-level forwarding
    # ------------------------------------------------------------------

    def _mesh_bfs_next_hop(self, source: int, target: int) -> Optional[int]:
        """First hop of the BFS shortest path from source to target on the mesh."""
        if source == target:
            return None
        from collections import deque

        parent: Dict[int, int] = {source: -1}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self._adjacency[u]):
                if v in parent:
                    continue
                parent[v] = u
                if v == target:
                    # Walk back to the hop right after source.
                    node = v
                    while parent[node] != source:
                        node = parent[node]
                    return node
                queue.append(v)
        return None

    def route_landmarks(
        self, src_landmark: int, dst_landmark: int, *, max_steps: Optional[int] = None
    ) -> RouteResult:
        """Greedy-with-fallback forwarding between two mesh landmarks."""
        for landmark in (src_landmark, dst_landmark):
            if landmark not in self._adjacency:
                raise ValueError(f"{landmark} is not a mesh landmark")
        limit = max_steps if max_steps is not None else 4 * len(self.mesh.vertices)
        positions = self.graph.positions
        target_pos = positions[dst_landmark]

        route = [src_landmark]
        greedy_hops = 0
        fallback_hops = 0
        visited = {src_landmark}
        current = src_landmark
        for _ in range(limit):
            if current == dst_landmark:
                return RouteResult(
                    landmark_route=route,
                    greedy_hops=greedy_hops,
                    fallback_hops=fallback_hops,
                )
            current_dist = float(np.linalg.norm(positions[current] - target_pos))
            best = None
            for nbr in sorted(self._adjacency[current]):
                if nbr in visited and nbr != dst_landmark:
                    continue
                d = float(np.linalg.norm(positions[nbr] - target_pos))
                if d < current_dist and (best is None or d < best[0]):
                    best = (d, nbr)
            if best is not None:
                nxt = best[1]
                greedy_hops += 1
            else:
                nxt = self._mesh_bfs_next_hop(current, dst_landmark)
                if nxt is None:
                    return RouteResult(landmark_route=[], greedy_hops=greedy_hops,
                                       fallback_hops=fallback_hops)
                fallback_hops += 1
            route.append(nxt)
            visited.add(nxt)
            current = nxt
        return RouteResult(landmark_route=[], greedy_hops=greedy_hops,
                           fallback_hops=fallback_hops)

    # ------------------------------------------------------------------
    # Node-level expansion
    # ------------------------------------------------------------------

    def _edge_path(self, u: int, v: int) -> List[int]:
        """Node path realizing mesh edge (u, v), oriented from u to v."""
        key = edge_key(u, v)
        path = self.mesh.paths.get(key)
        if path is None:
            # Flip-introduced edge without a recorded path: take the
            # boundary-subgraph shortest path.
            found = self.graph.shortest_path(u, v, within=self._members)
            path = found if found is not None else [u, v]
        if path[0] != u:
            path = list(reversed(path))
        return path

    def route(self, src: int, dst: int) -> RouteResult:
        """Full boundary-surface route between two boundary nodes."""
        src_lm = self.nearest_landmark(src)
        dst_lm = self.nearest_landmark(dst)
        if src_lm is None or dst_lm is None:
            return RouteResult(landmark_route=[])
        result = self.route_landmarks(src_lm, dst_lm)
        if not result.delivered:
            return result

        node_route: List[int] = []
        # Source approach segment.
        approach = self.graph.shortest_path(src, src_lm, within=self._members)
        node_route.extend(approach if approach else [src, src_lm])
        # Expand each landmark hop through its virtual-edge path.
        for u, v in zip(result.landmark_route, result.landmark_route[1:]):
            segment = self._edge_path(u, v)
            node_route.extend(segment[1:])
        # Final segment to the destination node.
        tail = self.graph.shortest_path(dst_lm, dst, within=self._members)
        node_route.extend((tail if tail else [dst_lm, dst])[1:])
        result.node_route = node_route
        return result
