"""Command-line interface.

Subcommands::

    repro-boundary generate  --scenario sphere --out net.json
    repro-boundary detect    --network net.json --error 0.2 --out result.json
    repro-boundary surface   --network net.json --result result.json --out-prefix mesh
    repro-boundary scenario  --scenario one_hole
    repro-boundary sweep     --scenario sphere --levels 0,0.2,0.4
    repro-boundary robustness --scenario sphere --loss 0,0.1,0.3
    repro-boundary bench     --stages ubf,iff --check-regression
    repro-boundary trace     result.trace.jsonl
    repro-campaign run       --spec campaigns/robustness_baseline.json --root store/

``generate`` writes a network JSON; ``detect`` runs the UBF+IFF pipeline
on it (``--workers N`` shards UBF across processes); ``surface`` builds and
exports the triangular boundary meshes; ``scenario`` runs one of the
Figs. 6-10 scenarios end to end and prints the summary; ``sweep`` prints
the Fig. 1(g)-style error-sweep table; ``robustness`` sweeps message loss
and node crashes over the message-level IFF flood + grouping protocols and
prints the degradation table (see docs/ROBUSTNESS.md); ``bench`` times the
pipeline stages on pinned scenarios, writes ``BENCH_<stage>.json``
artifacts, and optionally gates against the committed baseline (see
docs/PERFORMANCE.md).

``repro-campaign`` (also reachable as ``repro-boundary campaign``) runs
declarative experiment campaigns through the durable job service:
``run`` submits the spec's cell cross-product as content-addressed jobs,
drains them with in-process workers, and aggregates the results into the
committed ``results/`` tables; ``status`` reports per-axis progress;
``expand`` and ``render`` inspect without executing (see
docs/CAMPAIGNS.md).

``detect``, ``robustness``, and ``bench`` accept ``--trace PATH`` to
record a structured JSONL execution trace (nested stage spans with wall
times and counters; see docs/OBSERVABILITY.md); ``trace`` validates such
a file against the trace schema (``--validate``) or pretty-prints it as
an ASCII span tree.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.core.config import (
    DetectorConfig,
    IFFConfig,
    LocalizationConfig,
    UBFConfig,
)
from repro.core.pipeline import BoundaryDetector
from repro.evaluation.experiments import run_error_sweep, run_scenario
from repro.evaluation.metrics import evaluate_detection
from repro.evaluation.reporting import (
    render_error_sweep_counts,
    render_mistaken_distribution,
    render_missing_distribution,
    render_scenario_result,
)
from repro.io.meshio import export_mesh_obj
from repro.io.serialization import (
    load_detection_result,
    load_network,
    save_detection_result,
    save_network,
    write_atomic,
)
from repro.network.generator import DeploymentConfig, generate_network
from repro.network.measurement import NoError, UniformAbsoluteError
from repro.network.stats import compute_network_stats
from repro.observability.export import write_trace
from repro.observability.tracer import NULL_TRACER, TickClock, Tracer
from repro.shapes.library import SCENARIOS, scenario_by_name
from repro.surface.pipeline import SurfaceBuilder, SurfaceConfig


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured JSONL execution trace here "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace-clock",
        choices=("wall", "tick"),
        default="wall",
        help="span timestamp source: wall time, or a deterministic tick "
        "counter so traces byte-diff across runs (default: wall)",
    )


def _tracer_from_args(args) -> "Tracer":
    """A live tracer when ``--trace`` was given, else the no-op singleton."""
    if not getattr(args, "trace", None):
        return NULL_TRACER
    if getattr(args, "trace_clock", "wall") == "tick":
        return Tracer(clock=TickClock(), shard_clock=TickClock)
    return Tracer()


def _write_trace_if_requested(args, tracer) -> None:
    if tracer.enabled and getattr(args, "trace", None):
        _ensure_parent_dir(args.trace)
        write_trace(tracer.roots, args.trace)
        print(f"wrote {args.trace}")


def _ensure_parent_dir(path: str) -> None:
    """write_atomic stages its tmp file next to the target, so the
    target's directory must exist before the write."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _add_deployment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="sphere")
    parser.add_argument("--surface-nodes", type=int, default=600)
    parser.add_argument("--interior-nodes", type=int, default=1200)
    parser.add_argument("--degree", type=float, default=25.0)
    parser.add_argument("--seed", type=int, default=0)


def _deployment_from_args(args) -> DeploymentConfig:
    return DeploymentConfig(
        n_surface=args.surface_nodes,
        n_interior=args.interior_nodes,
        target_degree=args.degree,
        seed=args.seed,
    )


def _detector_from_args(args) -> DetectorConfig:
    model = NoError() if args.error == 0 else UniformAbsoluteError(args.error)
    return DetectorConfig(
        ubf=UBFConfig(epsilon=args.epsilon, kernel=getattr(args, "kernel", "vectorized")),
        iff=IFFConfig(theta=args.theta, ttl=args.ttl),
        localization_config=LocalizationConfig(
            engine=getattr(args, "engine", "batch")
        ),
        error_model=model,
        localization=getattr(args, "localization", "auto"),
        workers=getattr(args, "workers", 1),
    )


def cmd_generate(args) -> int:
    """Generate a network and write it to JSON."""
    network = generate_network(
        scenario_by_name(args.scenario),
        _deployment_from_args(args),
        scenario=args.scenario,
    )
    save_network(network, args.out)
    print(network.summary())
    print(f"wrote {args.out}")
    return 0


def cmd_detect(args) -> int:
    """Run boundary detection on a saved network.

    With ``--trace``, the surface stage is additionally run (meshes
    discarded) so the trace covers every per-group construction attempt,
    not just detection.
    """
    network = load_network(args.network)
    detector = BoundaryDetector(_detector_from_args(args))
    tracer = _tracer_from_args(args)
    with tracer.span(
        "cli.detect",
        network=args.network,
        seed=args.seed,
        workers=args.workers,
        kernel=args.kernel,
    ):
        result = detector.detect(
            network, rng=np.random.default_rng(args.seed), tracer=tracer
        )
        if tracer.enabled:
            SurfaceBuilder(SurfaceConfig(), tracer=tracer).build_records(
                network.graph, result.groups
            )
    stats = evaluate_detection(network, result)
    print(stats.as_row())
    print(f"groups: {[len(g) for g in result.groups]}")
    if args.out:
        save_detection_result(result, args.out)
        print(f"wrote {args.out}")
    _write_trace_if_requested(args, tracer)
    return 0


def cmd_surface(args) -> int:
    """Build boundary meshes from a saved detection result."""
    network = load_network(args.network)
    result = load_detection_result(args.result)
    builder = SurfaceBuilder(SurfaceConfig(k=args.k))
    meshes = builder.build(network.graph, result.groups)
    for i, mesh in enumerate(meshes):
        print(mesh.summary())
        if args.out_prefix:
            path = f"{args.out_prefix}_{i}.obj"
            export_mesh_obj(mesh, network.graph, path)
            print(f"wrote {path}")
    return 0


def cmd_scenario(args) -> int:
    """Run one evaluation scenario end to end."""
    if args.svg:
        # Re-run the pieces explicitly so the artifacts are available.
        network = generate_network(
            scenario_by_name(args.scenario),
            _deployment_from_args(args),
            scenario=args.scenario,
        )
        detector = BoundaryDetector(_detector_from_args(args))
        detection = detector.detect(network, rng=np.random.default_rng(args.seed))
        meshes = SurfaceBuilder(SurfaceConfig(k=args.k)).build(
            network.graph, detection.groups
        )
        from repro.io.svg import render_detection_svg

        render_detection_svg(
            network,
            detection.boundary,
            args.svg,
            mesh=meshes[0] if meshes else None,
        )
        print(f"wrote {args.svg}")
    result = run_scenario(
        args.scenario,
        _deployment_from_args(args),
        detector_config=_detector_from_args(args),
        surface_config=SurfaceConfig(k=args.k),
    )
    print(render_scenario_result(result))
    return 0


def cmd_bench(args) -> int:
    """Run repro-bench and optionally gate against the committed baseline."""
    from repro.evaluation.bench import (
        STAGES,
        check_regression,
        render_bench_table,
        run_bench,
        write_artifacts,
    )

    stages = [s for s in args.stages.split(",") if s] if args.stages else list(STAGES)
    tracer = _tracer_from_args(args)
    with tracer.span(
        "cli.bench", scenario_id=args.scenario_id, repeat=args.repeat
    ):
        results = run_bench(
            stages,
            scenario_id=args.scenario_id,
            repeat=args.repeat,
            time_naive=not args.skip_naive,
            engine=args.bench_engine,
            full_oracle=args.oracle,
            ubf_kernel=args.ubf_kernel,
            tracer=tracer,
        )
    print(render_bench_table(results))
    if args.out_dir:
        paths = write_artifacts(results, args.out_dir)
        for path in paths:
            print(f"wrote {path}")
    _write_trace_if_requested(args, tracer)
    if args.check_regression:
        issues = check_regression(
            results,
            args.baseline_dir,
            time_factor=args.time_factor,
            counter_rtol=args.counter_rtol,
            min_speedup=args.min_speedup,
            min_engine_speedup=args.min_engine_speedup,
            rss_factor=args.rss_factor,
        )
        if issues:
            print("\nPERF REGRESSION:")
            for issue in issues:
                print(f"  - {issue}")
            return 1
        print("\nregression check: OK (baseline " + str(args.baseline_dir) + ")")
    return 0


def cmd_analyze(args) -> int:
    """Report the holes of a saved detection result."""
    from repro.applications.hole_analysis import rank_holes

    network = load_network(args.network)
    result = load_detection_result(args.result)
    if len(result.groups) <= 1:
        print("no holes: the detection found a single (outer) boundary group")
        return 0
    for report in rank_holes(network.graph, result.groups):
        print(report.as_row())
    return 0


def cmd_sweep(args) -> int:
    """Run the Fig. 1(g-i) error sweep and print the three tables."""
    network = generate_network(
        scenario_by_name(args.scenario),
        _deployment_from_args(args),
        scenario=args.scenario,
    )
    print(network.summary())
    levels = [float(x) for x in args.levels.split(",")]
    points = run_error_sweep(network, levels, seed=args.seed)
    print("\n[Fig. 1(g)] boundary node counts vs distance measurement error")
    print(render_error_sweep_counts(points))
    print("\n[Fig. 1(h)] mistaken boundary node hop distribution")
    print(render_mistaken_distribution(points))
    print("\n[Fig. 1(i)] missing boundary node hop distribution")
    print(render_missing_distribution(points))
    return 0


def cmd_robustness(args) -> int:
    """Run the fault-injection degradation sweep and print its table."""
    from repro.evaluation.robustness import (
        render_robustness_table,
        run_scenario_robustness,
    )
    from repro.runtime.protocols import RetryPolicy

    loss_rates = [float(x) for x in args.loss.split(",")]
    crash_fractions = [float(x) for x in args.crash.split(",")]
    detector_config = _detector_from_args(args)
    tracer = _tracer_from_args(args)
    common = dict(
        deployment=_deployment_from_args(args),
        loss_rates=loss_rates,
        crash_fractions=crash_fractions,
        detector_config=detector_config,
        seed=args.seed,
        max_rounds=args.max_rounds,
        tracer=tracer,
    )
    sections = []
    with tracer.span(
        "cli.robustness", scenario=args.scenario, mode=args.mode, seed=args.seed
    ):
        if args.mode in ("raw", "both"):
            points = run_scenario_robustness(args.scenario, **common)
            sections.append(
                "[robustness] raw protocols (no reliability layer)\n"
                + render_robustness_table(points)
            )
        if args.mode in ("reliable", "both"):
            policy = RetryPolicy(max_retries=args.max_retries, rto=args.rto)
            points = run_scenario_robustness(
                args.scenario, retry_policy=policy, **common
            )
            sections.append(
                f"[robustness] reliable wrapper (max_retries={policy.max_retries}, "
                f"rto={policy.rto})\n" + render_robustness_table(points)
            )
    report = "\n\n".join(sections)
    print(report)
    if args.out:
        write_atomic(args.out, report + "\n")
        print(f"wrote {args.out}")
    _write_trace_if_requested(args, tracer)
    return 0


def cmd_campaign_run(args) -> int:
    """Run a campaign spec through the job store; write its tables."""
    from repro.evaluation.campaign import load_spec
    from repro.service.campaign import run_campaign
    from repro.service.jobstore import JobStore

    spec = load_spec(args.spec)
    store = JobStore(args.root)
    tracer = _tracer_from_args(args)
    report = run_campaign(
        store,
        spec,
        workers=args.workers,
        max_attempts=args.max_attempts,
        lease_ttl=args.lease_ttl,
        tracer=tracer,
    )
    print(
        f"campaign {spec.name}: cells={report.n_cells} "
        f"submitted={report.submitted} reused={report.reused} "
        f"cache_hits={report.cache_hits} executed={report.executed} "
        f"done={report.done} dead={report.dead} degraded={report.degraded}"
    )
    out = args.out if args.out else spec.output
    if report.tables is not None:
        print()
        print(report.tables, end="")
        if out and not args.no_output:
            _ensure_parent_dir(out)
            write_atomic(out, report.tables)
            print(f"wrote {out}")
    _write_trace_if_requested(args, tracer)
    if args.expect_cached and (report.executed or report.submitted):
        print(
            "ERROR: --expect-cached, but this run submitted "
            f"{report.submitted} and executed {report.executed} cells"
        )
        return 1
    return 0 if report.dead == 0 else 1


def cmd_campaign_status(args) -> int:
    """Report done/queued/failed counts per axis slice, without executing."""
    from repro.evaluation.campaign import load_spec
    from repro.service.campaign import campaign_status
    from repro.service.jobstore import JobStore

    spec = load_spec(args.spec)
    status = campaign_status(JobStore(args.root), spec)
    counts = status.counts()
    total = len(status.cells)
    summary = " ".join(f"{state}={counts[state]}" for state in sorted(counts))
    print(f"campaign {spec.name}: cells={total} {summary}")
    for axis, by_value in sorted(status.slice_counts().items()):
        print(f"  by {axis}:")
        for value, by_state in sorted(by_value.items()):
            states = " ".join(
                f"{state}={by_state[state]}" for state in sorted(by_state)
            )
            print(f"    {value}: {states}")
    return 0 if status.complete else 1


def cmd_campaign_expand(args) -> int:
    """Print the campaign's expanded cell cross-product."""
    from repro.evaluation.campaign import expand, load_spec

    spec = load_spec(args.spec)
    cells = expand(spec)
    print(
        f"campaign {spec.name}: kind={spec.kind} cells={len(cells)} "
        f"spec_hash={spec.spec_hash()[:16]}"
    )
    for cell in cells:
        axes = " ".join(f"{k}={v}" for k, v in cell.axes.items())
        print(f"  [{cell.index}] {cell.kind} {axes}")
    return 0


def cmd_campaign_render(args) -> int:
    """Render the campaign tables from already-completed store jobs."""
    from repro.evaluation.campaign import load_spec
    from repro.service.campaign import CampaignIncomplete, render_from_store
    from repro.service.jobstore import JobStore

    spec = load_spec(args.spec)
    try:
        tables = render_from_store(JobStore(args.root), spec)
    except CampaignIncomplete as exc:
        print(f"ERROR: {exc}")
        return 1
    print(tables, end="")
    out = args.out if args.out else spec.output
    if out and not args.no_output:
        _ensure_parent_dir(out)
        write_atomic(out, tables)
        print(f"wrote {out}")
    return 0


def _add_campaign_commands(sub) -> None:
    """Attach the campaign run/status/expand/render subcommands."""

    def common(p, store=True):
        p.add_argument("--spec", required=True, help="campaign spec JSON file")
        if store:
            p.add_argument(
                "--root", required=True, help="job store root directory"
            )

    p = sub.add_parser(
        "run", help="submit, drain, and aggregate a campaign (resumable)"
    )
    common(p)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument("--lease-ttl", type=float, default=30.0)
    p.add_argument(
        "--out", default=None, help="table output path (overrides spec.output)"
    )
    p.add_argument(
        "--no-output",
        action="store_true",
        help="do not write the table file, only print",
    )
    p.add_argument(
        "--expect-cached",
        action="store_true",
        help="exit 1 unless the run was fully memoized (zero cells executed)",
    )
    _add_trace_arg(p)
    p.set_defaults(func=cmd_campaign_run)

    p = sub.add_parser(
        "status", help="done/queued/failed counts per axis slice"
    )
    common(p)
    p.set_defaults(func=cmd_campaign_status)

    p = sub.add_parser("expand", help="print the expanded cell cross-product")
    common(p, store=False)
    p.set_defaults(func=cmd_campaign_expand)

    p = sub.add_parser(
        "render", help="re-render tables from completed store jobs"
    )
    common(p)
    p.add_argument("--out", default=None)
    p.add_argument("--no-output", action="store_true")
    p.set_defaults(func=cmd_campaign_render)


def build_campaign_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Memoized, resumable experiment campaigns over the "
        "repro job service (see docs/CAMPAIGNS.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_campaign_commands(sub)
    return parser


def campaign_main(argv: Optional[List[str]] = None) -> int:
    """``repro-campaign`` entry point."""
    parser = build_campaign_parser()
    args = parser.parse_args(argv)
    return args.func(args)


def cmd_trace(args) -> int:
    """Validate a JSONL trace file and pretty-print its span tree."""
    from repro.observability.export import (
        parse_trace,
        render_trace_tree,
        validate_trace_lines,
    )

    with open(args.path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    errors = validate_trace_lines(lines)
    if errors:
        print(f"{args.path}: INVALID ({len(errors)} schema errors)")
        for error in errors[:20]:
            print(f"  - {error}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return 1
    if args.validate:
        print(f"{args.path}: OK ({len(lines) - 1} spans)")
        return 0
    print(render_trace_tree(parse_trace(lines)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-boundary",
        description="Boundary detection in 3D wireless networks (ICDCS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a network JSON")
    _add_deployment_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("detect", help="detect boundary nodes")
    p.add_argument("--network", required=True)
    p.add_argument("--error", type=float, default=0.0)
    p.add_argument("--epsilon", type=float, default=1e-3)
    p.add_argument("--theta", type=int, default=20)
    p.add_argument("--ttl", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the per-node stages (deterministic for any N)",
    )
    p.add_argument(
        "--kernel",
        choices=("naive", "vectorized", "batched", "native"),
        default="vectorized",
        help="UBF emptiness-search kernel (naive is the slow oracle; "
        "batched flattens all nodes into one workset; native adds the C "
        "scan with numpy fallback)",
    )
    p.add_argument(
        "--localization",
        choices=("auto", "mds", "trilateration", "true"),
        default="auto",
        help="coordinate source for UBF (auto: true under zero error, else mds)",
    )
    p.add_argument(
        "--engine",
        choices=("batch", "sparse", "pernode"),
        default="batch",
        help="MDS frame-construction engine (sparse uses native kernels "
        "where available; pernode is the slow oracle)",
    )
    p.add_argument("--out", default=None)
    _add_trace_arg(p)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser("surface", help="build boundary meshes")
    p.add_argument("--network", required=True)
    p.add_argument("--result", required=True)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--out-prefix", default=None)
    p.set_defaults(func=cmd_surface)

    p = sub.add_parser("scenario", help="run one evaluation scenario")
    _add_deployment_args(p)
    p.add_argument("--error", type=float, default=0.0)
    p.add_argument("--epsilon", type=float, default=1e-3)
    p.add_argument("--theta", type=int, default=20)
    p.add_argument("--ttl", type=int, default=3)
    p.add_argument("--k", type=int, default=4)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the UBF stage (deterministic for any N)",
    )
    p.add_argument("--svg", default=None, help="also render the result to SVG")
    p.set_defaults(func=cmd_scenario)

    p = sub.add_parser("sweep", help="run the error sweep tables")
    _add_deployment_args(p)
    p.add_argument("--levels", default="0,0.1,0.2,0.3,0.4,0.5")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "robustness",
        help="fault-injection degradation sweep (loss x crashes)",
    )
    _add_deployment_args(p)
    p.add_argument("--error", type=float, default=0.0)
    p.add_argument("--epsilon", type=float, default=1e-3)
    p.add_argument("--theta", type=int, default=20)
    p.add_argument("--ttl", type=int, default=3)
    p.add_argument("--loss", default="0,0.1,0.3", help="loss rates, comma-separated")
    p.add_argument("--crash", default="0", help="crash fractions, comma-separated")
    p.add_argument(
        "--mode",
        choices=("raw", "reliable", "both"),
        default="both",
        help="run without, with, or with-and-without the reliable wrapper",
    )
    p.add_argument("--max-retries", type=int, default=5)
    p.add_argument("--rto", type=int, default=2)
    p.add_argument("--max-rounds", type=int, default=10_000)
    p.add_argument("--out", default=None, help="also write the tables to a file")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_robustness)

    p = sub.add_parser("analyze", help="report detected holes")
    p.add_argument("--network", required=True)
    p.add_argument("--result", required=True)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "bench",
        help="time pipeline stages, write BENCH_<stage>.json, gate regressions",
    )
    p.add_argument(
        "--stages",
        default=None,
        help="comma-separated subset of localization,ubf,iff,grouping,mesh,"
        "e2e (default: all but e2e)",
    )
    p.add_argument("--scenario-id", default="ubf_2k", help="pinned bench scenario")
    p.add_argument("--repeat", type=int, default=5, help="median-of-k repetitions")
    p.add_argument(
        "--skip-naive",
        action="store_true",
        help="skip timing the naive oracle (faster; omits the speedup gate)",
    )
    p.add_argument("--out-dir", default=None, help="write BENCH_<stage>.json here")
    p.add_argument(
        "--check-regression",
        action="store_true",
        help="compare against the committed baseline; nonzero exit on regression",
    )
    p.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory holding the committed BENCH_<stage>.json baselines",
    )
    p.add_argument(
        "--bench-engine",
        default="sparse",
        choices=("batch", "sparse"),
        help="localization engine the bench times (pernode stays the oracle)",
    )
    p.add_argument(
        "--ubf-kernel",
        default="batched",
        choices=("vectorized", "batched", "native"),
        help="UBF kernel the ubf/e2e stages time (naive stays the oracle)",
    )
    p.add_argument(
        "--oracle",
        action="store_true",
        help="run the pernode oracle over every node instead of the pinned "
        "subsample (slow; full differential coverage)",
    )
    p.add_argument("--time-factor", type=float, default=3.0)
    p.add_argument("--counter-rtol", type=float, default=0.02)
    p.add_argument("--min-speedup", type=float, default=2.0)
    p.add_argument(
        "--min-engine-speedup",
        type=float,
        default=3.0,
        help="required engine-over-pernode localization speedup",
    )
    p.add_argument(
        "--rss-factor",
        type=float,
        default=2.0,
        help="allowed peak-RSS growth over the baseline artifact",
    )
    _add_trace_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "campaign",
        help="memoized, resumable experiment campaigns (see docs/CAMPAIGNS.md)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)
    _add_campaign_commands(campaign_sub)

    p = sub.add_parser(
        "trace",
        help="validate / pretty-print a JSONL execution trace",
    )
    p.add_argument("path", help="trace file written by --trace")
    p.add_argument(
        "--validate",
        action="store_true",
        help="schema-check only; exit 1 with the error list when invalid",
    )
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
