"""The paper's primary contribution: localized 3D boundary-node detection.

* :mod:`repro.core.ubf` -- Unit Ball Fitting (Algorithm 1): a node is a
  boundary candidate iff an empty ball of radius ``1 + eps`` through itself
  and two one-hop neighbors exists in its local coordinate frame.
* :mod:`repro.core.iff` -- Isolated Fragment Filtering: TTL-bounded local
  flooding demotes candidates sitting in fragments smaller than ``theta``.
* :mod:`repro.core.grouping` -- connected-component grouping of the
  surviving boundary nodes, one group per network boundary.
* :mod:`repro.core.parallel` -- process-parallel sharding of the per-node
  stages (frame construction and UBF candidacy; deterministic merge,
  byte-identical to sequential).
* :mod:`repro.core.pipeline` -- :class:`BoundaryDetector`, the end-to-end
  localization -> UBF -> IFF -> grouping pipeline.
"""

from repro.core.config import (
    DetectorConfig,
    IFFConfig,
    LocalizationConfig,
    UBFConfig,
)
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import iff_fragment_sizes, run_iff
from repro.core.parallel import (
    run_frames_parallel,
    run_sharded,
    run_ubf_parallel,
    shard_nodes,
)
from repro.core.pipeline import BoundaryDetectionResult, BoundaryDetector, detect_boundary
from repro.core.ubf import UBFNodeOutcome, run_ubf, ubf_classify_frame

__all__ = [
    "UBFConfig",
    "IFFConfig",
    "LocalizationConfig",
    "DetectorConfig",
    "UBFNodeOutcome",
    "run_ubf",
    "run_ubf_parallel",
    "run_frames_parallel",
    "run_sharded",
    "shard_nodes",
    "ubf_classify_frame",
    "run_iff",
    "iff_fragment_sizes",
    "group_boundary_nodes",
    "BoundaryDetector",
    "BoundaryDetectionResult",
    "detect_boundary",
]
