"""Configuration dataclasses for the boundary-detection pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.network.measurement import DistanceErrorModel, NoError


@dataclass(frozen=True)
class UBFConfig:
    """Unit Ball Fitting parameters (Sec. II-A).

    Attributes
    ----------
    epsilon:
        The "arbitrarily small constant" of Definition 4: candidate balls
        have radius ``r = 1 + epsilon`` with the radio range normalized
        to 1.  Larger values raise the minimum hole size the algorithm
        reacts to (Sec. II-A3's tunability knob); ``ball_radius`` overrides
        the derived radius directly when set.
    ball_radius:
        Explicit ball radius; when None, ``1 + epsilon`` is used.
    collection_hops:
        Radius (in hops) of the neighborhood each node collects and embeds
        before testing balls.  Candidate balls reach ``2r`` from the node
        and Lemma 1/Theorem 1 reason about all nodes within that distance,
        so the default is 2; setting 1 reproduces the most literal reading
        of Algorithm 1 and is kept for the ablation bench (it floods the
        interior with false positives at realistic densities).
    kernel:
        Emptiness-search implementation: ``"vectorized"`` (default) batches
        all Eq.-1 candidate centers per node and checks emptiness via
        chunked broadcasted distance matrices; ``"batched"`` flattens the
        candidate balls of every node in a batch into one network-wide
        workset and runs the emptiness waves with a single broadcast per
        chunk (the wire-speed path for large networks); ``"native"`` uses
        the batched enumeration with the C ``ubf_empty_check`` scan from
        :mod:`repro.geometry.native` (graceful fallback to ``"batched"``
        when no compiler is available); ``"naive"`` is the per-pair Python
        oracle the other kernels are differentially tested against (see
        docs/PERFORMANCE.md).  All produce identical results and counters.
    chunk_size:
        Candidate balls per distance-matrix batch in the vectorized and
        batched kernels; the knob behind their early-exit strategy.
        Ignored by ``"naive"``.
    """

    epsilon: float = 1e-3
    ball_radius: Optional[float] = None
    collection_hops: int = 2
    kernel: str = "vectorized"
    chunk_size: int = 64

    def __post_init__(self):
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.ball_radius is not None and self.ball_radius <= 0:
            raise ValueError("ball_radius must be positive")
        if self.collection_hops < 1:
            raise ValueError("collection_hops must be at least 1")
        if self.kernel not in ("naive", "vectorized", "batched", "native"):
            raise ValueError(
                "kernel must be 'naive', 'vectorized', 'batched', or 'native'"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")

    @property
    def radius(self) -> float:
        """Effective ball radius ``r``."""
        return self.ball_radius if self.ball_radius is not None else 1.0 + self.epsilon


@dataclass(frozen=True)
class LocalizationConfig:
    """Step (I) parameters: how local frames are constructed.

    Attributes
    ----------
    engine:
        Frame-construction engine for MDS localization:
        ``"batch"`` (default) builds every node's collection with one
        multi-source BFS sweep and embeds equal-size frames as stacked
        ``(B, m, m)`` MDS batches; ``"sparse"`` keeps the batch grouping
        but runs completion/centering/SMACOF through on-demand native
        kernels (graceful numpy fallback), several times faster at scale;
        ``"pernode"`` is the scalar per-node oracle both other engines are
        differentially tested against (exact members and SMACOF step
        counts, coordinates within the documented float tolerance -- see
        :mod:`repro.network.localization`).
    """

    engine: str = "batch"

    def __post_init__(self):
        if self.engine not in ("batch", "sparse", "pernode"):
            raise ValueError("engine must be 'batch', 'sparse', or 'pernode'")


@dataclass(frozen=True)
class IFFConfig:
    """Isolated Fragment Filtering parameters (Sec. II-B).

    The defaults come from the paper's icosahedron argument: the smallest
    hole has at least 20 boundary nodes with pairwise hop distance at most
    3, hence ``theta = 20`` and ``ttl = 3``.
    """

    theta: int = 20
    ttl: int = 3
    enabled: bool = True

    def __post_init__(self):
        if self.theta < 1:
            raise ValueError("theta must be at least 1")
        if self.ttl < 1:
            raise ValueError("ttl must be at least 1")


@dataclass(frozen=True)
class DetectorConfig:
    """Full pipeline configuration.

    Attributes
    ----------
    ubf, iff:
        Stage parameters.
    localization_config:
        Step (I) engine parameters (:class:`LocalizationConfig`); the
        concrete coordinate *source* is still selected by ``localization``
        below -- the engine only matters when that resolves to ``"mds"``.
    error_model:
        Ranging error model used when the caller does not supply measured
        distances; :class:`repro.network.measurement.NoError` by default.
    localization:
        ``"mds"`` -- establish local MDS frames from measured distances
        (the paper's default path);
        ``"trilateration"`` -- incremental multilateration frames (the
        alternative localization family, see
        :mod:`repro.network.trilateration`);
        ``"true"`` -- nodes know their coordinates, step (I) skipped;
        ``"auto"`` -- ``"true"`` under :class:`NoError`, else ``"mds"``.
    workers:
        Worker processes for the per-node stages (frame construction and
        UBF candidacy).  ``1`` (default) runs in-process; larger values
        shard nodes across a process pool (each node's work touches only
        its own local frame, so both stages are embarrassingly parallel)
        and merge deterministically -- results are byte-identical to the
        sequential path for any worker count.
    """

    ubf: UBFConfig = field(default_factory=UBFConfig)
    iff: IFFConfig = field(default_factory=IFFConfig)
    localization_config: LocalizationConfig = field(
        default_factory=LocalizationConfig
    )
    error_model: DistanceErrorModel = field(default_factory=NoError)
    localization: str = "auto"
    workers: int = 1

    def __post_init__(self):
        if self.localization not in ("mds", "true", "auto", "trilateration"):
            raise ValueError(
                "localization must be 'mds', 'trilateration', 'true', or 'auto'"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def resolved_localization(self) -> str:
        """The concrete localization mode UBF will run with.

        Returns ``"mds"``, ``"trilateration"``, or ``"true"`` -- i.e. any
        accepted ``localization`` value except ``"auto"``, which resolves
        to ``"true"`` under :class:`NoError` and ``"mds"`` otherwise.
        """
        if self.localization != "auto":
            return self.localization
        return "true" if isinstance(self.error_model, NoError) else "mds"
