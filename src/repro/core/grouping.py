"""Grouping boundary nodes by the boundary they belong to (Sec. II-B).

Nodes on the same boundary are connected through boundary nodes only, while
a path between nodes of different boundaries must pass through at least one
interior node.  Grouping is therefore exactly the connected components of
the boundary-induced subgraph; the paper realizes it with the same local
flooding machinery as IFF, and :mod:`repro.runtime.protocols.labels`
provides that message-level realization (min-ID label propagation).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.network.graph import NetworkGraph


def group_boundary_nodes(
    graph: NetworkGraph,
    boundary: Iterable[int],
    *,
    min_group_size: int = 1,
) -> List[List[int]]:
    """Partition boundary nodes into per-boundary groups.

    Parameters
    ----------
    graph:
        Full network connectivity.
    boundary:
        The detected boundary node IDs.
    min_group_size:
        Drop groups smaller than this (normally IFF has already removed
        tiny fragments, so the default keeps everything).

    Returns
    -------
    list of sorted node-ID lists, ordered by descending group size then by
    smallest member -- so ``groups[0]`` is typically the outer boundary,
    which in every paper scenario has the largest surface.
    """
    boundary_set: Set[int] = set(int(b) for b in boundary)
    components = graph.connected_components(within=boundary_set)
    components = [c for c in components if len(c) >= min_group_size]
    components.sort(key=lambda comp: (-len(comp), comp[0]))
    return components
