"""Isolated Fragment Filtering (IFF) -- Phase 2 of boundary detection.

UBF occasionally mislabels interior nodes (noisy coordinates, random
low-density pockets), producing small isolated fragments.  Real boundaries
form large well-connected closed surfaces, so each candidate floods a
packet with TTL ``T`` that only other candidates forward; a candidate that
hears fewer than ``theta`` flooding packets demotes itself.

The reference implementation below computes the *result* of that protocol
directly: a node receives exactly one flood per candidate within ``T`` hops
of it in the candidate-induced subgraph, so counting those candidates
(self included) reproduces the protocol outcome.  The message-level version
lives in :mod:`repro.runtime.protocols.flooding` and is pinned equivalent
by the integration tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.core.config import IFFConfig
from repro.network.graph import NetworkGraph
from repro.observability.tracer import ensure_tracer


def iff_fragment_sizes(
    graph: NetworkGraph,
    candidates: Set[int],
    ttl: int,
) -> Dict[int, int]:
    """Per-candidate count of candidates within ``ttl`` hops (self included).

    The BFS runs on the subgraph induced by ``candidates`` only: flooding
    packets "will be forwarded by other boundary nodes but not non-boundary
    nodes".
    """
    sizes: Dict[int, int] = {}
    for node in candidates:
        reached = graph.bfs_hops([node], within=candidates, max_hops=ttl)
        sizes[node] = len(reached)
    return sizes


def run_iff(
    graph: NetworkGraph,
    candidates: Iterable[int],
    config: IFFConfig = IFFConfig(),
    *,
    tracer=None,
) -> Set[int]:
    """Filter UBF candidates, keeping nodes in fragments of size >= theta.

    Parameters
    ----------
    graph:
        Full network connectivity (used only within the candidate set).
    candidates:
        UBF-positive node IDs.
    config:
        ``theta`` (minimum flood count) and ``ttl`` (flood TTL).  With
        ``enabled=False`` the candidate set passes through unchanged.
    tracer:
        Optional :class:`repro.observability.Tracer`; wraps the filter in
        an ``iff`` span recording the kept/demoted counts and the flood
        count distribution.

    Returns
    -------
    set of node IDs surviving the filter.
    """
    tracer = ensure_tracer(tracer)
    candidate_set = set(int(c) for c in candidates)
    with tracer.span(
        "iff",
        theta=config.theta,
        ttl=config.ttl,
        enabled=config.enabled,
        n_candidates=len(candidate_set),
    ) as span:
        if not config.enabled:
            span.set("n_kept", len(candidate_set))
            span.set("n_demoted", 0)
            return candidate_set
        sizes = iff_fragment_sizes(graph, candidate_set, config.ttl)
        kept = {node for node, size in sizes.items() if size >= config.theta}
        if tracer.enabled:
            span.set("n_kept", len(kept))
            span.set("n_demoted", len(candidate_set) - len(kept))
            if sizes:
                counts = sorted(sizes.values())
                span.set("flood_count_min", counts[0])
                span.set("flood_count_max", counts[-1])
                span.set("flood_count_mean", sum(counts) / len(counts))
    return kept
