"""Isolated Fragment Filtering (IFF) -- Phase 2 of boundary detection.

UBF occasionally mislabels interior nodes (noisy coordinates, random
low-density pockets), producing small isolated fragments.  Real boundaries
form large well-connected closed surfaces, so each candidate floods a
packet with TTL ``T`` that only other candidates forward; a candidate that
hears fewer than ``theta`` flooding packets demotes itself.

The reference implementation below computes the *result* of that protocol
directly: a node receives exactly one flood per candidate within ``T`` hops
of it in the candidate-induced subgraph, so counting those candidates
(self included) reproduces the protocol outcome.  The message-level version
lives in :mod:`repro.runtime.protocols.flooding` and is pinned equivalent
by the integration tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.core.config import IFFConfig
from repro.network.graph import NetworkGraph


def iff_fragment_sizes(
    graph: NetworkGraph,
    candidates: Set[int],
    ttl: int,
) -> Dict[int, int]:
    """Per-candidate count of candidates within ``ttl`` hops (self included).

    The BFS runs on the subgraph induced by ``candidates`` only: flooding
    packets "will be forwarded by other boundary nodes but not non-boundary
    nodes".
    """
    sizes: Dict[int, int] = {}
    for node in candidates:
        reached = graph.bfs_hops([node], within=candidates, max_hops=ttl)
        sizes[node] = len(reached)
    return sizes


def run_iff(
    graph: NetworkGraph,
    candidates: Iterable[int],
    config: IFFConfig = IFFConfig(),
) -> Set[int]:
    """Filter UBF candidates, keeping nodes in fragments of size >= theta.

    Parameters
    ----------
    graph:
        Full network connectivity (used only within the candidate set).
    candidates:
        UBF-positive node IDs.
    config:
        ``theta`` (minimum flood count) and ``ttl`` (flood TTL).  With
        ``enabled=False`` the candidate set passes through unchanged.

    Returns
    -------
    set of node IDs surviving the filter.
    """
    candidate_set = set(int(c) for c in candidates)
    if not config.enabled:
        return candidate_set
    sizes = iff_fragment_sizes(graph, candidate_set, config.ttl)
    return {node for node, size in sizes.items() if size >= config.theta}
