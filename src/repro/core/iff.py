"""Isolated Fragment Filtering (IFF) -- Phase 2 of boundary detection.

UBF occasionally mislabels interior nodes (noisy coordinates, random
low-density pockets), producing small isolated fragments.  Real boundaries
form large well-connected closed surfaces, so each candidate floods a
packet with TTL ``T`` that only other candidates forward; a candidate that
hears fewer than ``theta`` flooding packets demotes itself.

The reference implementation below computes the *result* of that protocol
directly: a node receives exactly one flood per candidate within ``T`` hops
of it in the candidate-induced subgraph, so counting those candidates
(self included) reproduces the protocol outcome.  The message-level version
lives in :mod:`repro.runtime.protocols.flooding` and is pinned equivalent
by the integration tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

import numpy as np

from repro.core.config import IFFConfig
from repro.network.graph import NetworkGraph
from repro.observability.tracer import ensure_tracer

#: Hop-table cells (sources x candidates) per block of the vectorized
#: flood sweep.  Purely a memory bound (~256 MB of int32 per block);
#: flood counts never depend on the blocking.
IFF_BLOCK_CELLS = 1 << 26


def iff_fragment_sizes(
    graph: NetworkGraph,
    candidates: Set[int],
    ttl: int,
) -> Dict[int, int]:
    """Per-candidate count of candidates within ``ttl`` hops (self included).

    The BFS runs on the subgraph induced by ``candidates`` only: flooding
    packets "will be forwarded by other boundary nodes but not non-boundary
    nodes".

    All candidates flood together: the candidate-induced adjacency is
    extracted once as its own CSR, then every source advances frontier by
    frontier through blockwise hop tables, mirroring
    :meth:`repro.network.graph.NetworkGraph.k_hop_collections`.  The
    per-candidate dict BFS (:func:`iff_fragment_sizes_bfs`) is kept as the
    differential oracle.
    """
    cand = np.asarray(sorted(int(c) for c in candidates), dtype=np.int64)
    k = cand.size
    if k == 0:
        return {}
    indptr, indices = graph.csr()
    label = np.full(graph.n_nodes, -1, dtype=np.int64)
    label[cand] = np.arange(k)
    # Gather the candidates' CSR rows in one shot, keep only edges whose
    # far end is also a candidate, and relabel into [0, k).
    counts = np.diff(indptr)[cand]
    total = int(counts.sum())
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    nbrs = indices[np.repeat(indptr[cand], counts) + offsets]
    keep = label[nbrs] >= 0
    sub_indices = label[nbrs[keep]]
    sub_counts = np.bincount(
        np.repeat(np.arange(k), counts)[keep], minlength=k
    )
    sub_indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sub_counts, out=sub_indptr[1:])

    sizes = np.empty(k, dtype=np.int64)
    block = max(1, IFF_BLOCK_CELLS // k)
    for start in range(0, k, block):
        srcs = np.arange(start, min(start + block, k), dtype=np.int64)
        b = srcs.size
        hop_of = np.full((b, k), -1, dtype=np.int32)
        hop_of[np.arange(b), srcs] = 0
        frontier_row = np.arange(b)
        frontier_node = srcs
        for h in range(1, ttl + 1):
            fcounts = sub_counts[frontier_node]
            ftotal = int(fcounts.sum())
            if ftotal == 0:
                break
            starts = sub_indptr[frontier_node]
            ends = np.cumsum(fcounts)
            foffsets = np.arange(ftotal) - np.repeat(ends - fcounts, fcounts)
            expanded_dst = sub_indices[np.repeat(starts, fcounts) + foffsets]
            expanded_row = np.repeat(frontier_row, fcounts)
            fresh = hop_of[expanded_row, expanded_dst] < 0
            hop_of[expanded_row[fresh], expanded_dst[fresh]] = h
            frontier_row, frontier_node = np.nonzero(hop_of == h)
            if frontier_row.size == 0:
                break
        sizes[srcs] = (hop_of >= 0).sum(axis=1)
    return {int(cand[i]): int(sizes[i]) for i in range(k)}


def iff_fragment_sizes_bfs(
    graph: NetworkGraph,
    candidates: Set[int],
    ttl: int,
) -> Dict[int, int]:
    """Per-candidate dict-BFS twin of :func:`iff_fragment_sizes`.

    One ``bfs_hops`` call per candidate on the induced subgraph -- the
    straightforward transcription of the flooding protocol, kept as the
    differential oracle for the vectorized sweep.
    """
    sizes: Dict[int, int] = {}
    for node in candidates:
        reached = graph.bfs_hops([node], within=candidates, max_hops=ttl)
        sizes[node] = len(reached)
    return sizes


def run_iff(
    graph: NetworkGraph,
    candidates: Iterable[int],
    config: IFFConfig = IFFConfig(),
    *,
    tracer=None,
) -> Set[int]:
    """Filter UBF candidates, keeping nodes in fragments of size >= theta.

    Parameters
    ----------
    graph:
        Full network connectivity (used only within the candidate set).
    candidates:
        UBF-positive node IDs.
    config:
        ``theta`` (minimum flood count) and ``ttl`` (flood TTL).  With
        ``enabled=False`` the candidate set passes through unchanged.
    tracer:
        Optional :class:`repro.observability.Tracer`; wraps the filter in
        an ``iff`` span recording the kept/demoted counts and the flood
        count distribution.

    Returns
    -------
    set of node IDs surviving the filter.
    """
    tracer = ensure_tracer(tracer)
    candidate_set = set(int(c) for c in candidates)
    with tracer.span(
        "iff",
        theta=config.theta,
        ttl=config.ttl,
        enabled=config.enabled,
        n_candidates=len(candidate_set),
    ) as span:
        if not config.enabled:
            span.set("n_kept", len(candidate_set))
            span.set("n_demoted", 0)
            return candidate_set
        sizes = iff_fragment_sizes(graph, candidate_set, config.ttl)
        kept = {node for node, size in sizes.items() if size >= config.theta}
        if tracer.enabled:
            span.set("n_kept", len(kept))
            span.set("n_demoted", len(candidate_set) - len(kept))
            if sizes:
                counts = sorted(sizes.values())
                span.set("flood_count_min", counts[0])
                span.set("flood_count_max", counts[-1])
                span.set("flood_count_mean", sum(counts) / len(counts))
    return kept
