"""Process-parallel sharding of the UBF candidacy stage.

UBF is embarrassingly parallel by construction: Theorem 1's per-node test
reads nothing but the node's own local frame (its collection neighborhood
and the measured distances inside it), so the node set can be partitioned
arbitrarily across workers without any coordination.  This module does
exactly that -- it shards node IDs into contiguous slices, runs the
unmodified :func:`repro.core.ubf.run_ubf` on each slice in a worker
process, and concatenates the per-shard outcome lists back into node order.

Determinism contract
--------------------
The driver adds no randomness and no order-dependence: each worker computes
the same per-node outcomes the sequential path would (same kernel, same
counters), shards are contiguous slices of the requested node order, and
``ProcessPoolExecutor.map`` returns them in submission order.  The merged
result is therefore *identical* -- not just equivalent -- to
``run_ubf(network, ...)`` for any worker count, which
``tests/property/test_prop_parallel_determinism.py`` pins down to the
serialized byte level.

Tracing contract
----------------
With a :class:`repro.observability.Tracer` attached, the stage emits one
``ubf`` span with one ``ubf.shard`` child per shard (node range, wall
time, Theorem-1 work counters).  Shard boundaries come from the *fixed*
:data:`SHARD_SIZE`, never from the worker count, and each shard is timed
by a fresh clock from the tracer's ``shard_clock`` factory -- so the span
forest (and, under a deterministic injected clock, the exported JSONL
bytes) is identical for any ``workers`` value.  Worker processes return
their shard spans as plain dicts; the parent grafts them in shard order.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import UBFConfig
from repro.core.ubf import UBFNodeOutcome, run_ubf, ubf_span_counters
from repro.network.generator import Network
from repro.network.measurement import MeasuredDistances
from repro.observability.tracer import ensure_tracer

#: Below this many nodes the pool start-up cost dwarfs the work; the driver
#: silently degrades to the in-process path (same results either way).
MIN_PARALLEL_NODES = 64

#: Nodes per shard.  Fixed (rather than derived from the worker count) so
#: shard boundaries -- and the ``ubf.shard`` spans they emit -- are a
#: property of the input alone; workers then pull shards from a common
#: queue, which also keeps uneven per-node costs balanced.
SHARD_SIZE = 128

#: Worker-process state installed once per worker by the pool initializer,
#: so the (potentially large) network is pickled once per worker instead of
#: once per shard.
_WORKER_STATE: dict = {}


def shard_nodes(node_ids: Sequence[int], workers: int) -> List[List[int]]:
    """Partition ``node_ids`` into up to ``workers`` contiguous slices.

    Slices differ in length by at most one and concatenate back to the
    input order; empty slices are dropped (fewer nodes than workers).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    ids = [int(n) for n in node_ids]
    n = len(ids)
    base, extra = divmod(n, workers)
    shards: List[List[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        if size == 0:
            continue
        shards.append(ids[start : start + size])
        start += size
    return shards


def shard_nodes_by_size(
    node_ids: Sequence[int], shard_size: int = SHARD_SIZE
) -> List[List[int]]:
    """Partition ``node_ids`` into contiguous slices of ``shard_size``.

    The partition depends only on the input (not on the worker count), so
    per-shard observables are stable across any process distribution.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be at least 1")
    ids = [int(n) for n in node_ids]
    return [ids[i : i + shard_size] for i in range(0, len(ids), shard_size)]


def _pool_context():
    """Fork where available (cheap, inherits the network); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _shard_clock(factory: Optional[Callable[[], Callable[[], float]]]):
    """A fresh per-shard clock (wall clock unless a factory is injected)."""
    return factory() if factory is not None else time.perf_counter


def _shard_span_dict(
    index: int,
    node_ids: List[int],
    outcomes: List[UBFNodeOutcome],
    start: float,
    end: float,
) -> Dict[str, Any]:
    """One ``ubf.shard`` span as a plain dict (picklable, graftable)."""
    attrs: Dict[str, Any] = {
        "shard_index": index,
        "n_nodes": len(node_ids),
        "node_first": node_ids[0],
        "node_last": node_ids[-1],
    }
    attrs.update(ubf_span_counters(outcomes))
    return {
        "name": "ubf.shard",
        "start": start,
        "end": end,
        "attrs": attrs,
        "events": [],
        "children": [],
    }


def _init_worker(
    network, config, measured, localization, find_first, trace, clock_factory
) -> None:
    _WORKER_STATE["args"] = (network, config, measured, localization, find_first)
    _WORKER_STATE["trace"] = trace
    _WORKER_STATE["clock_factory"] = clock_factory


def _run_shard(
    shard: Tuple[int, List[int]]
) -> Tuple[List[UBFNodeOutcome], Optional[Dict[str, Any]]]:
    index, node_ids = shard
    network, config, measured, localization, find_first = _WORKER_STATE["args"]

    def run() -> List[UBFNodeOutcome]:
        return run_ubf(
            network,
            config,
            measured=measured,
            localization=localization,
            find_first=find_first,
            nodes=node_ids,
        )

    if not _WORKER_STATE["trace"]:
        return run(), None
    clock = _shard_clock(_WORKER_STATE["clock_factory"])
    start = clock()
    outcomes = run()
    end = clock()
    return outcomes, _shard_span_dict(index, node_ids, outcomes, start, end)


def run_ubf_parallel(
    network: Network,
    config: UBFConfig = UBFConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    localization: str = "true",
    find_first: bool = True,
    workers: int = 1,
    nodes: Optional[Sequence[int]] = None,
    tracer=None,
) -> List[UBFNodeOutcome]:
    """Phase 1 over the whole network, sharded across worker processes.

    Drop-in replacement for :func:`repro.core.ubf.run_ubf` with a
    ``workers`` knob; see the module docstring for the determinism and
    tracing contracts.  ``workers=1`` (and small networks, see
    :data:`MIN_PARALLEL_NODES`) run in-process with zero overhead.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    tracer = ensure_tracer(tracer)
    node_ids = (
        list(range(network.graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    shards = shard_nodes_by_size(node_ids)
    in_process = (
        workers == 1 or len(node_ids) < MIN_PARALLEL_NODES or len(shards) <= 1
    )
    if not tracer.enabled and in_process:
        # The untraced sequential fast path: one call, no shard bookkeeping.
        return run_ubf(
            network,
            config,
            measured=measured,
            localization=localization,
            find_first=find_first,
            nodes=node_ids,
        )

    with tracer.span(
        "ubf",
        n_nodes=len(node_ids),
        n_shards=len(shards),
        kernel=config.kernel,
        localization=localization,
    ) as span:
        if in_process:
            results = [
                _run_shard_in_process(
                    index, shard, network, config, measured, localization,
                    find_first, tracer,
                )
                for index, shard in enumerate(shards)
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(shards)),
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(
                    network, config, measured, localization, find_first,
                    tracer.enabled, tracer.shard_clock if tracer.enabled else None,
                ),
            ) as pool:
                results = list(pool.map(_run_shard, enumerate(shards)))
        outcomes = [outcome for shard_outcomes, _ in results for outcome in shard_outcomes]
        if tracer.enabled:
            tracer.attach([doc for _, doc in results if doc is not None])
            span.set_many(ubf_span_counters(outcomes))
    return outcomes


def _run_shard_in_process(
    index: int,
    node_ids: List[int],
    network: Network,
    config: UBFConfig,
    measured: Optional[MeasuredDistances],
    localization: str,
    find_first: bool,
    tracer,
) -> Tuple[List[UBFNodeOutcome], Optional[Dict[str, Any]]]:
    """One shard on the calling process, timed exactly like a worker would."""

    def run() -> List[UBFNodeOutcome]:
        return run_ubf(
            network,
            config,
            measured=measured,
            localization=localization,
            find_first=find_first,
            nodes=node_ids,
        )

    if not tracer.enabled:
        return run(), None
    clock = _shard_clock(tracer.shard_clock)
    start = clock()
    outcomes = run()
    end = clock()
    return outcomes, _shard_span_dict(index, node_ids, outcomes, start, end)
