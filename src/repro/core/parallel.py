"""Process-parallel sharding of the per-node pipeline stages.

Both per-node stages of the pipeline are embarrassingly parallel by
construction: Theorem 1's UBF test reads nothing but the node's own local
frame, and step (I)'s frame construction reads nothing but the node's own
``hops``-hop collection and the measured distances inside it.  The node
set can therefore be partitioned arbitrarily across workers without any
coordination.  This module provides one generic driver, :func:`run_sharded`,
that shards node IDs into contiguous fixed-size slices, runs a picklable
*shard task* on each slice in a worker process, and concatenates the
per-shard result lists back into node order.  Two tasks use it:

* :func:`run_ubf_parallel` -- the UBF candidacy stage (PR 3);
* :func:`run_frames_parallel` -- batched local-frame construction, so the
  pipeline computes every frame once and the UBF stage reuses them.

Payload transport
-----------------
Task payloads are dominated by big numpy arrays (positions, CSR adjacency,
measured distances, precomputed frames).  They are **not pickled** to
workers: the parent publishes them once into a single
``multiprocessing.shared_memory`` segment and each worker's initializer
rehydrates the task -- exactly once per worker -- around zero-copy
read-only views of that segment (see ``_SharedArrays`` /
``export_payload``/``import_payload``).  Only a small array-free task
shell and the segment descriptor travel through the pool's ``initargs``.
This holds under both ``fork`` and ``spawn``; the spawn path is pinned by
an explicit regression test via the ``start_method`` override.

Determinism contract
--------------------
The driver adds no randomness and no order-dependence: each worker computes
the same per-node results the sequential path would, shards are contiguous
slices of the requested node order with boundaries fixed by the task's
shard size (never by the worker count), and ``ProcessPoolExecutor.map``
returns them in submission order.  Shared-memory rehydration preserves
every payload byte and every iteration-order observable, so the merged
result is *identical* -- not just equivalent -- for any worker count and
start method, which ``tests/property/test_prop_parallel_determinism.py``
pins down to the serialized byte level for both tasks.  (For frames this
leans on the engines being slice-independent: a frame's bits do not depend
on which other frames share its MDS batch, so fixed shard boundaries are
sufficient.)

Tracing contract
----------------
With a :class:`repro.observability.Tracer` attached, each stage emits one
parent span (``ubf`` / ``localization.frames``) with one child span per
shard (``ubf.shard`` / ``localization.shard``: node range, wall time, work
counters).  Shard boundaries come from the task's fixed shard size, and
each shard is timed by a fresh clock from the tracer's ``shard_clock``
factory -- so the span forest (and, under a deterministic injected clock,
the exported JSONL bytes) is identical for any ``workers`` value.  Worker
processes return their shard spans as plain dicts; the parent grafts them
in shard order.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import UBFConfig
from repro.core.ubf import UBFNodeOutcome, run_ubf, ubf_span_counters
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.network.localization import (
    DEFAULT_COLLECTION_HOPS,
    DEFAULT_ENGINE,
    LocalFrame,
    build_frames,
    true_local_frame,
)
from repro.network.measurement import MeasuredDistances
from repro.observability.tracer import ensure_tracer

#: Below this many nodes the pool start-up cost dwarfs the work; the driver
#: silently degrades to the in-process path (same results either way).
MIN_PARALLEL_NODES = 64

#: Nodes per UBF shard.  Fixed (rather than derived from the worker count)
#: so shard boundaries -- and the ``ubf.shard`` spans they emit -- are a
#: property of the input alone; workers then pull shards from a common
#: queue, which also keeps uneven per-node costs balanced.
SHARD_SIZE = 128

#: Nodes per localization shard.  Larger than :data:`SHARD_SIZE` because
#: the batch engine amortizes its numpy call overhead across the frames of
#: a shard -- too-small shards would starve the size-grouped MDS batches.
FRAME_SHARD_SIZE = 512

#: Worker-process state installed once per worker by the pool initializer.
#: The heavy task payload (network arrays, measured distances, precomputed
#: frames) never travels through pickle at all: it is published once into a
#: shared-memory segment and rehydrated here, exactly once per worker.
_WORKER_STATE: dict = {}

#: How many times this process has materialized a task payload (0 in the
#: parent, 1 in a healthy worker).  A regression observable: the spawn
#: context test asserts every shard saw exactly one install, i.e. shards
#: never re-pickle or re-hydrate the payload.
_MATERIALIZED = 0


# ----------------------------------------------------------------------
# Shared-memory payload transport
# ----------------------------------------------------------------------
#
# A shard task's payload is dominated by a handful of large numpy arrays
# (node positions, CSR adjacency, measured edge values, frame stacks).
# Pickling them through the pool's initargs costs a serialize/deserialize
# round per worker and transiently doubles memory per worker under spawn.
# Instead, the parent copies every payload array into ONE shared-memory
# segment and ships only a small descriptor (segment name + per-array
# dtype/shape/offset) plus the array-free task shell.  Workers map the
# segment and rebuild the task around zero-copy read-only views.
#
# Determinism: the views hold the exact bytes the parent's arrays held,
# and rehydration (``import_payload``) rebuilds objects whose observable
# state is identical to the originals, so shard results -- and therefore
# the merged output -- stay byte-identical for any worker count and any
# start method (``tests`` pin spawn explicitly).


@dataclass(frozen=True)
class _SharedSpec:
    """Picklable descriptor of one shared-memory segment of named arrays."""

    name: str
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]


class _SharedArrays:
    """Parent-side owner of a payload segment (create, fill, unlink)."""

    def __init__(self, arrays: Dict[str, np.ndarray]):
        contiguous = {
            key: np.ascontiguousarray(value) for key, value in arrays.items()
        }
        specs: List[Tuple[str, str, Tuple[int, ...], int]] = []
        offset = 0
        for key, value in contiguous.items():
            offset = (offset + 63) & ~63  # cache-line align each array
            specs.append((key, value.dtype.str, value.shape, offset))
            offset += value.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (key, dtype, shape, start), value in zip(specs, contiguous.values()):
            target = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=start
            )
            target[...] = value
        self.spec = _SharedSpec(self._shm.name, tuple(specs))

    def dispose(self) -> None:
        """Release the segment (workers have exited; views are dead)."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _attach_shared(
    spec: _SharedSpec,
) -> Tuple[Dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Worker-side: map the segment, return read-only views plus the handle.

    The handle must stay referenced for the views' lifetime (it owns the
    mapping); the initializer parks it in ``_WORKER_STATE``.
    """
    handle = shared_memory.SharedMemory(name=spec.name)
    views: Dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in spec.arrays:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=handle.buf, offset=offset
        )
        view.flags.writeable = False
        views[key] = view
    return views, handle


@dataclass(frozen=True)
class _NetworkHandle:
    """Array-free stand-in riding a task's ``network`` field in transit."""

    radio_range: float
    scenario: str
    scale: float
    config: Any


def _export_network(
    network: Network, arrays: Dict[str, np.ndarray], prefix: str
) -> _NetworkHandle:
    indptr, indices = network.graph.csr()
    arrays[prefix + "positions"] = network.graph.positions  # lint: allow[LOC001] -- payload transport, not algorithm logic: the worker rebuilds the same Network the caller already holds
    arrays[prefix + "indptr"] = indptr
    arrays[prefix + "indices"] = indices
    arrays[prefix + "truth"] = network.truth_boundary  # lint: allow[LOC001] -- payload transport, not algorithm logic: ground truth rides along for the evaluation stages
    return _NetworkHandle(
        radio_range=network.graph.radio_range,
        scenario=network.scenario,
        scale=network.scale,
        config=network.config,
    )


def _import_network(
    handle: _NetworkHandle, arrays: Dict[str, np.ndarray], prefix: str
) -> Network:
    graph = NetworkGraph.from_csr(
        arrays[prefix + "positions"],
        handle.radio_range,
        arrays[prefix + "indptr"],
        arrays[prefix + "indices"],
    )
    return Network(
        graph=graph,
        truth_boundary=arrays[prefix + "truth"],
        scenario=handle.scenario,
        scale=handle.scale,
        config=handle.config,
    )


@dataclass(frozen=True)
class _MeasuredHandle:
    """Array-free stand-in for a task's ``measured`` field in transit."""

    count: int


def _export_measured(
    measured: Optional[MeasuredDistances],
    arrays: Dict[str, np.ndarray],
    prefix: str,
) -> Optional[_MeasuredHandle]:
    if measured is None:
        return None
    items = list(measured.items())
    pairs = np.array([pair for pair, _ in items], dtype=np.int64).reshape(-1, 2)
    values = np.array([value for _, value in items], dtype=float)
    arrays[prefix + "pairs"] = pairs
    arrays[prefix + "values"] = values
    return _MeasuredHandle(count=len(items))


def _import_measured(
    handle: Optional[_MeasuredHandle],
    arrays: Dict[str, np.ndarray],
    prefix: str,
) -> Optional[MeasuredDistances]:
    if handle is None:
        return None
    pairs = arrays[prefix + "pairs"].tolist()
    values = arrays[prefix + "values"].tolist()
    # Insertion order matches the parent's dict, so iteration-order
    # observables (items()) -- and anything serialized from them -- agree.
    return MeasuredDistances(
        {(pair[0], pair[1]): value for pair, value in zip(pairs, values)}
    )


@dataclass(frozen=True)
class _FramesHandle:
    """Array-free stand-in for a task's ``frames`` dict in transit."""

    count: int


def _export_frames(
    frames: Optional[Dict[int, LocalFrame]],
    arrays: Dict[str, np.ndarray],
    prefix: str,
) -> Optional[_FramesHandle]:
    if frames is None:
        return None
    ordered = list(frames.values())
    sizes = np.array([len(f.members) for f in ordered], dtype=np.int64)
    ptr = np.zeros(len(ordered) + 1, dtype=np.int64)
    np.cumsum(sizes, out=ptr[1:])
    arrays[prefix + "nodes"] = np.array([f.node for f in ordered], dtype=np.int64)
    arrays[prefix + "ptr"] = ptr
    arrays[prefix + "members"] = (
        np.concatenate([np.asarray(f.members, dtype=np.int64) for f in ordered])
        if ordered
        else np.empty(0, dtype=np.int64)
    )
    arrays[prefix + "coords"] = (
        np.concatenate([f.coordinates for f in ordered])
        if ordered
        else np.empty((0, 3), dtype=float)
    )
    arrays[prefix + "n_one_hop"] = np.array(
        [f.n_one_hop for f in ordered], dtype=np.int64
    )
    arrays[prefix + "iterations"] = np.array(
        [f.smacof_iterations for f in ordered], dtype=np.int64
    )
    return _FramesHandle(count=len(ordered))


def _import_frames(
    handle: Optional[_FramesHandle],
    arrays: Dict[str, np.ndarray],
    prefix: str,
) -> Optional[Dict[int, LocalFrame]]:
    if handle is None:
        return None
    nodes = arrays[prefix + "nodes"]
    ptr = arrays[prefix + "ptr"]
    members = arrays[prefix + "members"]
    coords = arrays[prefix + "coords"]
    n_one_hop = arrays[prefix + "n_one_hop"]
    iterations = arrays[prefix + "iterations"]
    frames: Dict[int, LocalFrame] = {}
    for k in range(handle.count):
        lo, hi = int(ptr[k]), int(ptr[k + 1])
        frame = LocalFrame(
            node=int(nodes[k]),
            members=members[lo:hi].tolist(),
            coordinates=coords[lo:hi],
            n_one_hop=int(n_one_hop[k]),
            smacof_iterations=int(iterations[k]),
        )
        frames[frame.node] = frame
    return frames


def shard_nodes(node_ids: Sequence[int], workers: int) -> List[List[int]]:
    """Partition ``node_ids`` into up to ``workers`` contiguous slices.

    Slices differ in length by at most one and concatenate back to the
    input order; empty slices are dropped (fewer nodes than workers).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    ids = [int(n) for n in node_ids]
    n = len(ids)
    base, extra = divmod(n, workers)
    shards: List[List[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        if size == 0:
            continue
        shards.append(ids[start : start + size])
        start += size
    return shards


def shard_nodes_by_size(
    node_ids: Sequence[int], shard_size: int = SHARD_SIZE
) -> List[List[int]]:
    """Partition ``node_ids`` into contiguous slices of ``shard_size``.

    The partition depends only on the input (not on the worker count), so
    per-shard observables are stable across any process distribution.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be at least 1")
    ids = [int(n) for n in node_ids]
    return [ids[i : i + shard_size] for i in range(0, len(ids), shard_size)]


@dataclass(frozen=True)
class _UBFShardTask:
    """Picklable UBF stage task for :func:`run_sharded`."""

    network: Network
    config: UBFConfig
    measured: Optional[MeasuredDistances]
    localization: str
    find_first: bool
    frames: Optional[Dict[int, LocalFrame]] = None

    span_name = "ubf"
    shard_span_name = "ubf.shard"
    shard_size = SHARD_SIZE

    def span_attrs(self, node_ids: List[int]) -> Dict[str, Any]:
        return {
            "n_nodes": len(node_ids),
            "kernel": self.config.kernel,
            "localization": self.localization,
        }

    def run(self, node_ids: List[int]) -> List[UBFNodeOutcome]:
        return run_ubf(
            self.network,
            self.config,
            measured=self.measured,
            localization=self.localization,
            find_first=self.find_first,
            nodes=node_ids,
            frames=self.frames,
        )

    def counters(self, results: List[UBFNodeOutcome]) -> Dict[str, Any]:
        return ubf_span_counters(results)

    def export_payload(self) -> Tuple["_UBFShardTask", Dict[str, np.ndarray]]:
        """Split into an array-free shell plus the payload arrays."""
        arrays: Dict[str, np.ndarray] = {}
        shell = replace(
            self,
            network=_export_network(self.network, arrays, "net."),
            measured=_export_measured(self.measured, arrays, "meas."),
            frames=_export_frames(self.frames, arrays, "frames."),
        )
        return shell, arrays

    def import_payload(self, arrays: Dict[str, np.ndarray]) -> "_UBFShardTask":
        """Rebuild the full task around shared-memory array views."""
        return replace(
            self,
            network=_import_network(self.network, arrays, "net."),
            measured=_import_measured(self.measured, arrays, "meas."),
            frames=_import_frames(self.frames, arrays, "frames."),
        )


def frame_span_counters(frames: List[LocalFrame]) -> Dict[str, int]:
    """Deterministic span counters summarizing a batch of local frames.

    Shared by the ``localization.frames`` parent span and the per-shard
    ``localization.shard`` spans -- the values depend only on the frames,
    never on sharding or timing.
    """
    return {
        "n_frames": len(frames),
        "total_members": sum(len(f.members) for f in frames),
        "total_smacof_iterations": sum(f.smacof_iterations for f in frames),
    }


@dataclass(frozen=True)
class _FrameShardTask:
    """Picklable frame-construction task for :func:`run_sharded`."""

    network: Network
    measured: Optional[MeasuredDistances]
    mode: str
    hops: int
    engine: str

    span_name = "localization.frames"
    shard_span_name = "localization.shard"
    shard_size = FRAME_SHARD_SIZE

    def span_attrs(self, node_ids: List[int]) -> Dict[str, Any]:
        return {
            "n_nodes": len(node_ids),
            "mode": self.mode,
            "engine": self.engine,
            "hops": self.hops,
        }

    def run(self, node_ids: List[int]) -> List[LocalFrame]:
        graph = self.network.graph
        if self.mode == "mds":
            return build_frames(
                graph,
                self.measured,
                hops=self.hops,
                engine=self.engine,
                nodes=node_ids,
            )
        if self.mode == "trilateration":
            from repro.network.trilateration import trilateration_local_frame

            return [
                trilateration_local_frame(graph, self.measured, n, hops=self.hops)
                for n in node_ids
            ]
        return [true_local_frame(graph, n, hops=self.hops) for n in node_ids]

    def counters(self, results: List[LocalFrame]) -> Dict[str, Any]:
        return frame_span_counters(results)

    def export_payload(self) -> Tuple["_FrameShardTask", Dict[str, np.ndarray]]:
        """Split into an array-free shell plus the payload arrays."""
        arrays: Dict[str, np.ndarray] = {}
        shell = replace(
            self,
            network=_export_network(self.network, arrays, "net."),
            measured=_export_measured(self.measured, arrays, "meas."),
        )
        return shell, arrays

    def import_payload(self, arrays: Dict[str, np.ndarray]) -> "_FrameShardTask":
        """Rebuild the full task around shared-memory array views."""
        return replace(
            self,
            network=_import_network(self.network, arrays, "net."),
            measured=_import_measured(self.measured, arrays, "meas."),
        )


@dataclass(frozen=True)
class _PayloadProbeTask:
    """Test-support shard task observing per-worker payload installs.

    ``run`` echoes, for every node, the worker's materialization counter
    and the rehydrated network size -- letting the spawn-context
    regression test assert that each shard ran against a payload that was
    materialized exactly once in its worker, whichever worker that was.
    """

    network: Network

    span_name = "payload.probe"
    shard_span_name = "payload.probe.shard"
    shard_size = 16

    def span_attrs(self, node_ids: List[int]) -> Dict[str, Any]:
        return {"n_nodes": len(node_ids)}

    def run(self, node_ids: List[int]) -> List[Tuple[int, int, int]]:
        return [
            (int(n), _MATERIALIZED, self.network.graph.n_nodes) for n in node_ids
        ]

    def counters(self, results: list) -> Dict[str, Any]:
        return {"n_probes": len(results)}

    def export_payload(self) -> Tuple["_PayloadProbeTask", Dict[str, np.ndarray]]:
        arrays: Dict[str, np.ndarray] = {}
        return replace(self, network=_export_network(self.network, arrays, "net.")), arrays

    def import_payload(self, arrays: Dict[str, np.ndarray]) -> "_PayloadProbeTask":
        return replace(self, network=_import_network(self.network, arrays, "net."))


def _pool_context(start_method: Optional[str] = None):
    """Fork where available (cheap start-up); spawn otherwise.

    ``start_method`` forces a specific method -- the spawn regression test
    uses it to exercise the cold-import worker path on fork platforms.
    Results are start-method independent: the payload travels by shared
    memory either way.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _shard_clock(factory: Optional[Callable[[], Callable[[], float]]]):
    """A fresh per-shard clock (wall clock unless a factory is injected)."""
    return factory() if factory is not None else time.perf_counter


def _shard_span_dict(
    task,
    index: int,
    node_ids: List[int],
    results: list,
    start: float,
    end: float,
) -> Dict[str, Any]:
    """One per-shard span as a plain dict (picklable, graftable)."""
    attrs: Dict[str, Any] = {
        "shard_index": index,
        "n_nodes": len(node_ids),
        "node_first": node_ids[0],
        "node_last": node_ids[-1],
    }
    attrs.update(task.counters(results))
    return {
        "name": task.shard_span_name,
        "start": start,
        "end": end,
        "attrs": attrs,
        "events": [],
        "children": [],
    }


def _init_worker(task, shm_spec, trace, clock_factory) -> None:
    # Install the read-only payload exactly once per worker process.  The
    # parent never reads _WORKER_STATE back; shard results travel through
    # the pool's return channel, so the one-way write is safe.  The task
    # arrives as an array-free shell; its arrays are mapped (not copied)
    # from the parent's shared-memory segment and the shell is rehydrated
    # around them, bumping the per-process materialization counter the
    # spawn regression test reads back through _PayloadProbeTask.
    global _MATERIALIZED
    handle = None
    if shm_spec is not None:
        views, handle = _attach_shared(shm_spec)
        task = task.import_payload(views)
    _MATERIALIZED += 1  # lint: allow[PAR008] -- write-once per-process install count, read back only through shard results (test observable), never by the parent
    _WORKER_STATE.update(  # lint: allow[PAR008] -- sanctioned initializer idiom: write-once per-process payload install, never read by the parent
        {"task": task, "trace": trace, "clock_factory": clock_factory, "shm": handle}
    )


def _run_shard(
    shard: Tuple[int, List[int]]
) -> Tuple[list, Optional[Dict[str, Any]]]:
    index, node_ids = shard
    task = _WORKER_STATE["task"]
    if not _WORKER_STATE["trace"]:
        return task.run(node_ids), None
    clock = _shard_clock(_WORKER_STATE["clock_factory"])
    start = clock()
    results = task.run(node_ids)
    end = clock()
    return results, _shard_span_dict(task, index, node_ids, results, start, end)


def _run_shard_in_process(
    task, index: int, node_ids: List[int], tracer
) -> Tuple[list, Optional[Dict[str, Any]]]:
    """One shard on the calling process, timed exactly like a worker would."""
    if not tracer.enabled:
        return task.run(node_ids), None
    clock = _shard_clock(tracer.shard_clock)
    start = clock()
    results = task.run(node_ids)
    end = clock()
    return results, _shard_span_dict(task, index, node_ids, results, start, end)


def run_sharded(
    task,
    node_ids: Sequence[int],
    *,
    workers: int = 1,
    tracer=None,
    start_method: Optional[str] = None,
) -> list:
    """Run a per-node shard task over ``node_ids``, optionally in parallel.

    ``task`` is a picklable object providing ``run(node_ids) -> list``,
    ``counters(results) -> dict``, ``span_attrs(node_ids) -> dict``, and
    the class attributes ``span_name``, ``shard_span_name``, and
    ``shard_size`` (see :class:`_UBFShardTask` / :class:`_FrameShardTask`).
    Results concatenate in ``node_ids`` order; see the module docstring for
    the determinism and tracing contracts.  ``workers=1`` (and small
    inputs, see :data:`MIN_PARALLEL_NODES`) run in-process; the untraced
    sequential case short-circuits to a single ``task.run`` call with zero
    shard bookkeeping.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    tracer = ensure_tracer(tracer)
    ids = [int(n) for n in node_ids]
    shards = shard_nodes_by_size(ids, task.shard_size)
    in_process = workers == 1 or len(ids) < MIN_PARALLEL_NODES or len(shards) <= 1
    if not tracer.enabled and in_process:
        return task.run(ids)

    with tracer.span(
        task.span_name, n_shards=len(shards), **task.span_attrs(ids)
    ) as span:
        if in_process:
            results = [
                _run_shard_in_process(task, index, shard, tracer)
                for index, shard in enumerate(shards)
            ]
        else:
            # Publish the payload arrays once into shared memory; workers
            # receive only the array-free task shell plus the segment spec.
            if hasattr(task, "export_payload"):
                shell, payload = task.export_payload()
            else:  # tasks without large payloads ship as-is
                shell, payload = task, {}
            shared = _SharedArrays(payload) if payload else None
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(shards)),
                    mp_context=_pool_context(start_method),
                    initializer=_init_worker,
                    initargs=(
                        shell,
                        shared.spec if shared is not None else None,
                        tracer.enabled,
                        tracer.shard_clock if tracer.enabled else None,
                    ),
                ) as pool:
                    results = list(pool.map(_run_shard, enumerate(shards)))
            finally:
                if shared is not None:
                    shared.dispose()
        merged = [item for shard_results, _ in results for item in shard_results]
        if tracer.enabled:
            tracer.attach([doc for _, doc in results if doc is not None])
            span.set_many(task.counters(merged))
    return merged


def run_ubf_parallel(
    network: Network,
    config: UBFConfig = UBFConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    localization: str = "true",
    find_first: bool = True,
    workers: int = 1,
    nodes: Optional[Sequence[int]] = None,
    frames: Optional[Dict[int, LocalFrame]] = None,
    tracer=None,
    start_method: Optional[str] = None,
) -> List[UBFNodeOutcome]:
    """Phase 1 over the whole network, sharded across worker processes.

    Drop-in replacement for :func:`repro.core.ubf.run_ubf` with a
    ``workers`` knob; see the module docstring for the determinism and
    tracing contracts.  ``frames`` passes precomputed local frames through
    to :func:`run_ubf` so the stage classifies instead of re-localizing.
    """
    node_ids = (
        list(range(network.graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    task = _UBFShardTask(
        network=network,
        config=config,
        measured=measured,
        localization=localization,
        find_first=find_first,
        frames=frames,
    )
    return run_sharded(
        task, node_ids, workers=workers, tracer=tracer, start_method=start_method
    )


def run_frames_parallel(
    network: Network,
    measured: Optional[MeasuredDistances] = None,
    *,
    mode: str = "mds",
    hops: int = DEFAULT_COLLECTION_HOPS,
    engine: str = DEFAULT_ENGINE,
    workers: int = 1,
    nodes: Optional[Sequence[int]] = None,
    tracer=None,
    start_method: Optional[str] = None,
) -> List[LocalFrame]:
    """Step (I) over the whole network, sharded across worker processes.

    Builds every node's local frame once -- through the batched
    localization engine by default -- so downstream stages (UBF, quality
    diagnostics) reuse them instead of re-localizing per node.  Output is
    ordered as ``nodes`` (node-ID order by default) and byte-identical for
    any worker count (see the module docstring).  ``mode`` mirrors the
    pipeline's resolved localization: ``"mds"`` (honors ``engine``),
    ``"trilateration"``, or ``"true"``.
    """
    if mode not in ("mds", "trilateration", "true"):
        raise ValueError("mode must be 'mds', 'trilateration', or 'true'")
    if mode in ("mds", "trilateration") and measured is None:
        raise ValueError(f"mode={mode!r} requires measured distances")
    node_ids = (
        list(range(network.graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    task = _FrameShardTask(
        network=network, measured=measured, mode=mode, hops=hops, engine=engine
    )
    return run_sharded(
        task, node_ids, workers=workers, tracer=tracer, start_method=start_method
    )
