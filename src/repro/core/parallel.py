"""Process-parallel sharding of the UBF candidacy stage.

UBF is embarrassingly parallel by construction: Theorem 1's per-node test
reads nothing but the node's own local frame (its collection neighborhood
and the measured distances inside it), so the node set can be partitioned
arbitrarily across workers without any coordination.  This module does
exactly that -- it shards node IDs into contiguous slices, runs the
unmodified :func:`repro.core.ubf.run_ubf` on each slice in a worker
process, and concatenates the per-shard outcome lists back into node order.

Determinism contract
--------------------
The driver adds no randomness and no order-dependence: each worker computes
the same per-node outcomes the sequential path would (same kernel, same
counters), shards are contiguous slices of the requested node order, and
``ProcessPoolExecutor.map`` returns them in submission order.  The merged
result is therefore *identical* -- not just equivalent -- to
``run_ubf(network, ...)`` for any worker count, which
``tests/property/test_prop_parallel_determinism.py`` pins down to the
serialized byte level.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.core.config import UBFConfig
from repro.core.ubf import UBFNodeOutcome, run_ubf
from repro.network.generator import Network
from repro.network.measurement import MeasuredDistances

#: Below this many nodes the pool start-up cost dwarfs the work; the driver
#: silently degrades to the in-process path (same results either way).
MIN_PARALLEL_NODES = 64

#: Worker-process state installed once per worker by the pool initializer,
#: so the (potentially large) network is pickled once per worker instead of
#: once per shard.
_WORKER_STATE: dict = {}


def shard_nodes(node_ids: Sequence[int], workers: int) -> List[List[int]]:
    """Partition ``node_ids`` into up to ``workers`` contiguous slices.

    Slices differ in length by at most one and concatenate back to the
    input order; empty slices are dropped (fewer nodes than workers).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    ids = [int(n) for n in node_ids]
    n = len(ids)
    base, extra = divmod(n, workers)
    shards: List[List[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        if size == 0:
            continue
        shards.append(ids[start : start + size])
        start += size
    return shards


def _pool_context():
    """Fork where available (cheap, inherits the network); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _init_worker(network, config, measured, localization, find_first) -> None:
    _WORKER_STATE["args"] = (network, config, measured, localization, find_first)


def _run_shard(node_ids: List[int]) -> List[UBFNodeOutcome]:
    network, config, measured, localization, find_first = _WORKER_STATE["args"]
    return run_ubf(
        network,
        config,
        measured=measured,
        localization=localization,
        find_first=find_first,
        nodes=node_ids,
    )


def run_ubf_parallel(
    network: Network,
    config: UBFConfig = UBFConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    localization: str = "true",
    find_first: bool = True,
    workers: int = 1,
    nodes: Optional[Sequence[int]] = None,
) -> List[UBFNodeOutcome]:
    """Phase 1 over the whole network, sharded across worker processes.

    Drop-in replacement for :func:`repro.core.ubf.run_ubf` with a
    ``workers`` knob; see the module docstring for the determinism
    contract.  ``workers=1`` (and small networks, see
    :data:`MIN_PARALLEL_NODES`) run in-process with zero overhead.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    node_ids = (
        list(range(network.graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    if workers == 1 or len(node_ids) < MIN_PARALLEL_NODES:
        return run_ubf(
            network,
            config,
            measured=measured,
            localization=localization,
            find_first=find_first,
            nodes=node_ids,
        )

    shards = shard_nodes(node_ids, workers)
    with ProcessPoolExecutor(
        max_workers=len(shards),
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(network, config, measured, localization, find_first),
    ) as pool:
        shard_outcomes = list(pool.map(_run_shard, shards))
    return [outcome for shard in shard_outcomes for outcome in shard]
