"""Process-parallel sharding of the per-node pipeline stages.

Both per-node stages of the pipeline are embarrassingly parallel by
construction: Theorem 1's UBF test reads nothing but the node's own local
frame, and step (I)'s frame construction reads nothing but the node's own
``hops``-hop collection and the measured distances inside it.  The node
set can therefore be partitioned arbitrarily across workers without any
coordination.  This module provides one generic driver, :func:`run_sharded`,
that shards node IDs into contiguous fixed-size slices, runs a picklable
*shard task* on each slice in a worker process, and concatenates the
per-shard result lists back into node order.  Two tasks use it:

* :func:`run_ubf_parallel` -- the UBF candidacy stage (PR 3);
* :func:`run_frames_parallel` -- batched local-frame construction, so the
  pipeline computes every frame once and the UBF stage reuses them.

Determinism contract
--------------------
The driver adds no randomness and no order-dependence: each worker computes
the same per-node results the sequential path would, shards are contiguous
slices of the requested node order with boundaries fixed by the task's
shard size (never by the worker count), and ``ProcessPoolExecutor.map``
returns them in submission order.  The merged result is therefore
*identical* -- not just equivalent -- for any worker count, which
``tests/property/test_prop_parallel_determinism.py`` pins down to the
serialized byte level for both tasks.  (For frames this leans on the batch
engine being slice-independent: a frame's bits do not depend on which other
frames share its MDS batch, so fixed shard boundaries are sufficient.)

Tracing contract
----------------
With a :class:`repro.observability.Tracer` attached, each stage emits one
parent span (``ubf`` / ``localization.frames``) with one child span per
shard (``ubf.shard`` / ``localization.shard``: node range, wall time, work
counters).  Shard boundaries come from the task's fixed shard size, and
each shard is timed by a fresh clock from the tracer's ``shard_clock``
factory -- so the span forest (and, under a deterministic injected clock,
the exported JSONL bytes) is identical for any ``workers`` value.  Worker
processes return their shard spans as plain dicts; the parent grafts them
in shard order.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import UBFConfig
from repro.core.ubf import UBFNodeOutcome, run_ubf, ubf_span_counters
from repro.network.generator import Network
from repro.network.localization import (
    DEFAULT_COLLECTION_HOPS,
    DEFAULT_ENGINE,
    LocalFrame,
    build_frames,
    true_local_frame,
)
from repro.network.measurement import MeasuredDistances
from repro.observability.tracer import ensure_tracer

#: Below this many nodes the pool start-up cost dwarfs the work; the driver
#: silently degrades to the in-process path (same results either way).
MIN_PARALLEL_NODES = 64

#: Nodes per UBF shard.  Fixed (rather than derived from the worker count)
#: so shard boundaries -- and the ``ubf.shard`` spans they emit -- are a
#: property of the input alone; workers then pull shards from a common
#: queue, which also keeps uneven per-node costs balanced.
SHARD_SIZE = 128

#: Nodes per localization shard.  Larger than :data:`SHARD_SIZE` because
#: the batch engine amortizes its numpy call overhead across the frames of
#: a shard -- too-small shards would starve the size-grouped MDS batches.
FRAME_SHARD_SIZE = 512

#: Worker-process state installed once per worker by the pool initializer,
#: so the (potentially large) task payload is pickled once per worker
#: instead of once per shard.
_WORKER_STATE: dict = {}


def shard_nodes(node_ids: Sequence[int], workers: int) -> List[List[int]]:
    """Partition ``node_ids`` into up to ``workers`` contiguous slices.

    Slices differ in length by at most one and concatenate back to the
    input order; empty slices are dropped (fewer nodes than workers).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    ids = [int(n) for n in node_ids]
    n = len(ids)
    base, extra = divmod(n, workers)
    shards: List[List[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        if size == 0:
            continue
        shards.append(ids[start : start + size])
        start += size
    return shards


def shard_nodes_by_size(
    node_ids: Sequence[int], shard_size: int = SHARD_SIZE
) -> List[List[int]]:
    """Partition ``node_ids`` into contiguous slices of ``shard_size``.

    The partition depends only on the input (not on the worker count), so
    per-shard observables are stable across any process distribution.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be at least 1")
    ids = [int(n) for n in node_ids]
    return [ids[i : i + shard_size] for i in range(0, len(ids), shard_size)]


@dataclass(frozen=True)
class _UBFShardTask:
    """Picklable UBF stage task for :func:`run_sharded`."""

    network: Network
    config: UBFConfig
    measured: Optional[MeasuredDistances]
    localization: str
    find_first: bool
    frames: Optional[Dict[int, LocalFrame]] = None

    span_name = "ubf"
    shard_span_name = "ubf.shard"
    shard_size = SHARD_SIZE

    def span_attrs(self, node_ids: List[int]) -> Dict[str, Any]:
        return {
            "n_nodes": len(node_ids),
            "kernel": self.config.kernel,
            "localization": self.localization,
        }

    def run(self, node_ids: List[int]) -> List[UBFNodeOutcome]:
        return run_ubf(
            self.network,
            self.config,
            measured=self.measured,
            localization=self.localization,
            find_first=self.find_first,
            nodes=node_ids,
            frames=self.frames,
        )

    def counters(self, results: List[UBFNodeOutcome]) -> Dict[str, Any]:
        return ubf_span_counters(results)


def frame_span_counters(frames: List[LocalFrame]) -> Dict[str, int]:
    """Deterministic span counters summarizing a batch of local frames.

    Shared by the ``localization.frames`` parent span and the per-shard
    ``localization.shard`` spans -- the values depend only on the frames,
    never on sharding or timing.
    """
    return {
        "n_frames": len(frames),
        "total_members": sum(len(f.members) for f in frames),
        "total_smacof_iterations": sum(f.smacof_iterations for f in frames),
    }


@dataclass(frozen=True)
class _FrameShardTask:
    """Picklable frame-construction task for :func:`run_sharded`."""

    network: Network
    measured: Optional[MeasuredDistances]
    mode: str
    hops: int
    engine: str

    span_name = "localization.frames"
    shard_span_name = "localization.shard"
    shard_size = FRAME_SHARD_SIZE

    def span_attrs(self, node_ids: List[int]) -> Dict[str, Any]:
        return {
            "n_nodes": len(node_ids),
            "mode": self.mode,
            "engine": self.engine,
            "hops": self.hops,
        }

    def run(self, node_ids: List[int]) -> List[LocalFrame]:
        graph = self.network.graph
        if self.mode == "mds":
            return build_frames(
                graph,
                self.measured,
                hops=self.hops,
                engine=self.engine,
                nodes=node_ids,
            )
        if self.mode == "trilateration":
            from repro.network.trilateration import trilateration_local_frame

            return [
                trilateration_local_frame(graph, self.measured, n, hops=self.hops)
                for n in node_ids
            ]
        return [true_local_frame(graph, n, hops=self.hops) for n in node_ids]

    def counters(self, results: List[LocalFrame]) -> Dict[str, Any]:
        return frame_span_counters(results)


def _pool_context():
    """Fork where available (cheap, inherits the payload); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _shard_clock(factory: Optional[Callable[[], Callable[[], float]]]):
    """A fresh per-shard clock (wall clock unless a factory is injected)."""
    return factory() if factory is not None else time.perf_counter


def _shard_span_dict(
    task,
    index: int,
    node_ids: List[int],
    results: list,
    start: float,
    end: float,
) -> Dict[str, Any]:
    """One per-shard span as a plain dict (picklable, graftable)."""
    attrs: Dict[str, Any] = {
        "shard_index": index,
        "n_nodes": len(node_ids),
        "node_first": node_ids[0],
        "node_last": node_ids[-1],
    }
    attrs.update(task.counters(results))
    return {
        "name": task.shard_span_name,
        "start": start,
        "end": end,
        "attrs": attrs,
        "events": [],
        "children": [],
    }


def _init_worker(task, trace, clock_factory) -> None:
    # Install the read-only payload exactly once per worker process.  The
    # parent never reads _WORKER_STATE back; shard results travel through
    # the pool's return channel, so the one-way write is safe.
    _WORKER_STATE.update(  # lint: allow[PAR008] -- sanctioned initializer idiom: write-once per-process payload install, never read by the parent
        {"task": task, "trace": trace, "clock_factory": clock_factory}
    )


def _run_shard(
    shard: Tuple[int, List[int]]
) -> Tuple[list, Optional[Dict[str, Any]]]:
    index, node_ids = shard
    task = _WORKER_STATE["task"]
    if not _WORKER_STATE["trace"]:
        return task.run(node_ids), None
    clock = _shard_clock(_WORKER_STATE["clock_factory"])
    start = clock()
    results = task.run(node_ids)
    end = clock()
    return results, _shard_span_dict(task, index, node_ids, results, start, end)


def _run_shard_in_process(
    task, index: int, node_ids: List[int], tracer
) -> Tuple[list, Optional[Dict[str, Any]]]:
    """One shard on the calling process, timed exactly like a worker would."""
    if not tracer.enabled:
        return task.run(node_ids), None
    clock = _shard_clock(tracer.shard_clock)
    start = clock()
    results = task.run(node_ids)
    end = clock()
    return results, _shard_span_dict(task, index, node_ids, results, start, end)


def run_sharded(
    task,
    node_ids: Sequence[int],
    *,
    workers: int = 1,
    tracer=None,
) -> list:
    """Run a per-node shard task over ``node_ids``, optionally in parallel.

    ``task`` is a picklable object providing ``run(node_ids) -> list``,
    ``counters(results) -> dict``, ``span_attrs(node_ids) -> dict``, and
    the class attributes ``span_name``, ``shard_span_name``, and
    ``shard_size`` (see :class:`_UBFShardTask` / :class:`_FrameShardTask`).
    Results concatenate in ``node_ids`` order; see the module docstring for
    the determinism and tracing contracts.  ``workers=1`` (and small
    inputs, see :data:`MIN_PARALLEL_NODES`) run in-process; the untraced
    sequential case short-circuits to a single ``task.run`` call with zero
    shard bookkeeping.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    tracer = ensure_tracer(tracer)
    ids = [int(n) for n in node_ids]
    shards = shard_nodes_by_size(ids, task.shard_size)
    in_process = workers == 1 or len(ids) < MIN_PARALLEL_NODES or len(shards) <= 1
    if not tracer.enabled and in_process:
        return task.run(ids)

    with tracer.span(
        task.span_name, n_shards=len(shards), **task.span_attrs(ids)
    ) as span:
        if in_process:
            results = [
                _run_shard_in_process(task, index, shard, tracer)
                for index, shard in enumerate(shards)
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(shards)),
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(
                    task,
                    tracer.enabled,
                    tracer.shard_clock if tracer.enabled else None,
                ),
            ) as pool:
                results = list(pool.map(_run_shard, enumerate(shards)))
        merged = [item for shard_results, _ in results for item in shard_results]
        if tracer.enabled:
            tracer.attach([doc for _, doc in results if doc is not None])
            span.set_many(task.counters(merged))
    return merged


def run_ubf_parallel(
    network: Network,
    config: UBFConfig = UBFConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    localization: str = "true",
    find_first: bool = True,
    workers: int = 1,
    nodes: Optional[Sequence[int]] = None,
    frames: Optional[Dict[int, LocalFrame]] = None,
    tracer=None,
) -> List[UBFNodeOutcome]:
    """Phase 1 over the whole network, sharded across worker processes.

    Drop-in replacement for :func:`repro.core.ubf.run_ubf` with a
    ``workers`` knob; see the module docstring for the determinism and
    tracing contracts.  ``frames`` passes precomputed local frames through
    to :func:`run_ubf` so the stage classifies instead of re-localizing.
    """
    node_ids = (
        list(range(network.graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    task = _UBFShardTask(
        network=network,
        config=config,
        measured=measured,
        localization=localization,
        find_first=find_first,
        frames=frames,
    )
    return run_sharded(task, node_ids, workers=workers, tracer=tracer)


def run_frames_parallel(
    network: Network,
    measured: Optional[MeasuredDistances] = None,
    *,
    mode: str = "mds",
    hops: int = DEFAULT_COLLECTION_HOPS,
    engine: str = DEFAULT_ENGINE,
    workers: int = 1,
    nodes: Optional[Sequence[int]] = None,
    tracer=None,
) -> List[LocalFrame]:
    """Step (I) over the whole network, sharded across worker processes.

    Builds every node's local frame once -- through the batched
    localization engine by default -- so downstream stages (UBF, quality
    diagnostics) reuse them instead of re-localizing per node.  Output is
    ordered as ``nodes`` (node-ID order by default) and byte-identical for
    any worker count (see the module docstring).  ``mode`` mirrors the
    pipeline's resolved localization: ``"mds"`` (honors ``engine``),
    ``"trilateration"``, or ``"true"``.
    """
    if mode not in ("mds", "trilateration", "true"):
        raise ValueError("mode must be 'mds', 'trilateration', or 'true'")
    if mode in ("mds", "trilateration") and measured is None:
        raise ValueError(f"mode={mode!r} requires measured distances")
    node_ids = (
        list(range(network.graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    task = _FrameShardTask(
        network=network, measured=measured, mode=mode, hops=hops, engine=engine
    )
    return run_sharded(task, node_ids, workers=workers, tracer=tracer)
