"""End-to-end boundary detection: localization -> UBF -> IFF -> grouping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import run_iff
from repro.core.parallel import run_ubf_parallel
from repro.core.ubf import UBFNodeOutcome, candidates_from_outcomes
from repro.network.generator import Network
from repro.network.measurement import (
    MeasuredDistances,
    NoError,
    measure_distances,
)


@dataclass
class BoundaryDetectionResult:
    """Everything the detection pipeline produced.

    Attributes
    ----------
    candidates:
        UBF-positive node IDs (Phase 1 output).
    boundary:
        Node IDs surviving IFF (the final detected boundary set).
    groups:
        Boundary nodes partitioned per boundary surface, largest first.
    ubf_outcomes:
        Per-node UBF observables (ball counts etc.), indexed by node ID.
    localization_used:
        ``"true"`` or ``"mds"`` -- which coordinate source UBF consumed.
    """

    candidates: Set[int]
    boundary: Set[int]
    groups: List[List[int]]
    ubf_outcomes: List[UBFNodeOutcome] = field(repr=False, default_factory=list)
    localization_used: str = "true"

    @property
    def n_found(self) -> int:
        """Number of detected boundary nodes."""
        return len(self.boundary)

    def boundary_mask(self, n_nodes: int) -> np.ndarray:
        """Boolean detection mask over ``n_nodes`` node IDs."""
        mask = np.zeros(n_nodes, dtype=bool)
        mask[sorted(self.boundary)] = True
        return mask


class BoundaryDetector:
    """The paper's full localized boundary-detection pipeline.

    Usage::

        detector = BoundaryDetector()          # paper defaults
        result = detector.detect(network)      # perfect ranging
        # or, with a 30% distance measurement error:
        detector = BoundaryDetector(DetectorConfig(
            error_model=UniformAbsoluteError(0.3)))
        result = detector.detect(network, rng=np.random.default_rng(1))
    """

    def __init__(self, config: DetectorConfig = DetectorConfig()):
        self.config = config

    def detect(
        self,
        network: Network,
        *,
        measured: Optional[MeasuredDistances] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> BoundaryDetectionResult:
        """Run localization, UBF, IFF, and grouping on ``network``.

        Parameters
        ----------
        network:
            The deployed network.
        measured:
            Pre-computed one-hop distance measurements.  When omitted and
            the config's localization resolves to ``"mds"``, measurements
            are generated with the config's error model and ``rng``.
        rng:
            Randomness source for measurement generation (defaults to a
            fresh seed-0 generator for reproducibility).
        """
        mode = self.config.resolved_localization()
        if mode in ("mds", "trilateration") and measured is None:
            if rng is None:
                rng = np.random.default_rng(0)
            measured = measure_distances(network.graph, self.config.error_model, rng)

        outcomes = run_ubf_parallel(
            network,
            self.config.ubf,
            measured=measured,
            localization=mode,
            workers=self.config.workers,
        )
        candidates = candidates_from_outcomes(outcomes)
        boundary = run_iff(network.graph, candidates, self.config.iff)
        groups = group_boundary_nodes(network.graph, boundary)
        return BoundaryDetectionResult(
            candidates=candidates,
            boundary=boundary,
            groups=groups,
            ubf_outcomes=outcomes,
            localization_used=mode,
        )


def detect_boundary(
    network: Network,
    config: DetectorConfig = DetectorConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    rng: Optional[np.random.Generator] = None,
) -> BoundaryDetectionResult:
    """Functional one-shot form of :class:`BoundaryDetector`."""
    return BoundaryDetector(config).detect(network, measured=measured, rng=rng)
