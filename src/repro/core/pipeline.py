"""End-to-end boundary detection: localization -> UBF -> IFF -> grouping."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import run_iff
from repro.core.parallel import (
    frame_span_counters,
    run_frames_parallel,
    run_ubf_parallel,
)
from repro.core.ubf import UBFNodeOutcome, candidates_from_outcomes
from repro.network.generator import Network
from repro.network.measurement import (
    MeasuredDistances,
    NoError,
    measure_distances,
)
from repro.observability.tracer import config_snapshot, ensure_tracer

logger = logging.getLogger(__name__)


@dataclass
class BoundaryDetectionResult:
    """Everything the detection pipeline produced.

    Attributes
    ----------
    candidates:
        UBF-positive node IDs (Phase 1 output).
    boundary:
        Node IDs surviving IFF (the final detected boundary set).
    groups:
        Boundary nodes partitioned per boundary surface, largest first.
    ubf_outcomes:
        Per-node UBF observables (ball counts etc.), indexed by node ID.
    localization_used:
        ``"true"``, ``"mds"``, or ``"trilateration"`` -- which coordinate
        source UBF consumed (every concrete mode
        :meth:`repro.core.config.DetectorConfig.resolved_localization`
        can return).
    """

    candidates: Set[int]
    boundary: Set[int]
    groups: List[List[int]]
    ubf_outcomes: List[UBFNodeOutcome] = field(repr=False, default_factory=list)
    localization_used: str = "true"

    @property
    def n_found(self) -> int:
        """Number of detected boundary nodes."""
        return len(self.boundary)

    def boundary_mask(self, n_nodes: int) -> np.ndarray:
        """Boolean detection mask over ``n_nodes`` node IDs.

        Raises
        ------
        ValueError
            When any boundary node ID falls outside ``[0, n_nodes)`` --
            the usual cause is passing the node count of a *different*
            network than the one this result was detected on.
        """
        mask = np.zeros(n_nodes, dtype=bool)
        if self.boundary:
            ids = sorted(self.boundary)
            if ids[0] < 0 or ids[-1] >= n_nodes:
                bad = ids[0] if ids[0] < 0 else ids[-1]
                raise ValueError(
                    f"boundary node id {bad} is outside [0, {n_nodes}); "
                    "boundary_mask(n_nodes) must be called with the node "
                    "count of the network this result was detected on"
                )
            mask[ids] = True
        return mask


class BoundaryDetector:
    """The paper's full localized boundary-detection pipeline.

    Usage::

        detector = BoundaryDetector()          # paper defaults
        result = detector.detect(network)      # perfect ranging
        # or, with a 30% distance measurement error:
        detector = BoundaryDetector(DetectorConfig(
            error_model=UniformAbsoluteError(0.3)))
        result = detector.detect(network, rng=np.random.default_rng(1))
    """

    def __init__(self, config: DetectorConfig = DetectorConfig()):
        self.config = config

    def detect(
        self,
        network: Network,
        *,
        measured: Optional[MeasuredDistances] = None,
        rng: Optional[np.random.Generator] = None,
        tracer=None,
    ) -> BoundaryDetectionResult:
        """Run localization, UBF, IFF, and grouping on ``network``.

        Parameters
        ----------
        network:
            The deployed network.
        measured:
            Pre-computed one-hop distance measurements.  When omitted and
            the config's localization resolves to ``"mds"`` or
            ``"trilateration"``, measurements are generated with the
            config's error model and ``rng``.  When supplied but the mode
            resolves to ``"true"``, the measurements are *ignored* (UBF
            runs on ground-truth coordinates); a warning is logged and a
            ``measured_ignored`` trace event recorded so the mismatched
            configuration is visible.
        rng:
            Randomness source for measurement generation (defaults to a
            fresh seed-0 generator for reproducibility).
        tracer:
            Optional :class:`repro.observability.Tracer`.  When given, the
            run emits a ``detect`` root span (config snapshot, RNG seed
            provenance) with nested ``localization``, ``ubf`` (per-shard),
            ``iff``, and ``grouping`` stage spans.
        """
        tracer = ensure_tracer(tracer)
        mode = self.config.resolved_localization()
        with tracer.span(
            "detect",
            localization=mode,
            n_nodes=network.graph.n_nodes,
            config=config_snapshot(self.config) if tracer.enabled else None,
            rng="provided" if rng is not None else "default_seed_0",
        ) as root:
            if mode == "true" and measured is not None:
                message = (
                    "detect() received measured distances but localization "
                    "resolved to 'true'; the measurements are ignored -- "
                    "set DetectorConfig(localization='mds') (or "
                    "'trilateration') to consume them"
                )
                logger.warning(message)
                tracer.event("measured_ignored", reason=message)
            engine = self.config.localization_config.engine
            with tracer.span("localization", mode=mode, engine=engine) as loc_span:
                generated = False
                if mode in ("mds", "trilateration") and measured is None:
                    if rng is None:
                        rng = np.random.default_rng(0)
                    measured = measure_distances(
                        network.graph, self.config.error_model, rng
                    )
                    generated = True
                loc_span.set("measurements_generated", generated)
                # Step (I) once for every node; the UBF stage below reuses
                # these frames instead of re-localizing per node.
                frame_list = run_frames_parallel(
                    network,
                    measured,
                    mode=mode,
                    hops=self.config.ubf.collection_hops,
                    engine=engine,
                    workers=self.config.workers,
                    tracer=tracer,
                )
                frames = {f.node: f for f in frame_list}
                if tracer.enabled:
                    loc_span.set_many(frame_span_counters(frame_list))

            outcomes = run_ubf_parallel(
                network,
                self.config.ubf,
                measured=measured,
                localization=mode,
                workers=self.config.workers,
                frames=frames,
                tracer=tracer,
            )
            candidates = candidates_from_outcomes(outcomes)
            boundary = run_iff(
                network.graph, candidates, self.config.iff, tracer=tracer
            )
            with tracer.span("grouping", n_boundary=len(boundary)) as grp_span:
                groups = group_boundary_nodes(network.graph, boundary)
                if tracer.enabled:
                    grp_span.set("n_groups", len(groups))
                    grp_span.set(
                        "group_sizes", [len(g) for g in groups[:32]]
                    )
            if tracer.enabled:
                root.set("n_candidates", len(candidates))
                root.set("n_boundary", len(boundary))
                root.set("n_groups", len(groups))
        return BoundaryDetectionResult(
            candidates=candidates,
            boundary=boundary,
            groups=groups,
            ubf_outcomes=outcomes,
            localization_used=mode,
        )


def detect_boundary(
    network: Network,
    config: DetectorConfig = DetectorConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    rng: Optional[np.random.Generator] = None,
    tracer=None,
) -> BoundaryDetectionResult:
    """Functional one-shot form of :class:`BoundaryDetector`."""
    return BoundaryDetector(config).detect(
        network, measured=measured, rng=rng, tracer=tracer
    )
