"""Unit Ball Fitting (UBF) -- Algorithm 1 of the paper.

Each node, using only its one-hop neighborhood in its own local coordinate
frame, enumerates the candidate balls of radius ``r = 1 + eps`` through
itself and every pair of neighbors (Eq. 1 yields zero, one or two centers
per pair) and declares itself a boundary node as soon as an *empty* ball is
found -- one with no neighborhood node strictly inside.  Lemma 1 proves the
pair enumeration is exhaustive; Theorem 1 bounds the per-node work at
``Theta(rho^2)`` balls times ``Theta(rho)`` point checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import UBFConfig
from repro.geometry.ballfit import (
    DEFAULT_CHUNK_SIZE,
    BallFitResult,
    empty_ball_exists,
    empty_ball_exists_batch,
)
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.network.localization import (
    LocalFrame,
    establish_local_frame,
    true_local_frame,
)
from repro.network.measurement import MeasuredDistances
from repro.observability.tracer import ensure_tracer


@dataclass
class UBFNodeOutcome:
    """Per-node UBF outcome with the observables Theorem 1 talks about.

    Attributes
    ----------
    node:
        Node ID.
    is_candidate:
        True when the node found an empty candidate ball (Phase-1 positive).
    balls_tested:
        Candidate balls examined before the search stopped.
    neighborhood_size:
        ``|N(node)| - 1``, the node's degree when the test ran.
    points_checked:
        Point probes performed across the tested balls (per-ball early
        exit); the Theta(rho^3) observable of Theorem 1.
    """

    node: int
    is_candidate: bool
    balls_tested: int
    neighborhood_size: int
    points_checked: int = 0


#: Nodes classified per :func:`repro.geometry.ballfit.empty_ball_exists_batch`
#: call when ``UBFConfig.kernel`` is batched/native.  Purely a memory bound
#: on the flattened candidate arrays (a few hundred MB at degree ~24);
#: results are per-node and independent of the slicing.
UBF_BATCH_NODES = 8192


def ubf_classify_frame(
    frame: LocalFrame,
    radius: float,
    *,
    find_first: bool = True,
    kernel: str = "vectorized",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> BallFitResult:
    """Run the UBF emptiness search inside one node's local frame.

    This is the node-level primitive: the frame contains everything the
    node knows (its own embedded position, its one-hop neighbors as pair
    candidates, and its full collection as the emptiness-check set), so the
    call is localized by construction.  ``kernel`` selects the naive oracle
    or the vectorized implementation; both yield identical results.
    """
    return empty_ball_exists(
        frame.origin_coordinates,
        frame.neighbor_coordinates,
        radius,
        check_points=frame.collection_coordinates,
        find_first=find_first,
        kernel=kernel,
        chunk_size=chunk_size,
    )


def run_ubf(
    network: Network,
    config: UBFConfig = UBFConfig(),
    *,
    measured: Optional[MeasuredDistances] = None,
    localization: str = "true",
    find_first: bool = True,
    nodes: Optional[Sequence[int]] = None,
    frames: Optional[Dict[int, LocalFrame]] = None,
    tracer=None,
) -> List[UBFNodeOutcome]:
    """Phase 1 over the whole network.

    Parameters
    ----------
    network:
        The deployed network.
    config:
        Ball radius parameters.
    measured:
        One-hop distance measurements; required when ``localization`` is
        ``"mds"`` or ``"trilateration"``.
    localization:
        ``"true"`` evaluates UBF on ground-truth coordinates (nodes know
        their positions); ``"mds"`` builds each node's frame from the
        measured distances first -- the paper's full pipeline;
        ``"trilateration"`` uses incremental multilateration instead of
        MDS (the alternative localization family the paper cites).
    find_first:
        Stop each node's search at its first empty ball (Algorithm 1's
        break).  Benches pass False to count the full candidate set.
    nodes:
        Node IDs to test; all nodes when None.  The shard driver in
        :mod:`repro.core.parallel` passes each worker's slice here, which
        is sound because every node's test reads only its own local frame.
    frames:
        Precomputed local frames keyed by node ID (e.g. from
        :func:`repro.core.parallel.run_frames_parallel`).  When given,
        the per-node frame construction is skipped entirely and
        ``measured``/``localization`` only label the run -- the pipeline
        computes frames once in its localization stage and reuses them
        here instead of rebuilding one per node.
    tracer:
        Optional :class:`repro.observability.Tracer`; when given, the run
        is wrapped in a ``ubf.run`` span carrying the Theorem-1 work
        counters.  The default no-op tracer adds no per-node work.

    Returns
    -------
    list of UBFNodeOutcome, ordered as ``nodes`` (node-ID order by default).
    """
    if localization not in ("true", "mds", "trilateration"):
        raise ValueError("localization must be 'true', 'mds', or 'trilateration'")
    if (
        localization in ("mds", "trilateration")
        and measured is None
        and frames is None
    ):
        raise ValueError(f"localization={localization!r} requires measured distances")

    tracer = ensure_tracer(tracer)
    graph = network.graph
    radius = config.radius
    hops = config.collection_hops
    node_ids = range(graph.n_nodes) if nodes is None else [int(n) for n in nodes]
    with tracer.span(
        "ubf.run", n_nodes=len(node_ids), localization=localization
    ) as span:
        outcomes = _run_ubf_nodes(
            network, config, node_ids,
            measured=measured, localization=localization, find_first=find_first,
            frames=frames,
        )
        if tracer.enabled:
            span.set_many(ubf_span_counters(outcomes))
    return outcomes


def _run_ubf_nodes(
    network: Network,
    config: UBFConfig,
    node_ids,
    *,
    measured: Optional[MeasuredDistances],
    localization: str,
    find_first: bool,
    frames: Optional[Dict[int, LocalFrame]] = None,
) -> List[UBFNodeOutcome]:
    """The untraced per-node classification loop behind :func:`run_ubf`."""
    graph = network.graph
    radius = config.radius
    hops = config.collection_hops

    def frame_of(node: int) -> LocalFrame:
        if frames is not None:
            return frames[node]
        if localization == "mds":
            return establish_local_frame(graph, measured, node, hops=hops)
        if localization == "trilateration":
            from repro.network.trilateration import trilateration_local_frame

            return trilateration_local_frame(graph, measured, node, hops=hops)
        return true_local_frame(graph, node, hops=hops)

    node_list = list(node_ids)
    if config.kernel in ("batched", "native"):
        return _run_ubf_nodes_batched(
            node_list, frame_of, radius, config, find_first
        )
    outcomes: List[UBFNodeOutcome] = []
    for node in node_list:
        frame = frame_of(node)
        fit = ubf_classify_frame(
            frame,
            radius,
            find_first=find_first,
            kernel=config.kernel,
            chunk_size=config.chunk_size,
        )
        outcomes.append(
            UBFNodeOutcome(
                node=node,
                is_candidate=fit.is_boundary,
                balls_tested=fit.balls_tested,
                neighborhood_size=len(frame.members) - 1,
                points_checked=fit.points_checked,
            )
        )
    return outcomes


def _run_ubf_nodes_batched(
    node_list: List[int],
    frame_of,
    radius: float,
    config: UBFConfig,
    find_first: bool,
) -> List[UBFNodeOutcome]:
    """Batched/native classification: whole node slices per kernel call.

    Frames are still built one node at a time (that is the localization
    stage's job), but the emptiness search runs network-wide through
    :func:`repro.geometry.ballfit.empty_ball_exists_batch` in slices of
    :data:`UBF_BATCH_NODES`, eliminating the per-node dispatch of the
    vectorized kernel.  Outcome order and observables are identical to the
    per-node loop.
    """
    outcomes: List[UBFNodeOutcome] = []
    for s in range(0, len(node_list), UBF_BATCH_NODES):
        chunk = node_list[s : s + UBF_BATCH_NODES]
        batch_frames = [frame_of(node) for node in chunk]
        fits = empty_ball_exists_batch(
            np.stack([f.origin_coordinates for f in batch_frames])
            if batch_frames
            else np.empty((0, 3)),
            [f.neighbor_coordinates for f in batch_frames],
            radius,
            check_sets=[f.collection_coordinates for f in batch_frames],
            find_first=find_first,
            kernel=config.kernel,
            chunk_size=config.chunk_size,
        )
        for node, frame, fit in zip(chunk, batch_frames, fits):
            outcomes.append(
                UBFNodeOutcome(
                    node=node,
                    is_candidate=fit.is_boundary,
                    balls_tested=fit.balls_tested,
                    neighborhood_size=len(frame.members) - 1,
                    points_checked=fit.points_checked,
                )
            )
    return outcomes


def candidates_from_outcomes(outcomes: List[UBFNodeOutcome]) -> set:
    """Set of UBF-positive node IDs."""
    return {o.node for o in outcomes if o.is_candidate}


def ubf_span_counters(outcomes: List[UBFNodeOutcome]) -> Dict[str, int]:
    """Deterministic span counters summarizing a batch of UBF outcomes.

    Shared by :func:`run_ubf`'s ``ubf.run`` span and the per-shard spans of
    :mod:`repro.core.parallel` -- the values depend only on the outcomes,
    never on sharding or timing.
    """
    return {
        "n_candidates": sum(1 for o in outcomes if o.is_candidate),
        "balls_tested": sum(o.balls_tested for o in outcomes),
        "points_checked": sum(o.points_checked for o in outcomes),
    }


def balls_tested_profile(outcomes: List[UBFNodeOutcome]) -> Dict[str, float]:
    """Aggregate ball-testing statistics (Theorem 1 observables)."""
    tested = np.array([o.balls_tested for o in outcomes], dtype=float)
    checked = np.array([o.points_checked for o in outcomes], dtype=float)
    degrees = np.array([o.neighborhood_size for o in outcomes], dtype=float)
    return {
        "mean_balls_tested": float(tested.mean()) if tested.size else 0.0,
        "max_balls_tested": float(tested.max()) if tested.size else 0.0,
        "mean_points_checked": float(checked.mean()) if checked.size else 0.0,
        "max_points_checked": float(checked.max()) if checked.size else 0.0,
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
    }
