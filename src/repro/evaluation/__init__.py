"""Evaluation harness: the metrics and experiment drivers behind Sec. IV.

* :mod:`repro.evaluation.metrics` -- found/correct/mistaken/missing
  statistics and the hop-distance distributions of Figs. 1(g-i)/11(a-c).
* :mod:`repro.evaluation.mesh_metrics` -- topological and geometric mesh
  quality (manifoldness, Euler characteristic, deviation from the true
  surface) behind Figs. 1(f)/1(j-l) and 6-10.
* :mod:`repro.evaluation.experiments` -- the experiment drivers each bench
  calls: error sweeps, the scenario suite, and the ablations.
* :mod:`repro.evaluation.campaign` -- declarative campaign specs, their
  cell cross-product, pure cell executors, and table aggregation; the
  runner lives in :mod:`repro.service.campaign` (see docs/CAMPAIGNS.md).
* :mod:`repro.evaluation.seeding` -- identity-derived RNG substreams that
  make every sweep cell a pure function of its own identity.
* :mod:`repro.evaluation.reporting` -- ASCII tables in the shape of the
  paper's figures.
* :mod:`repro.evaluation.robustness` -- degradation sweeps under injected
  channel faults (message loss, crashes), with and without the reliable
  ack/retransmit wrapper; see ``docs/ROBUSTNESS.md``.
* :mod:`repro.evaluation.bench` -- ``repro-bench``: stage wall-time +
  Theorem-1 counter benchmarking with ``BENCH_<stage>.json`` artifacts and
  a baseline regression gate; see ``docs/PERFORMANCE.md``.
"""

from repro.evaluation.bench import (
    BENCH_SCENARIOS,
    check_regression,
    render_bench_table,
    run_bench,
    write_artifacts,
)
from repro.evaluation.metrics import (
    DetectionStats,
    evaluate_detection,
    hop_distribution,
    mistaken_hop_distribution,
    missing_hop_distribution,
)
from repro.evaluation.campaign import (
    CampaignCell,
    CampaignSpec,
    execute_cell,
    expand,
    load_spec,
    render_campaign_tables,
)
from repro.evaluation.mesh_metrics import MeshQuality, evaluate_mesh
from repro.evaluation.seeding import (
    cell_rng,
    cell_substream,
    error_cell_identity,
    fault_cell_identity,
)
from repro.evaluation.experiments import (
    ErrorSweepPoint,
    MeshErrorPoint,
    ScenarioResult,
    run_aggregate_sweep,
    run_ball_radius_ablation,
    run_collection_hops_ablation,
    run_error_cell,
    run_error_sweep,
    run_iff_ablation,
    run_landmark_k_ablation,
    run_mesh_error_sweep,
    run_scenario,
    run_ubf_complexity,
)
from repro.evaluation.reporting import format_table
from repro.evaluation.robustness import (
    RobustnessPoint,
    precision_recall_f1,
    render_robustness_table,
    run_fault_cell,
    run_robustness_sweep,
    run_scenario_robustness,
)

__all__ = [
    "BENCH_SCENARIOS",
    "check_regression",
    "render_bench_table",
    "run_bench",
    "write_artifacts",
    "CampaignCell",
    "CampaignSpec",
    "execute_cell",
    "expand",
    "load_spec",
    "render_campaign_tables",
    "cell_rng",
    "cell_substream",
    "error_cell_identity",
    "fault_cell_identity",
    "RobustnessPoint",
    "precision_recall_f1",
    "render_robustness_table",
    "run_fault_cell",
    "run_robustness_sweep",
    "run_scenario_robustness",
    "run_error_cell",
    "DetectionStats",
    "evaluate_detection",
    "hop_distribution",
    "mistaken_hop_distribution",
    "missing_hop_distribution",
    "MeshQuality",
    "evaluate_mesh",
    "ErrorSweepPoint",
    "MeshErrorPoint",
    "ScenarioResult",
    "run_error_sweep",
    "run_aggregate_sweep",
    "run_mesh_error_sweep",
    "run_scenario",
    "run_ubf_complexity",
    "run_ball_radius_ablation",
    "run_iff_ablation",
    "run_landmark_k_ablation",
    "run_collection_hops_ablation",
    "format_table",
]
