"""``repro-bench``: stage benchmarking with a perf-regression gate.

The repo's north star says every PR makes a hot path measurably faster --
which is only enforceable with a recorded performance trajectory.  This
module produces that record: it times the pipeline stages (measured-mode
MDS localization, UBF candidacy, IFF, grouping, mesh construction) on
pinned seeded scenarios, captures the work counters alongside the wall
times, writes one
``BENCH_<stage>.json`` artifact per stage, and compares a fresh run against
a committed baseline.

Two kinds of observables with two kinds of tolerance:

* **Counters** (candidate balls tested, point probes, candidate/boundary
  set sizes, mesh sizes) are deterministic on a pinned scenario and are
  compared tightly -- they catch *algorithmic* regressions (more work per
  node, lost early exits) on any hardware, with no timing flakiness.
* **Wall times** vary across machines, so the absolute check uses a wide
  multiplicative band; the portable speed gates are *relative* speedups
  measured locally in one process -- the vectorized UBF kernel over the
  in-repo naive oracle, and the batched localization engine over the
  per-node oracle.

Artifacts are plain JSON (schema below) so trend tooling can diff them
across commits::

    {
      "format_version": 1,
      "stage": "ubf",
      "scenario": "ubf_2k",
      "n_nodes": 2000, "mean_degree": ...,
      "repeat": 5, "median_seconds": ..., "timings": [...],
      "counters": {...},                  # stage-specific, deterministic
      "naive_seconds": ..., "speedup_vs_naive": ...,      # ubf stage only
      "pernode_seconds": ..., "speedup_vs_pernode": ...   # localization only
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import IFFConfig, UBFConfig
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import run_iff
from repro.core.ubf import candidates_from_outcomes, ubf_classify_frame
from repro.geometry.ballfit import (
    empty_ball_exists_batch,
    empty_ball_exists_batch_arrays,
)
from repro.geometry.mds import SMACOF_BATCH_COORD_TOL
from repro.geometry.native import load_kernels
from repro.network.generator import DeploymentConfig, generate_network
from repro.network.localization import (
    _collect_frame_metas,
    build_frames,
    true_local_frame,
)
from repro.network.measurement import UniformAbsoluteError, measure_distances
from repro.observability.export import write_atomic
from repro.observability.tracer import ensure_tracer
from repro.shapes.library import scenario_by_name
from repro.surface.pipeline import SurfaceBuilder, SurfaceConfig

FORMAT_VERSION = 1

#: Stages `repro-bench` times by default, in pipeline order.  The ``e2e``
#: stage (one full generate -> UBF -> IFF -> grouping pass, built for the
#: 100k-node scale check) is opt-in via ``--stages e2e``.
STAGES = ("localization", "ubf", "iff", "grouping", "mesh")

#: Every stage name `repro-bench` accepts, renderable order.
ALL_STAGES = STAGES + ("e2e",)

#: UBF kernel the bench times by default: the network-batched kernel is
#: the production hot path.  The numpy waves (not the native C scan) keep
#: the committed wall-time baselines meaningful on runners without a C
#: compiler; ``--ubf-kernel native`` opts in to the C path.
DEFAULT_BENCH_KERNEL = "batched"

#: Node-slice size of the e2e stage's UBF pass; memory bound only (the
#: flattened candidate arrays of a slice stay a few hundred MB at the
#: pinned degree), never observable in results.
E2E_UBF_SLICE = 25_000

#: Default multiplicative slack for absolute wall-time comparisons; wide on
#: purpose -- cross-machine variance is absorbed here, while counters and
#: the naive-relative speedup carry the strict checks.
DEFAULT_TIME_FACTOR = 3.0

#: Relative tolerance for deterministic counters.  Non-zero only to absorb
#: float-ordering differences across numpy builds.
DEFAULT_COUNTER_RTOL = 0.02

#: Required vectorized-over-naive UBF kernel speedup (the PR acceptance
#: criterion is 2x; the committed baseline is far above it).
DEFAULT_MIN_SPEEDUP = 2.0

#: Required engine-over-pernode localization speedup, measured on the
#: pinned oracle sample (the PR 5 acceptance criterion, kept on the
#: sampled set).
DEFAULT_MIN_ENGINE_SPEEDUP = 3.0

#: Multiplicative slack for the per-stage peak-RSS gate.  Wide like the
#: wall-time band: allocator and platform noise land here, while a stage
#: that starts materializing quadratically more memory still trips it.
DEFAULT_RSS_FACTOR = 2.0

#: Engine the localization bench times by default.  The pernode oracle
#: side of the gate is engine-independent.
DEFAULT_LOCALIZATION_ENGINE = "sparse"

#: Target size of the pinned pernode-oracle node sample.  The full oracle
#: re-run used to dominate the bench (~4x the timed engine at 2k); the
#: sampled oracle keeps the >=3x gate and the engine-contract check on a
#: deterministic subset instead, with ``--oracle`` opting back into the
#: full sweep.
BENCH_ORACLE_SAMPLE = 64

#: Measurement noise of the localization bench: the paper's measured-mode
#: setting (30% of the radio range, uniform absolute error).
BENCH_MEASUREMENT_ERROR = 0.3


@dataclass(frozen=True)
class BenchScenario:
    """A pinned deployment the benches run on (fixed shape, sizes, seed)."""

    name: str
    shape: str
    n_surface: int
    n_interior: int
    target_degree: float
    seed: int

    def deployment(self) -> DeploymentConfig:
        return DeploymentConfig(
            n_surface=self.n_surface,
            n_interior=self.n_interior,
            target_degree=self.target_degree,
            seed=self.seed,
        )


#: The pinned benchmark scenarios.  ``ubf_2k`` is the 2000-node sphere the
#: kernel-speedup acceptance criterion is measured on; ``loc_20k`` is the
#: 20000-node localization-scale scenario (run with the localization stage
#: only -- context frames are skipped when no other stage needs them);
#: ``small`` exists for quick local smoke runs.
BENCH_SCENARIOS: Dict[str, BenchScenario] = {
    "ubf_2k": BenchScenario(
        name="ubf_2k",
        shape="sphere",
        n_surface=800,
        n_interior=1200,
        target_degree=24.0,
        seed=11,
    ),
    "loc_20k": BenchScenario(
        name="loc_20k",
        shape="sphere",
        n_surface=6000,
        n_interior=14000,
        target_degree=24.0,
        seed=11,
    ),
    "small": BenchScenario(
        name="small",
        shape="sphere",
        n_surface=200,
        n_interior=300,
        target_degree=16.0,
        seed=11,
    ),
    "e2e_100k": BenchScenario(
        name="e2e_100k",
        shape="sphere",
        n_surface=30000,
        n_interior=70000,
        target_degree=24.0,
        seed=11,
    ),
}

DEFAULT_SCENARIO = "ubf_2k"


def _median_time(
    fn: Callable[[], object], repeat: int, *, warmup: bool = True
) -> Tuple[float, List[float], object]:
    """Median-of-``repeat`` wall time of ``fn`` plus its last return value.

    One untimed warm-up call precedes the timed repeats by default, so
    one-time costs (lazy imports, native-kernel compile/load, allocator
    growth) never land in ``median_seconds`` -- the artifact measures
    steady state.  Oracle sides and minutes-scale stages opt out with
    ``warmup=False``.
    """
    if warmup:
        fn()
    timings: List[float] = []
    result: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings)), timings, result


@dataclass
class BenchContext:
    """Shared artifacts all stage benches reuse (built once per run)."""

    scenario: BenchScenario
    network: object
    frames: List[object]
    ubf_config: UBFConfig
    iff_config: IFFConfig


def build_context(
    scenario: BenchScenario,
    ubf_config: Optional[UBFConfig] = None,
    *,
    with_frames: bool = True,
) -> BenchContext:
    """Generate the pinned network and per-node frames for a bench run.

    ``with_frames=False`` skips the per-node ground-truth frames (a Python
    loop over every node) -- the localization bench never reads them, and
    at ``loc_20k`` scale building them would dwarf the stage being timed.
    """
    cfg = ubf_config if ubf_config is not None else UBFConfig()
    network = generate_network(
        scenario_by_name(scenario.shape),
        scenario.deployment(),
        scenario=scenario.shape,
    )
    graph = network.graph
    frames = (
        [
            true_local_frame(graph, node, hops=cfg.collection_hops)
            for node in range(graph.n_nodes)
        ]
        if with_frames
        else []
    )
    return BenchContext(
        scenario=scenario,
        network=network,
        frames=frames,
        ubf_config=cfg,
        iff_config=IFFConfig(),
    )


def _classify_all(ctx: BenchContext, kernel: str) -> List[object]:
    cfg = ctx.ubf_config
    if kernel in ("batched", "native"):
        frames = ctx.frames
        return empty_ball_exists_batch(
            np.stack([f.origin_coordinates for f in frames])
            if frames
            else np.empty((0, 3)),
            [f.neighbor_coordinates for f in frames],
            cfg.radius,
            check_sets=[f.collection_coordinates for f in frames],
            find_first=True,
            kernel=kernel,
            chunk_size=cfg.chunk_size,
        )
    return [
        ubf_classify_frame(
            frame,
            cfg.radius,
            find_first=True,
            kernel=kernel,
            chunk_size=cfg.chunk_size,
        )
        for frame in ctx.frames
    ]


def bench_ubf(
    ctx: BenchContext,
    repeat: int,
    *,
    time_naive: bool = True,
    kernel: str = DEFAULT_BENCH_KERNEL,
) -> dict:
    """Time the UBF emptiness kernel over all node frames.

    Frame construction is excluded -- it is shared by every kernel and by
    every localization mode; what is timed is exactly the per-node
    candidate-enumeration + emptiness-check work Theorem 1 bounds.
    ``kernel`` selects the timed implementation (the batched network-wide
    kernel by default); the naive oracle side of the ``speedup_vs_naive``
    gate is kernel-independent.
    """
    median, timings, fits = _median_time(lambda: _classify_all(ctx, kernel), repeat)
    balls = np.array([f.balls_tested for f in fits], dtype=float)
    checks = np.array([f.points_checked for f in fits], dtype=float)
    degrees = ctx.network.graph.degrees()
    mean_degree = float(degrees.mean())
    counters = {
        "n_candidates": int(sum(1 for f in fits if f.is_boundary)),
        "total_balls_tested": float(balls.sum()),
        "mean_balls_tested": float(balls.mean()),
        "max_balls_tested": float(balls.max()),
        "total_points_checked": float(checks.sum()),
        "mean_points_checked": float(checks.mean()),
        # Theorem-1 curve constants: balls ~ rho^2, checks bounded by rho^3.
        "balls_per_degree_sq": float(balls.mean() / mean_degree**2),
        "checks_per_degree_cubed": float(checks.mean() / mean_degree**3),
    }
    doc = _artifact("ubf", ctx, repeat, median, timings, counters)
    doc["kernel"] = kernel
    doc["native_available"] = load_kernels() is not None
    doc["chunk_size"] = ctx.ubf_config.chunk_size
    if time_naive:
        naive_seconds, _, naive_fits = _median_time(
            lambda: _classify_all(ctx, "naive"), 1, warmup=False
        )
        doc["naive_seconds"] = naive_seconds
        doc["speedup_vs_naive"] = naive_seconds / median if median > 0 else float("inf")
        doc["kernels_agree"] = all(
            a.is_boundary == b.is_boundary
            and a.balls_tested == b.balls_tested
            and a.points_checked == b.points_checked
            and a.witness_pair == b.witness_pair
            for a, b in zip(fits, naive_fits)
        )
    return doc


def oracle_sample_nodes(n_nodes: int, sample: int = BENCH_ORACLE_SAMPLE) -> List[int]:
    """The pinned, evenly spaced node subset the pernode oracle runs on.

    Deterministic in the node count alone (no RNG): every
    ``ceil(n / sample)``-th node, so the subset spans the whole deployment
    -- surface-sampled nodes first, interior cloud after -- instead of
    clustering at either end.
    """
    if n_nodes <= sample:
        return list(range(n_nodes))
    step = -(-n_nodes // sample)  # ceil division
    return list(range(0, n_nodes, step))


def _frames_agree(engine_frames, oracle_frames) -> bool:
    """The documented engine contract, frame by frame."""
    return all(
        a.members == b.members
        and a.n_one_hop == b.n_one_hop
        and a.smacof_iterations == b.smacof_iterations
        and float(np.abs(a.coordinates - b.coordinates).max())
        <= SMACOF_BATCH_COORD_TOL
        for a, b in zip(engine_frames, oracle_frames)
    )


def bench_localization(
    ctx: BenchContext,
    repeat: int,
    *,
    time_pernode: bool = True,
    engine: str = DEFAULT_LOCALIZATION_ENGINE,
    full_oracle: bool = False,
) -> dict:
    """Time measured-mode MDS frame construction (step I) over all nodes.

    Measurements use the paper's measured-mode setting (uniform absolute
    error of :data:`BENCH_MEASUREMENT_ERROR`) seeded by the pinned
    scenario, so counters are deterministic.  The timed path is ``engine``
    (default :data:`DEFAULT_LOCALIZATION_ENGINE`); the ``pernode`` oracle
    side of the gate runs once over the pinned
    :func:`oracle_sample_nodes` subset (every frame is per-node
    independent, so the sampled frames are bit-identical to a full
    sweep's).  ``speedup_vs_pernode`` compares the oracle against the
    timed engine *on the same subset*, preserving the >=3x gate semantics,
    and ``engines_agree`` verifies the engine contract there (exact
    members, one-hop counts, and SMACOF iteration counts, coordinates
    within :data:`repro.geometry.mds.SMACOF_BATCH_COORD_TOL`).
    ``full_oracle=True`` opts back into the whole-network oracle sweep.
    """
    graph = ctx.network.graph
    measured = measure_distances(
        graph,
        UniformAbsoluteError(BENCH_MEASUREMENT_ERROR),
        np.random.default_rng(ctx.scenario.seed),
    )
    hops = ctx.ubf_config.collection_hops
    median, timings, frames = _median_time(
        lambda: build_frames(graph, measured, hops=hops, engine=engine), repeat
    )
    sizes = np.array([len(f.members) for f in frames], dtype=float)
    counters = {
        "n_frames": len(frames),
        "total_members": float(sizes.sum()),
        "mean_frame_size": float(sizes.mean()),
        "max_frame_size": float(sizes.max()),
        "total_smacof_iterations": float(
            sum(f.smacof_iterations for f in frames)
        ),
    }
    doc = _artifact("localization", ctx, repeat, median, timings, counters)
    doc["engine"] = engine
    doc["measurement_error"] = BENCH_MEASUREMENT_ERROR
    if time_pernode:
        if full_oracle:
            nodes = list(range(graph.n_nodes))
            engine_sample = frames
            engine_sample_seconds = median
        else:
            nodes = oracle_sample_nodes(graph.n_nodes)
            engine_sample_seconds, _, engine_sample = _median_time(
                lambda: build_frames(
                    graph, measured, hops=hops, engine=engine, nodes=nodes
                ),
                1,
                warmup=False,
            )
        pernode_seconds, _, oracle = _median_time(
            lambda: build_frames(
                graph, measured, hops=hops, engine="pernode", nodes=nodes
            ),
            1,
            warmup=False,
        )
        doc["oracle"] = "full" if full_oracle else "sampled"
        doc["oracle_nodes"] = len(nodes)
        doc["pernode_seconds"] = pernode_seconds
        doc["speedup_vs_pernode"] = (
            pernode_seconds / engine_sample_seconds
            if engine_sample_seconds > 0
            else float("inf")
        )
        doc["engines_agree"] = _frames_agree(engine_sample, oracle)
    return doc


def bench_iff(ctx: BenchContext, repeat: int) -> dict:
    """Time Isolated Fragment Filtering on the UBF candidate set."""
    fits = _classify_all(ctx, DEFAULT_BENCH_KERNEL)
    candidates = {i for i, f in enumerate(fits) if f.is_boundary}
    graph = ctx.network.graph
    median, timings, boundary = _median_time(
        lambda: run_iff(graph, candidates, ctx.iff_config), repeat
    )
    counters = {
        "n_candidates": len(candidates),
        "n_boundary": len(boundary),
        "n_filtered": len(candidates) - len(boundary),
    }
    return _artifact("iff", ctx, repeat, median, timings, counters)


def bench_grouping(ctx: BenchContext, repeat: int) -> dict:
    """Time boundary grouping on the IFF-filtered boundary set."""
    fits = _classify_all(ctx, DEFAULT_BENCH_KERNEL)
    candidates = {i for i, f in enumerate(fits) if f.is_boundary}
    graph = ctx.network.graph
    boundary = run_iff(graph, candidates, ctx.iff_config)
    median, timings, groups = _median_time(
        lambda: group_boundary_nodes(graph, boundary), repeat
    )
    counters = {
        "n_boundary": len(boundary),
        "n_groups": len(groups),
        "largest_group": max((len(g) for g in groups), default=0),
    }
    return _artifact("grouping", ctx, repeat, median, timings, counters)


def bench_mesh(ctx: BenchContext, repeat: int) -> dict:
    """Time triangular boundary-surface construction on the groups."""
    fits = _classify_all(ctx, DEFAULT_BENCH_KERNEL)
    candidates = {i for i, f in enumerate(fits) if f.is_boundary}
    graph = ctx.network.graph
    boundary = run_iff(graph, candidates, ctx.iff_config)
    groups = group_boundary_nodes(graph, boundary)
    builder = SurfaceBuilder(SurfaceConfig())
    median, timings, meshes = _median_time(
        lambda: builder.build(graph, groups), repeat
    )
    counters = {
        "n_meshes": len(meshes),
        "total_vertices": sum(len(m.vertices) for m in meshes),
        "total_edges": sum(len(m.edges) for m in meshes),
        "total_triangles": sum(len(m.triangles()) for m in meshes),
    }
    return _artifact("mesh", ctx, repeat, median, timings, counters)


def _ubf_candidates_scale(
    network,
    ubf_config: UBFConfig,
    *,
    kernel: str = DEFAULT_BENCH_KERNEL,
    slice_size: int = E2E_UBF_SLICE,
) -> Tuple[set, int, int]:
    """UBF candidacy for every node via the array-native batch path.

    Builds each slice's true-coordinate frames as flat arrays straight
    from the batch BFS sweep (no per-node ``LocalFrame`` objects -- at
    100k nodes the Python assembly would dwarf the kernel) and feeds them
    to :func:`repro.geometry.ballfit.empty_ball_exists_batch_arrays`.
    Verdicts and counters are identical to :func:`repro.core.ubf.run_ubf`
    with true localization -- the member order of the flat frames is
    exactly ``_frame_members``'s.

    Returns ``(candidates, total_balls_tested, total_points_checked)``.
    """
    graph = network.graph
    positions = graph.positions
    n = graph.n_nodes
    hops = ubf_config.collection_hops
    candidates: set = set()
    total_balls = 0
    total_checked = 0
    for s0 in range(0, n, slice_size):
        ids = list(range(s0, min(s0 + slice_size, n)))
        metas = _collect_frame_metas(graph, ids, hops)
        k = len(ids)
        sizes = np.fromiter((m[1].size for m in metas), dtype=np.int64, count=k)
        probe_ptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(sizes, out=probe_ptr[1:])
        members_flat = np.concatenate([m[1] for m in metas])
        probe_flat = positions[members_flat]
        n_one = np.fromiter((m[2] for m in metas), dtype=np.int64, count=k)
        # Neighbor rows are each probe segment's rows 1 .. n_one (the node
        # itself occupies row 0, the farther collection follows).
        seg = np.repeat(np.arange(k, dtype=np.int64), sizes)
        off = np.arange(members_flat.size, dtype=np.int64) - np.repeat(
            probe_ptr[:-1], sizes
        )
        nbr_mask = (off >= 1) & (off <= n_one[seg])
        nbr_ptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(n_one, out=nbr_ptr[1:])
        fits = empty_ball_exists_batch_arrays(
            positions[np.asarray(ids, dtype=np.int64)],
            probe_flat[nbr_mask],
            nbr_ptr,
            probe_flat,
            probe_ptr,
            ubf_config.radius,
            find_first=True,
            kernel=kernel,
            chunk_size=ubf_config.chunk_size,
        )
        for i, fit in enumerate(fits):
            total_balls += fit.balls_tested
            total_checked += fit.points_checked
            if fit.is_boundary:
                candidates.add(s0 + i)
    return candidates, total_balls, total_checked


def bench_e2e(
    ctx: BenchContext, repeat: int, *, kernel: str = DEFAULT_BENCH_KERNEL
) -> dict:
    """Time one full generate -> UBF -> IFF -> grouping pass.

    The 100k-scale check behind ROADMAP item 3: everything -- deployment
    generation included -- runs inside the timed function, so the artifact
    pins the wall time and peak RSS of the whole pipeline at scale, not of
    one stage.  No warm-up run (the stage is minutes-scale at 100k; the
    native-kernel load is already warmed by :func:`run_bench`).
    """
    scenario = ctx.scenario
    cfg = ctx.ubf_config

    def run() -> dict:
        network = generate_network(
            scenario_by_name(scenario.shape),
            scenario.deployment(),
            scenario=scenario.shape,
        )
        graph = network.graph
        candidates, total_balls, total_checked = _ubf_candidates_scale(
            network, cfg, kernel=kernel
        )
        boundary = run_iff(graph, candidates, ctx.iff_config)
        groups = group_boundary_nodes(graph, boundary)
        return {
            "n_candidates": len(candidates),
            "total_balls_tested": float(total_balls),
            "total_points_checked": float(total_checked),
            "n_boundary": len(boundary),
            "n_groups": len(groups),
            "largest_group": max((len(g) for g in groups), default=0),
        }

    median, timings, counters = _median_time(run, repeat, warmup=False)
    doc = _artifact("e2e", ctx, repeat, median, timings, counters)
    doc["kernel"] = kernel
    doc["native_available"] = load_kernels() is not None
    doc["chunk_size"] = cfg.chunk_size
    return doc


def _artifact(
    stage: str,
    ctx: BenchContext,
    repeat: int,
    median: float,
    timings: List[float],
    counters: Dict[str, float],
) -> dict:
    graph = ctx.network.graph
    return {
        "format_version": FORMAT_VERSION,
        "stage": stage,
        "scenario": ctx.scenario.name,
        "n_nodes": graph.n_nodes,
        "mean_degree": float(graph.degrees().mean()),
        "repeat": repeat,
        "median_seconds": median,
        "timings": timings,
        "counters": counters,
    }


_STAGE_RUNNERS: Dict[str, Callable[..., dict]] = {
    "localization": bench_localization,
    "ubf": bench_ubf,
    "iff": bench_iff,
    "grouping": bench_grouping,
    "mesh": bench_mesh,
    "e2e": bench_e2e,
}


def run_bench(
    stages: Sequence[str] = STAGES,
    *,
    scenario_id: str = DEFAULT_SCENARIO,
    repeat: int = 5,
    time_naive: bool = True,
    engine: str = DEFAULT_LOCALIZATION_ENGINE,
    full_oracle: bool = False,
    ubf_kernel: str = DEFAULT_BENCH_KERNEL,
    tracer=None,
    registry=None,
) -> Dict[str, dict]:
    """Run the requested stage benches on one pinned scenario.

    ``tracer`` (optional :class:`repro.observability.Tracer`) wraps the
    run in a ``bench`` span with one ``bench.<stage>`` child per stage,
    each carrying the stage's median wall time and deterministic counters
    -- the traced twin of the ``BENCH_<stage>.json`` artifacts.
    ``time_naive`` toggles the slow oracle sides of the relative speed
    gates (the naive UBF kernel and the pernode localization engine);
    ``engine``/``full_oracle`` parameterize the localization stage.

    Each stage also records the process peak RSS after it finishes into
    ``registry`` (a :class:`repro.observability.metrics.MetricsRegistry`,
    created on demand) under ``rss.bench.<stage>.peak_bytes``, and copies
    the value into the stage artifact as ``peak_rss_bytes`` -- a
    high-water mark "up to and including this stage", since ``ru_maxrss``
    never decreases within a process.
    """
    from repro.observability.metrics import MetricsRegistry, record_peak_rss

    unknown = [s for s in stages if s not in _STAGE_RUNNERS]
    if unknown:
        raise ValueError(f"unknown stages {unknown}; known: {list(_STAGE_RUNNERS)}")
    if scenario_id not in BENCH_SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario_id!r}; known: {sorted(BENCH_SCENARIOS)}"
        )
    if registry is None:
        registry = MetricsRegistry()
    # The localization bench never reads the ground-truth context frames,
    # and the e2e stage builds its own flat-array frames inside the timed
    # run; skip the per-node loop that builds them when no other stage
    # runs (at e2e_100k scale it would dwarf everything).
    with_frames = any(stage not in ("localization", "e2e") for stage in stages)
    # Warm the native-kernel cache before any timing: the first load pays
    # a one-time compile (or a failed compiler probe), which must never
    # land inside a timed repeat.
    load_kernels()
    tracer = ensure_tracer(tracer)
    with tracer.span("bench", scenario=scenario_id, repeat=repeat) as root:
        with tracer.span("bench.context") as ctx_span:
            ctx = build_context(
                BENCH_SCENARIOS[scenario_id], with_frames=with_frames
            )
            ctx_span.set("n_nodes", ctx.network.graph.n_nodes)
        results: Dict[str, dict] = {}
        for stage in stages:
            with tracer.span(f"bench.{stage}") as stage_span:
                if stage == "ubf":
                    doc = bench_ubf(
                        ctx, repeat, time_naive=time_naive, kernel=ubf_kernel
                    )
                elif stage == "e2e":
                    doc = bench_e2e(ctx, repeat, kernel=ubf_kernel)
                elif stage == "localization":
                    doc = bench_localization(
                        ctx,
                        repeat,
                        time_pernode=time_naive,
                        engine=engine,
                        full_oracle=full_oracle,
                    )
                else:
                    doc = _STAGE_RUNNERS[stage](ctx, repeat)
                peak = record_peak_rss(registry, f"bench.{stage}")
                if peak is not None:
                    doc["peak_rss_bytes"] = peak
                results[stage] = doc
                if tracer.enabled:
                    stage_span.set("median_seconds", doc["median_seconds"])
                    stage_span.set("counters", doc["counters"])
                    if "speedup_vs_naive" in doc:
                        stage_span.set("speedup_vs_naive", doc["speedup_vs_naive"])
                    if "speedup_vs_pernode" in doc:
                        stage_span.set(
                            "speedup_vs_pernode", doc["speedup_vs_pernode"]
                        )
        if tracer.enabled:
            root.set("stages", list(results))
    return results


def artifact_path(directory, stage: str, scenario: str = DEFAULT_SCENARIO) -> Path:
    """Canonical bench-artifact location inside ``directory``.

    The default scenario keeps the historical ``BENCH_<stage>.json`` name
    (committed baselines, trend tooling); any other scenario is qualified
    as ``BENCH_<stage>_<scenario>.json`` so runs at several scales can
    coexist in one directory.
    """
    suffix = "" if scenario == DEFAULT_SCENARIO else f"_{scenario}"
    return Path(directory) / f"BENCH_{stage}{suffix}.json"


def write_artifacts(results: Dict[str, dict], out_dir) -> List[Path]:
    """Write one bench artifact per stage; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for stage, doc in results.items():
        path = artifact_path(out, stage, doc.get("scenario", DEFAULT_SCENARIO))
        write_atomic(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def load_artifact(path) -> dict:
    """Read one ``BENCH_<stage>.json`` document."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bench artifact version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return doc


def compare_artifact(
    current: dict,
    baseline: dict,
    *,
    time_factor: float = DEFAULT_TIME_FACTOR,
    counter_rtol: float = DEFAULT_COUNTER_RTOL,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    min_engine_speedup: float = DEFAULT_MIN_ENGINE_SPEEDUP,
    rss_factor: float = DEFAULT_RSS_FACTOR,
) -> List[str]:
    """Regression findings for one stage (empty list when clean)."""
    issues: List[str] = []
    stage = current.get("stage", "?")
    if current.get("scenario") != baseline.get("scenario"):
        issues.append(
            f"{stage}: scenario mismatch "
            f"({current.get('scenario')!r} vs baseline {baseline.get('scenario')!r})"
        )
        return issues

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for key, base_value in base_counters.items():
        if key not in cur_counters:
            issues.append(f"{stage}: counter {key!r} missing from current run")
            continue
        cur_value = float(cur_counters[key])
        base_value = float(base_value)
        scale = max(abs(base_value), 1.0)
        if abs(cur_value - base_value) > counter_rtol * scale:
            issues.append(
                f"{stage}: counter {key} drifted: {cur_value:.6g} "
                f"vs baseline {base_value:.6g} (rtol {counter_rtol})"
            )

    base_time = float(baseline.get("median_seconds", 0.0))
    cur_time = float(current.get("median_seconds", 0.0))
    if base_time > 0 and cur_time > base_time * time_factor:
        issues.append(
            f"{stage}: median wall time regressed: {cur_time:.4f}s vs "
            f"baseline {base_time:.4f}s (allowed factor {time_factor})"
        )

    if "speedup_vs_naive" in baseline:
        cur_speedup = float(current.get("speedup_vs_naive", 0.0))
        if cur_speedup < min_speedup:
            issues.append(
                f"{stage}: vectorized kernel speedup over naive oracle is "
                f"{cur_speedup:.2f}x, below the required {min_speedup}x"
            )
        if current.get("kernels_agree") is False:
            issues.append(f"{stage}: kernels disagree on the bench scenario")

    if "speedup_vs_pernode" in baseline:
        cur_speedup = float(current.get("speedup_vs_pernode", 0.0))
        if cur_speedup < min_engine_speedup:
            issues.append(
                f"{stage}: localization engine speedup over pernode oracle is "
                f"{cur_speedup:.2f}x, below the required {min_engine_speedup}x"
            )
        if current.get("engines_agree") is False:
            issues.append(f"{stage}: engines disagree on the bench scenario")

    base_rss = baseline.get("peak_rss_bytes")
    cur_rss = current.get("peak_rss_bytes")
    if base_rss and cur_rss and float(cur_rss) > float(base_rss) * rss_factor:
        issues.append(
            f"{stage}: peak RSS regressed: {float(cur_rss) / 2**20:.0f} MiB vs "
            f"baseline {float(base_rss) / 2**20:.0f} MiB "
            f"(allowed factor {rss_factor})"
        )
    return issues


def check_regression(
    results: Dict[str, dict],
    baseline_dir,
    *,
    time_factor: float = DEFAULT_TIME_FACTOR,
    counter_rtol: float = DEFAULT_COUNTER_RTOL,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    min_engine_speedup: float = DEFAULT_MIN_ENGINE_SPEEDUP,
    rss_factor: float = DEFAULT_RSS_FACTOR,
) -> List[str]:
    """Compare a bench run against the committed baseline directory."""
    issues: List[str] = []
    for stage, doc in results.items():
        path = artifact_path(
            baseline_dir, stage, doc.get("scenario", DEFAULT_SCENARIO)
        )
        if not path.exists():
            issues.append(f"{stage}: no baseline at {path}")
            continue
        issues.extend(
            compare_artifact(
                doc,
                load_artifact(path),
                time_factor=time_factor,
                counter_rtol=counter_rtol,
                min_speedup=min_speedup,
                min_engine_speedup=min_engine_speedup,
                rss_factor=rss_factor,
            )
        )
    return issues


def render_bench_table(results: Dict[str, dict]) -> str:
    """ASCII summary of a bench run, one row per stage."""
    lines = [
        f"{'stage':<10} {'nodes':>6} {'median_s':>10} {'key counters'}",
        "-" * 72,
    ]
    for stage in ALL_STAGES:
        if stage not in results:
            continue
        doc = results[stage]
        counters = doc["counters"]
        head = ", ".join(
            f"{k}={counters[k]:.4g}" if isinstance(counters[k], float) else f"{k}={counters[k]}"
            for k in list(counters)[:3]
        )
        extra = ""
        if "speedup_vs_naive" in doc:
            extra = f"  [{doc['speedup_vs_naive']:.1f}x vs naive]"
        if "speedup_vs_pernode" in doc:
            extra = f"  [{doc['speedup_vs_pernode']:.1f}x vs pernode]"
        lines.append(
            f"{stage:<10} {doc['n_nodes']:>6} {doc['median_seconds']:>10.4f} {head}{extra}"
        )
    return "\n".join(lines)
