"""Declarative experiment campaigns: spec, cell cross-product, executors.

The paper's evidence is a family of multi-cell sweeps (Figs. 6-10 and the
error/fault grids of Figs. 1(g-i) and 11), each previously hand-rolled as
its own driver invocation.  A :class:`CampaignSpec` describes one such
sweep declaratively -- scenario x seed x config-variant axes crossed with
either a measurement-error axis (``kind="error_sweep"``) or a
loss x crash x mode fault grid (``kind="robustness"``) -- and
:func:`expand` turns it into an ordered list of :class:`CampaignCell`
values.

Each cell is a *pure function of its parameters*: :func:`execute_cell`
maps ``(kind, params)`` to a JSON document, drawing randomness only from
the identity-derived substreams of :mod:`repro.evaluation.seeding`.  That
purity is what the campaign manager in :mod:`repro.service.campaign`
exploits -- cells become content-addressed jobs in the durable job store,
so re-running a campaign only computes missing cells, and an interrupted
campaign resumes exactly where it stopped.

This module deliberately knows nothing about the job service (layering:
``evaluation`` sits below ``service``); it owns the spec schema, the cell
semantics, and the aggregation of per-cell result documents back into the
paper-shaped ASCII tables of :mod:`repro.evaluation.reporting`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from itertools import groupby
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import DetectorConfig, IFFConfig, UBFConfig
from repro.evaluation.experiments import ErrorSweepPoint, run_error_cell
from repro.evaluation.metrics import DetectionStats
from repro.evaluation.reporting import (
    render_error_sweep_counts,
    render_mistaken_distribution,
    render_missing_distribution,
)
from repro.evaluation.robustness import (
    RobustnessPoint,
    render_robustness_table,
    run_fault_cell,
)
from repro.network.generator import DeploymentConfig, generate_network
from repro.observability.tracer import ensure_tracer
from repro.runtime.protocols import RetryPolicy
from repro.shapes.library import scenario_by_name

CAMPAIGN_FORMAT_VERSION = 1

#: Job kinds the campaign manager submits (``JobSpec.kind`` values).
CELL_KIND_ERROR = "eval.error_cell"
CELL_KIND_FAULT = "eval.fault_cell"
CELL_KINDS = (CELL_KIND_ERROR, CELL_KIND_FAULT)

#: Campaign kinds (spec-level).
KIND_ERROR_SWEEP = "error_sweep"
KIND_ROBUSTNESS = "robustness"
CAMPAIGN_KINDS = (KIND_ERROR_SWEEP, KIND_ROBUSTNESS)

#: Detector/protocol knobs a config variant may override.
VARIANT_KEYS = ("epsilon", "theta", "ttl", "max_retries", "rto")

_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative experiment campaign (the committed JSON schema).

    Axes: ``scenarios`` x ``seeds`` x ``variants`` crossed with the
    kind-specific grid -- ``levels`` for an error sweep, ``modes`` x
    ``crash_fractions`` x ``loss_rates`` for a robustness grid.  The
    ``seed`` axis value seeds *both* the deployment (network generation)
    and the per-cell substreams, so each seed is a fully independent
    replication.

    ``variants`` is the config-variant axis: each entry is a mapping with
    a unique ``name`` plus overrides drawn from :data:`VARIANT_KEYS`.
    ``output`` names the ``results/`` table this campaign regenerates
    (resolved by the CLI, relative to the working directory).
    """

    name: str
    kind: str
    scenarios: Tuple[str, ...] = ("sphere",)
    seeds: Tuple[int, ...] = (0,)
    n_surface: int = 150
    n_interior: int = 250
    target_degree: float = 14.0
    epsilon: float = 1e-3
    theta: int = 20
    ttl: int = 3
    variants: Tuple[Mapping[str, Any], ...] = ()
    levels: Tuple[float, ...] = ()
    loss_rates: Tuple[float, ...] = ()
    crash_fractions: Tuple[float, ...] = (0.0,)
    modes: Tuple[str, ...] = ("raw",)
    max_retries: int = 8
    rto: int = 2
    max_rounds: int = 10_000
    output: Optional[str] = None

    def __post_init__(self):
        for attr in (
            "scenarios",
            "seeds",
            "variants",
            "levels",
            "loss_rates",
            "crash_fractions",
            "modes",
        ):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if not self.name or not set(self.name) <= _NAME_CHARS:
            raise ValueError(
                f"campaign name {self.name!r} must be non-empty and use only "
                "[A-Za-z0-9._-]"
            )
        if self.kind not in CAMPAIGN_KINDS:
            raise ValueError(
                f"unknown campaign kind {self.kind!r} (expected one of "
                f"{CAMPAIGN_KINDS})"
            )
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.kind == KIND_ERROR_SWEEP and not self.levels:
            raise ValueError("error_sweep campaign needs non-empty levels")
        if self.kind == KIND_ROBUSTNESS:
            if not self.loss_rates:
                raise ValueError("robustness campaign needs non-empty loss_rates")
            if not self.crash_fractions:
                raise ValueError(
                    "robustness campaign needs non-empty crash_fractions"
                )
            bad_modes = [m for m in self.modes if m not in ("raw", "reliable")]
            if not self.modes or bad_modes:
                raise ValueError(
                    f"modes must be a non-empty subset of ('raw', 'reliable'), "
                    f"got {self.modes!r}"
                )
        seen = set()
        for variant in self.variants:
            vname = variant.get("name")
            if not isinstance(vname, str) or not vname:
                raise ValueError(f"variant {variant!r} needs a non-empty 'name'")
            if vname in seen:
                raise ValueError(f"duplicate variant name {vname!r}")
            seen.add(vname)
            unknown = sorted(set(variant) - {"name"} - set(VARIANT_KEYS))
            if unknown:
                raise ValueError(
                    f"variant {vname!r} overrides unknown keys {unknown} "
                    f"(allowed: {list(VARIANT_KEYS)})"
                )

    def as_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["format_version"] = CAMPAIGN_FORMAT_VERSION
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CampaignSpec":
        doc = dict(doc)
        version = doc.pop("format_version", CAMPAIGN_FORMAT_VERSION)
        if version != CAMPAIGN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported campaign format version {version!r} "
                f"(expected {CAMPAIGN_FORMAT_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec keys {unknown}")
        return cls(**doc)

    def spec_hash(self) -> str:
        """SHA-256 over the sorted-keys JSON of the full spec."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def effective_variants(self) -> Tuple[Dict[str, Any], ...]:
        """The variant axis, defaulting to a single ``default`` variant."""
        if not self.variants:
            return ({"name": "default"},)
        return tuple(dict(v) for v in self.variants)


def load_spec(path) -> CampaignSpec:
    """Read a committed campaign spec JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: campaign spec must be a JSON object")
    return CampaignSpec.from_dict(doc)


@dataclass(frozen=True)
class CampaignCell:
    """One cell of the expanded cross-product.

    ``axes`` carries the human-facing slice labels (scenario, seed,
    variant, and the kind-specific axis values) used by status displays
    and aggregation; ``params`` is the full executable payload handed to
    :func:`execute_cell` (and stored as ``JobSpec.cell``, where it
    defines the cell's cache identity).
    """

    index: int
    kind: str
    axes: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)


def _variant_value(spec: CampaignSpec, variant: Mapping[str, Any], key: str) -> Any:
    return variant.get(key, getattr(spec, key))


def expand(spec: CampaignSpec) -> List[CampaignCell]:
    """The ordered cell cross-product of ``spec``.

    Order is slice-major (scenario, seed, variant) then the kind grid
    (levels; or mode-major crash x loss row-major, matching
    :func:`repro.evaluation.robustness.run_robustness_sweep`).  Rendering
    and status both rely on this order being deterministic.
    """
    cells: List[CampaignCell] = []
    for scenario in spec.scenarios:
        for seed in spec.seeds:
            for variant in spec.effective_variants():
                base_axes = {
                    "scenario": scenario,
                    "seed": int(seed),
                    "variant": variant["name"],
                }
                base_params = {
                    "scenario": scenario,
                    "n_surface": int(spec.n_surface),
                    "n_interior": int(spec.n_interior),
                    "target_degree": float(spec.target_degree),
                    "seed": int(seed),
                    "epsilon": float(_variant_value(spec, variant, "epsilon")),
                    "theta": int(_variant_value(spec, variant, "theta")),
                    "ttl": int(_variant_value(spec, variant, "ttl")),
                }
                if spec.kind == KIND_ERROR_SWEEP:
                    for level in spec.levels:
                        cells.append(
                            CampaignCell(
                                index=len(cells),
                                kind=CELL_KIND_ERROR,
                                axes={**base_axes, "level": float(level)},
                                params={**base_params, "level": float(level)},
                            )
                        )
                else:
                    max_retries = int(_variant_value(spec, variant, "max_retries"))
                    rto = int(_variant_value(spec, variant, "rto"))
                    for mode in spec.modes:
                        for crash in spec.crash_fractions:
                            for loss in spec.loss_rates:
                                cells.append(
                                    CampaignCell(
                                        index=len(cells),
                                        kind=CELL_KIND_FAULT,
                                        axes={
                                            **base_axes,
                                            "mode": mode,
                                            "crash": float(crash),
                                            "loss": float(loss),
                                        },
                                        params={
                                            **base_params,
                                            "loss_rate": float(loss),
                                            "crash_fraction": float(crash),
                                            "reliable": mode == "reliable",
                                            "max_retries": max_retries,
                                            "rto": rto,
                                            "max_rounds": int(spec.max_rounds),
                                        },
                                    )
                                )
    return cells


# -- cell execution --------------------------------------------------------


def _cell_deployment(params: Mapping[str, Any]) -> DeploymentConfig:
    return DeploymentConfig(
        n_surface=params["n_surface"],
        n_interior=params["n_interior"],
        target_degree=params["target_degree"],
        seed=params["seed"],
    )


def _cell_detector(params: Mapping[str, Any]) -> DetectorConfig:
    return DetectorConfig(
        ubf=UBFConfig(epsilon=params["epsilon"]),
        iff=IFFConfig(theta=params["theta"], ttl=params["ttl"]),
    )


def _cell_network(params: Mapping[str, Any]):
    return generate_network(
        scenario_by_name(params["scenario"]),
        _cell_deployment(params),
        scenario=params["scenario"],
    )


def execute_cell(
    kind: str, params: Mapping[str, Any], *, tracer=None
) -> Dict[str, Any]:
    """Run one campaign cell; returns its JSON result document.

    The document round-trips through :func:`error_point_from_doc` /
    :func:`fault_point_from_doc` back into the dataclasses the existing
    renderers consume.  Execution is deterministic: equal ``(kind,
    params)`` always produce byte-identical documents (the substreams are
    identity-derived), which is the contract the job store's result cache
    keys on.
    """
    if params is None:
        raise ValueError(f"cell job of kind {kind!r} has no cell parameters")
    tracer = ensure_tracer(tracer)
    if kind == CELL_KIND_ERROR:
        with tracer.span(
            "campaign.cell",
            kind=kind,
            scenario=params["scenario"],
            level=params["level"],
        ):
            network = _cell_network(params)
            point = run_error_cell(
                network,
                params["level"],
                detector_config=_cell_detector(params),
                seed=params["seed"],
            )
        return error_point_doc(point)
    if kind == CELL_KIND_FAULT:
        with tracer.span(
            "campaign.cell",
            kind=kind,
            scenario=params["scenario"],
            loss_rate=params["loss_rate"],
            crash_fraction=params["crash_fraction"],
        ):
            network = _cell_network(params)
            policy = None
            if params["reliable"]:
                policy = RetryPolicy(
                    max_retries=params["max_retries"], rto=params["rto"]
                )
            point = run_fault_cell(
                network,
                params["loss_rate"],
                params["crash_fraction"],
                detector_config=_cell_detector(params),
                retry_policy=policy,
                seed=params["seed"],
                max_rounds=params["max_rounds"],
                tracer=tracer,
            )
        return fault_point_doc(point)
    raise ValueError(f"unknown campaign cell kind {kind!r}")


# -- result documents ------------------------------------------------------


def error_point_doc(point: ErrorSweepPoint) -> Dict[str, Any]:
    """JSON document of one error-sweep cell result."""
    return {
        "type": "error_point",
        "level": point.level,
        "stats": dataclasses.asdict(point.stats),
        "mistaken_hops": {str(k): point.mistaken_hops[k] for k in sorted(point.mistaken_hops)},
        "missing_hops": {str(k): point.missing_hops[k] for k in sorted(point.missing_hops)},
    }


def error_point_from_doc(doc: Mapping[str, Any]) -> ErrorSweepPoint:
    """Inverse of :func:`error_point_doc`."""
    return ErrorSweepPoint(
        level=doc["level"],
        stats=DetectionStats(**doc["stats"]),
        mistaken_hops={int(k): v for k, v in doc["mistaken_hops"].items()},
        missing_hops={int(k): v for k, v in doc["missing_hops"].items()},
    )


def fault_point_doc(point: RobustnessPoint) -> Dict[str, Any]:
    """JSON document of one fault-grid cell result."""
    doc = dataclasses.asdict(point)
    doc["type"] = "fault_point"
    return doc


def fault_point_from_doc(doc: Mapping[str, Any]) -> RobustnessPoint:
    """Inverse of :func:`fault_point_doc`."""
    names = [f.name for f in dataclasses.fields(RobustnessPoint)]
    return RobustnessPoint(**{name: doc[name] for name in names})


# -- aggregation -----------------------------------------------------------


def _slice_key(cell: CampaignCell) -> Tuple[Any, ...]:
    return (cell.axes["scenario"], cell.axes["seed"], cell.axes["variant"])


def render_campaign_tables(
    spec: CampaignSpec, results: Sequence[Optional[Mapping[str, Any]]]
) -> str:
    """Aggregate per-cell result documents into the campaign's tables.

    ``results`` must align with :func:`expand`'s cell order (one document
    per cell; ``None`` marks a missing cell and raises).  Single-slice
    robustness campaigns render byte-identically to the ``repro-boundary
    robustness`` CLI's ``--out`` file, which is how a committed campaign
    spec regenerates ``results/robustness_baseline.txt`` exactly.
    """
    cells = expand(spec)
    if len(results) != len(cells):
        raise ValueError(
            f"campaign {spec.name!r}: got {len(results)} results for "
            f"{len(cells)} cells"
        )
    missing = [cell.index for cell, doc in zip(cells, results) if doc is None]
    if missing:
        raise ValueError(
            f"campaign {spec.name!r}: missing results for cells {missing}"
        )
    paired = list(zip(cells, results))
    slice_keys = []
    for cell in cells:
        key = _slice_key(cell)
        if key not in slice_keys:
            slice_keys.append(key)
    multi = len(slice_keys) > 1

    sections: List[str] = []
    for key, group_iter in groupby(paired, key=lambda cr: _slice_key(cr[0])):
        group = list(group_iter)
        if multi:
            scenario, seed, variant = key
            sections.append(
                f"=== scenario={scenario} seed={seed} variant={variant} ==="
            )
        if spec.kind == KIND_ERROR_SWEEP:
            points = [error_point_from_doc(doc) for _, doc in group]
            sections.append(
                "[Fig. 1(g)] boundary node counts vs distance measurement error\n"
                + render_error_sweep_counts(points)
            )
            sections.append(
                "[Fig. 1(h)] mistaken boundary node hop distribution\n"
                + render_mistaken_distribution(points)
            )
            sections.append(
                "[Fig. 1(i)] missing boundary node hop distribution\n"
                + render_missing_distribution(points)
            )
        else:
            for mode, mode_iter in groupby(
                group, key=lambda cr: cr[0].axes["mode"]
            ):
                mode_group = list(mode_iter)
                points = [fault_point_from_doc(doc) for _, doc in mode_group]
                if mode == "raw":
                    header = "[robustness] raw protocols (no reliability layer)"
                else:
                    first = mode_group[0][0].params
                    header = (
                        f"[robustness] reliable wrapper "
                        f"(max_retries={first['max_retries']}, "
                        f"rto={first['rto']})"
                    )
                sections.append(header + "\n" + render_robustness_table(points))
    return "\n\n".join(sections) + "\n"
