"""Experiment drivers: one function per paper figure family.

Each driver returns plain dataclasses so benches and examples can print
the paper-shaped tables (via :mod:`repro.evaluation.reporting`) without
re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig, IFFConfig, UBFConfig
from repro.core.pipeline import BoundaryDetector
from repro.core.ubf import run_ubf
from repro.evaluation.mesh_metrics import MeshQuality, evaluate_mesh
from repro.evaluation.metrics import (
    DetectionStats,
    evaluate_detection,
    mistaken_hop_distribution,
    missing_hop_distribution,
)
from repro.network.generator import DeploymentConfig, Network, generate_network
from repro.network.measurement import (
    DistanceErrorModel,
    NoError,
    UniformAbsoluteError,
    measure_distances,
)
from repro.network.localization import true_local_frame
from repro.network.stats import NetworkStats, compute_network_stats
from repro.evaluation.seeding import cell_rng, error_cell_identity
from repro.shapes.library import scenario_by_name
from repro.surface.pipeline import SurfaceBuilder, SurfaceConfig

#: Paper's sweep axis: 0% to 100% in steps of 10% (Figs. 1(g-i), 11).
PAPER_ERROR_LEVELS = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass
class ErrorSweepPoint:
    """Detection outcome at one distance-measurement error level."""

    level: float
    stats: DetectionStats
    mistaken_hops: Dict[int, int]
    missing_hops: Dict[int, int]


def run_error_cell(
    network: Network,
    level: float,
    *,
    model_factory: Callable[[float], DistanceErrorModel] = UniformAbsoluteError,
    detector_config: DetectorConfig = DetectorConfig(),
    seed: int = 0,
) -> ErrorSweepPoint:
    """One measurement-error sweep cell, a pure function of its identity.

    Draws a fresh set of edge measurements at ``level`` from the
    identity-derived substream ``default_rng([seed, cell])`` (see
    :mod:`repro.evaluation.seeding`), runs the full localization + UBF +
    IFF pipeline, and records the detection statistics plus hop
    distributions.  The result is byte-identical whether the cell runs
    standalone, inside :func:`run_error_sweep`, or as a campaign job --
    the substream depends on the cell's ``level``, never on its position
    in a sweep.
    """
    model = model_factory(level)
    config = replace(detector_config, error_model=model, localization="mds")
    rng = cell_rng(seed, error_cell_identity(level))
    measured = measure_distances(network.graph, model, rng)
    result = BoundaryDetector(config).detect(network, measured=measured)
    return ErrorSweepPoint(
        level=level,
        stats=evaluate_detection(network, result),
        mistaken_hops=mistaken_hop_distribution(network, result),
        missing_hops=missing_hop_distribution(network, result),
    )


def run_error_sweep(
    network: Network,
    levels: Sequence[float] = PAPER_ERROR_LEVELS,
    *,
    model_factory: Callable[[float], DistanceErrorModel] = UniformAbsoluteError,
    detector_config: DetectorConfig = DetectorConfig(),
    seed: int = 0,
) -> List[ErrorSweepPoint]:
    """Figs. 1(g-i): sweep the measurement error level on one network.

    Each level is one :func:`run_error_cell` invocation; cells draw from
    per-identity substreams, so the sweep is exactly the concatenation of
    its standalone cells (order- and shape-independent).
    """
    return [
        run_error_cell(
            network,
            level,
            model_factory=model_factory,
            detector_config=detector_config,
            seed=seed,
        )
        for level in levels
    ]


@dataclass
class ScenarioResult:
    """Full-pipeline outcome on one evaluation scenario (Figs. 6-10)."""

    scenario: str
    network_stats: NetworkStats
    detection: DetectionStats
    group_sizes: List[int]
    meshes: List[MeshQuality] = field(default_factory=list)


def run_scenario(
    scenario: str,
    deployment: DeploymentConfig = DeploymentConfig(),
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    surface_config: SurfaceConfig = SurfaceConfig(),
    rng_seed: int = 0,
) -> ScenarioResult:
    """Generate a scenario network, detect its boundaries, build meshes."""
    network = generate_network(
        scenario_by_name(scenario), deployment, scenario=scenario
    )
    result = BoundaryDetector(detector_config).detect(
        network, rng=np.random.default_rng(rng_seed)
    )
    meshes = SurfaceBuilder(surface_config).build(network.graph, result.groups)
    return ScenarioResult(
        scenario=scenario,
        network_stats=compute_network_stats(network),
        detection=evaluate_detection(network, result),
        group_sizes=[len(g) for g in result.groups],
        meshes=[evaluate_mesh(network, mesh) for mesh in meshes],
    )


def run_aggregate_sweep(
    scenarios: Sequence[str],
    deployment: DeploymentConfig,
    levels: Sequence[float] = PAPER_ERROR_LEVELS,
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    seed: int = 0,
) -> List[ErrorSweepPoint]:
    """Fig. 11: error sweep aggregated over several scenario networks.

    The paper's performance statistics pool "over 10,000 sample boundary
    nodes" across simulated networks; this driver runs the sweep on one
    network per scenario and merges counts and hop histograms per level.
    """
    per_network: List[List[ErrorSweepPoint]] = []
    for idx, scenario in enumerate(scenarios):
        network = generate_network(
            scenario_by_name(scenario), deployment, scenario=scenario
        )
        per_network.append(
            run_error_sweep(
                network,
                levels,
                detector_config=detector_config,
                seed=seed + 1000 * idx,
            )
        )

    merged: List[ErrorSweepPoint] = []
    for level_idx, level in enumerate(levels):
        points = [sweep[level_idx] for sweep in per_network]
        stats = DetectionStats(
            n_truth=sum(p.stats.n_truth for p in points),
            n_found=sum(p.stats.n_found for p in points),
            n_correct=sum(p.stats.n_correct for p in points),
            n_mistaken=sum(p.stats.n_mistaken for p in points),
            n_missing=sum(p.stats.n_missing for p in points),
        )
        mistaken: Dict[int, int] = {}
        missing: Dict[int, int] = {}
        for p in points:
            for bucket, count in p.mistaken_hops.items():
                mistaken[bucket] = mistaken.get(bucket, 0) + count
            for bucket, count in p.missing_hops.items():
                missing[bucket] = missing.get(bucket, 0) + count
        merged.append(
            ErrorSweepPoint(
                level=level,
                stats=stats,
                mistaken_hops=mistaken,
                missing_hops=missing,
            )
        )
    return merged


@dataclass
class MeshErrorPoint:
    """Mesh quality at one error level (Figs. 1(j)-(l))."""

    level: float
    detection: DetectionStats
    meshes: List[MeshQuality]


def run_mesh_error_sweep(
    network: Network,
    levels: Sequence[float] = (0.0, 0.2, 0.3, 0.4),
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    surface_config: SurfaceConfig = SurfaceConfig(),
    seed: int = 0,
) -> List[MeshErrorPoint]:
    """Figs. 1(j)-(l): does the mesh stay well-formed under error?"""
    points: List[MeshErrorPoint] = []
    for idx, level in enumerate(levels):
        model: DistanceErrorModel = (
            NoError() if level == 0 else UniformAbsoluteError(level)
        )
        config = replace(detector_config, error_model=model)
        rng = np.random.default_rng(seed + idx)
        result = BoundaryDetector(config).detect(network, rng=rng)
        meshes = SurfaceBuilder(surface_config).build(network.graph, result.groups)
        points.append(
            MeshErrorPoint(
                level=level,
                detection=evaluate_detection(network, result),
                meshes=[evaluate_mesh(network, mesh) for mesh in meshes],
            )
        )
    return points


@dataclass
class ComplexityPoint:
    """Theorem 1 observables at one nodal density."""

    target_degree: float
    mean_degree: float
    mean_balls_tested: float
    max_balls_tested: float
    mean_points_checked: float = 0.0
    max_points_checked: float = 0.0
    mean_collection_size: float = 0.0
    #: Exhaustive probe bound ``balls_tested * collection_size`` per node:
    #: Theorem 1's Theta(rho^3) total-work observable.  The realized
    #: ``points_checked`` counter early-exits per ball at the first inside
    #: point and empirically grows only ~Theta(rho^2).
    mean_probe_bound: float = 0.0


def run_ubf_complexity(
    shape_name: str = "sphere",
    target_degrees: Sequence[float] = (10.0, 15.0, 20.0, 25.0, 30.0),
    *,
    n_surface: int = 400,
    n_interior: int = 800,
    seed: int = 0,
) -> List[ComplexityPoint]:
    """Theorem 1: per-node candidate-ball counts versus nodal density.

    Runs UBF in exhaustive mode (``find_first=False``) so the count
    reflects the full ``Theta(rho^2)`` candidate family rather than the
    early-exit path.
    """
    points: List[ComplexityPoint] = []
    for degree in target_degrees:
        network = generate_network(
            scenario_by_name(shape_name),
            DeploymentConfig(
                n_surface=n_surface,
                n_interior=n_interior,
                target_degree=degree,
                seed=seed,
            ),
            scenario=shape_name,
        )
        outcomes = run_ubf(network, UBFConfig(), find_first=False)
        tested = np.array([o.balls_tested for o in outcomes], dtype=float)
        checked = np.array([o.points_checked for o in outcomes], dtype=float)
        # Probes per candidate ball without early exit: the node's own
        # position plus its full 2-hop collection.
        collection = np.array(
            [
                len(true_local_frame(network.graph, n).collection_coordinates) + 1
                for n in range(network.graph.n_nodes)
            ],
            dtype=float,
        )
        degrees = network.graph.degrees()
        points.append(
            ComplexityPoint(
                target_degree=degree,
                mean_degree=float(degrees.mean()),
                mean_balls_tested=float(tested.mean()),
                max_balls_tested=float(tested.max()),
                mean_points_checked=float(checked.mean()),
                max_points_checked=float(checked.max()),
                mean_collection_size=float(collection.mean()),
                mean_probe_bound=float((tested * collection).mean()),
            )
        )
    return points


@dataclass
class BallRadiusPoint:
    """Ablation A observables at one ball radius."""

    radius: float
    n_small_hole_detected: int
    n_large_hole_detected: int
    n_groups: int


def run_ball_radius_ablation(
    radii: Sequence[float] = (1.001, 1.6, 2.5),
    *,
    small_hole_radius: float = 0.30,
    large_hole_radius: float = 0.50,
    deployment: Optional[DeploymentConfig] = None,
    seed: int = 5,
) -> List[BallRadiusPoint]:
    """Sec. II-A3: a larger ball radius suppresses small holes.

    Deploys a sphere with one small and one large internal hole, runs UBF +
    IFF at each ball radius, and counts how many ground-truth nodes of each
    hole's surface are still detected.  Default hole sizes put the small
    hole at ~1.2 radio ranges and the large at ~2.1, so the default sweep
    shows: both detected at ``r ~= 1``, only the large at ``r = 1.6``,
    neither at ``r = 2.5``.
    """
    from repro.shapes.csg import Difference
    from repro.shapes.solids import Sphere

    outer = Sphere(radius=1.0)
    small = Sphere(center=(-0.45, 0.0, 0.0), radius=small_hole_radius)
    large = Sphere(center=(0.4, 0.0, 0.0), radius=large_hole_radius)
    shape = Difference(outer, [small, large])
    deployment = deployment or DeploymentConfig(
        n_surface=800, n_interior=1000, target_degree=30, seed=seed
    )
    network = generate_network(shape, deployment, scenario="radius-ablation")

    # Ground-truth nodes per hole: surface samples nearest to each hole.
    positions = network.graph.positions
    truth_ids = sorted(network.truth_boundary_set)
    scale = network.scale
    small_center = np.asarray(small.center) * scale
    large_center = np.asarray(large.center) * scale
    small_truth = {
        i
        for i in truth_ids
        if np.linalg.norm(positions[i] - small_center) < small.radius * scale * 1.2
    }
    large_truth = {
        i
        for i in truth_ids
        if np.linalg.norm(positions[i] - large_center) < large.radius * scale * 1.2
    }

    points: List[BallRadiusPoint] = []
    for radius in radii:
        config = DetectorConfig(
            ubf=UBFConfig(ball_radius=radius),
            iff=IFFConfig(theta=5, ttl=3),
        )
        result = BoundaryDetector(config).detect(network)
        points.append(
            BallRadiusPoint(
                radius=radius,
                n_small_hole_detected=len(result.boundary & small_truth),
                n_large_hole_detected=len(result.boundary & large_truth),
                n_groups=len(result.groups),
            )
        )
    return points


@dataclass
class IFFAblationPoint:
    """Ablation B observables for one (theta, ttl) setting."""

    theta: int
    ttl: int
    stats: DetectionStats


def run_iff_ablation(
    network: Network,
    thetas: Sequence[int] = (1, 5, 10, 20, 40),
    ttls: Sequence[int] = (2, 3, 4),
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    rng_seed: int = 0,
) -> List[IFFAblationPoint]:
    """Sec. II-B: sensitivity of the filter to theta and TTL."""
    points: List[IFFAblationPoint] = []
    for ttl in ttls:
        for theta in thetas:
            config = replace(
                detector_config, iff=IFFConfig(theta=theta, ttl=ttl)
            )
            result = BoundaryDetector(config).detect(
                network, rng=np.random.default_rng(rng_seed)
            )
            points.append(
                IFFAblationPoint(
                    theta=theta,
                    ttl=ttl,
                    stats=evaluate_detection(network, result),
                )
            )
    return points


@dataclass
class LandmarkKPoint:
    """Ablation C observables at one landmark spacing."""

    k: int
    meshes: List[MeshQuality]


def run_landmark_k_ablation(
    network: Network,
    ks: Sequence[int] = (3, 4, 5),
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    rng_seed: int = 0,
) -> List[LandmarkKPoint]:
    """Sec. III: larger k -> coarser mesh, more nodes left outside."""
    result = BoundaryDetector(detector_config).detect(
        network, rng=np.random.default_rng(rng_seed)
    )
    points: List[LandmarkKPoint] = []
    for k in ks:
        builder = SurfaceBuilder(SurfaceConfig(k=k, adaptive_k=False))
        meshes = builder.build(network.graph, result.groups)
        points.append(
            LandmarkKPoint(
                k=k, meshes=[evaluate_mesh(network, m) for m in meshes]
            )
        )
    return points


def run_collection_hops_ablation(
    network: Network,
    hops_values: Sequence[int] = (1, 2, 3),
) -> List[DetectionStats]:
    """The 1-hop vs 2-hop collection ablation (see UBFConfig docs)."""
    stats: List[DetectionStats] = []
    for hops in hops_values:
        config = DetectorConfig(ubf=UBFConfig(collection_hops=hops))
        result = BoundaryDetector(config).detect(network)
        stats.append(evaluate_detection(network, result))
    return stats
