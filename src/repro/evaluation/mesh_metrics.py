"""Mesh quality metrics: topology and geometric fidelity.

The paper argues two things about its meshes: they are locally planarized
2-manifolds (every virtual edge on exactly two triangular faces -- Sec. III
step V), and they are "not seriously deformed under distance measurement
errors" (Figs. 1(j)-(l)).  :class:`MeshQuality` quantifies both:

* topology -- vertex/edge/face counts, the Euler characteristic, the
  per-edge face-count histogram, and the 2-manifold flag;
* geometry -- the distance from each boundary node's true position to the
  mesh (landmark triangles embedded at the landmarks' true positions),
  summarizing how faithfully the coarse mesh tracks the real surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.network.generator import Network
from repro.surface.mesh import TriangularMesh


def _point_segment_distance(p: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Distance from ``p`` to the segment ``ab`` (degenerate-safe)."""
    ab = b - a
    denom = float(np.dot(ab, ab))
    if denom < 1e-18:
        return float(np.linalg.norm(p - a))
    t = float(np.clip(np.dot(p - a, ab) / denom, 0.0, 1.0))
    return float(np.linalg.norm(p - (a + t * ab)))


def point_triangle_distance(point, a, b, c) -> float:
    """Euclidean distance from ``point`` to the (filled) triangle ``abc``.

    Standard region-based projection onto the triangle's plane with edge
    and vertex clamping (Ericson, *Real-Time Collision Detection*).
    Degenerate triangles (collinear or duplicated vertices) fall back to
    the minimum distance over the three edges.
    """
    p = np.asarray(point, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)

    normal = np.cross(b - a, c - a)
    if float(np.dot(normal, normal)) < 1e-18:
        return min(
            _point_segment_distance(p, a, b),
            _point_segment_distance(p, b, c),
            _point_segment_distance(p, a, c),
        )

    ab = b - a
    ac = c - a
    ap = p - a
    d1 = float(np.dot(ab, ap))
    d2 = float(np.dot(ac, ap))
    if d1 <= 0.0 and d2 <= 0.0:
        return float(np.linalg.norm(p - a))

    bp = p - b
    d3 = float(np.dot(ab, bp))
    d4 = float(np.dot(ac, bp))
    if d3 >= 0.0 and d4 <= d3:
        return float(np.linalg.norm(p - b))

    vc = d1 * d4 - d3 * d2
    if vc <= 0.0 and d1 >= 0.0 and d3 <= 0.0:
        t = d1 / (d1 - d3)
        return float(np.linalg.norm(p - (a + t * ab)))

    cp = p - c
    d5 = float(np.dot(ab, cp))
    d6 = float(np.dot(ac, cp))
    if d6 >= 0.0 and d5 <= d6:
        return float(np.linalg.norm(p - c))

    vb = d5 * d2 - d1 * d6
    if vb <= 0.0 and d2 >= 0.0 and d6 <= 0.0:
        t = d2 / (d2 - d6)
        return float(np.linalg.norm(p - (a + t * ac)))

    va = d3 * d6 - d5 * d4
    if va <= 0.0 and (d4 - d3) >= 0.0 and (d5 - d6) >= 0.0:
        t = (d4 - d3) / ((d4 - d3) + (d5 - d6))
        return float(np.linalg.norm(p - (b + t * (c - b))))

    denom = 1.0 / (va + vb + vc)
    v = vb * denom
    w = vc * denom
    projection = a + ab * v + ac * w
    return float(np.linalg.norm(p - projection))


def mesh_surface_area(network: Network, mesh: TriangularMesh) -> float:
    """Total area of the mesh triangles, landmarks at true positions.

    For a closed boundary mesh this estimates the area of the network
    boundary surface -- one of the geographic quantities the paper's
    terrain/underwater reconnaissance motivation asks for.
    """
    positions = network.graph.positions
    total = 0.0
    for a, b, c in mesh.triangles():
        ab = positions[b] - positions[a]
        ac = positions[c] - positions[a]
        total += 0.5 * float(np.linalg.norm(np.cross(ab, ac)))
    return total


def mesh_enclosed_volume(network: Network, mesh: TriangularMesh) -> Optional[float]:
    """Volume enclosed by a closed mesh via the divergence theorem.

    Sums signed tetrahedron volumes ``det(a, b, c) / 6`` against the
    centroid with faces oriented consistently outward.  Faces come from
    3-clique enumeration without an orientation, so each face is oriented
    away from the mesh centroid first; this is exact for star-shaped
    meshes and a good estimate for the near-convex boundaries the
    scenarios produce.  Returns None when the mesh is not a closed
    2-manifold (the signed sum would be meaningless).
    """
    if not mesh.is_two_manifold():
        return None
    positions = network.graph.positions
    centroid = positions[np.asarray(mesh.vertices, dtype=int)].mean(axis=0)
    volume = 0.0
    for a, b, c in mesh.triangles():
        pa = positions[a] - centroid
        pb = positions[b] - centroid
        pc = positions[c] - centroid
        signed = float(np.dot(pa, np.cross(pb, pc))) / 6.0
        # Orient each face outward from the centroid: for a star-shaped
        # mesh the tetra volume against the centroid is then positive.
        volume += abs(signed)
    return volume


@dataclass(frozen=True)
class MeshQuality:
    """Quality summary of one boundary mesh.

    Attributes
    ----------
    n_vertices, n_edges, n_faces:
        Landmark-graph counts (faces are triangles).
    euler_characteristic:
        ``V - E + F``; 2 for a sphere-like closed surface.
    is_two_manifold:
        True iff every edge lies on exactly two triangles.
    two_faced_edge_fraction:
        Fraction of edges with exactly two faces -- a graded version of the
        manifold flag, useful when comparing meshes under error.
    edge_face_histogram:
        ``face count -> number of edges``.
    covered_fraction:
        Fraction of the boundary group participating in the mesh (as a
        landmark or on a virtual edge's path); the complement is "nodes
        left outside the mesh", the quantity the paper relates to ``k``.
    mean_deviation, max_deviation:
        Distance (in radio ranges) from boundary-group nodes' true
        positions to the nearest mesh triangle; quantifies Fig. 1(j)-(l)'s
        "not seriously deformed" claim.  None when the mesh has no faces.
    """

    n_vertices: int
    n_edges: int
    n_faces: int
    euler_characteristic: int
    is_two_manifold: bool
    two_faced_edge_fraction: float
    edge_face_histogram: Dict[int, int]
    covered_fraction: float
    mean_deviation: Optional[float]
    max_deviation: Optional[float]

    def as_row(self) -> str:
        """Formatted one-line summary."""
        dev = (
            f"dev(mean/max)={self.mean_deviation:.2f}/{self.max_deviation:.2f}"
            if self.mean_deviation is not None
            else "dev=n/a"
        )
        return (
            f"V={self.n_vertices} E={self.n_edges} F={self.n_faces} "
            f"chi={self.euler_characteristic} "
            f"manifold={self.is_two_manifold} "
            f"2faced={self.two_faced_edge_fraction:.0%} "
            f"covered={self.covered_fraction:.0%} {dev}"
        )


def evaluate_mesh(network: Network, mesh: TriangularMesh) -> MeshQuality:
    """Compute :class:`MeshQuality` for a mesh built on ``network``."""
    counts = mesh.edge_face_counts()
    histogram: Dict[int, int] = {}
    for c in counts.values():
        histogram[c] = histogram.get(c, 0) + 1
    n_edges = len(mesh.edges)
    two_faced = histogram.get(2, 0) / n_edges if n_edges else 0.0

    group = mesh.group if mesh.group else list(mesh.vertices)
    covered = mesh.covered_nodes()
    covered_fraction = (
        sum(1 for g in group if g in covered) / len(group) if group else 0.0
    )

    triangles = mesh.triangles()
    mean_dev: Optional[float] = None
    max_dev: Optional[float] = None
    if triangles:
        positions = network.graph.positions
        deviations = []
        for node in group:
            p = positions[node]
            best = min(
                point_triangle_distance(
                    p, positions[a], positions[b], positions[c]
                )
                for a, b, c in triangles
            )
            deviations.append(best)
        mean_dev = float(np.mean(deviations))
        max_dev = float(np.max(deviations))

    return MeshQuality(
        n_vertices=len(mesh.vertices),
        n_edges=n_edges,
        n_faces=len(triangles),
        euler_characteristic=mesh.euler_characteristic(),
        is_two_manifold=mesh.is_two_manifold(),
        two_faced_edge_fraction=two_faced,
        edge_face_histogram=histogram,
        covered_fraction=covered_fraction,
        mean_deviation=mean_dev,
        max_deviation=max_dev,
    )
