"""Boundary-detection accuracy metrics.

Implements the exact quantities plotted in the paper's evaluation:

* Fig. 1(g) / Fig. 11(a): the number (or fraction) of boundary nodes
  *found*, and their split into *correct* (on the ground-truth boundary),
  *mistaken* (detected but not ground truth), and *missing* (ground truth
  but not detected).
* Fig. 1(h) / Fig. 11(b): the distribution of the hop distance from each
  mistaken node to the nearest correctly identified boundary node.
* Fig. 1(i) / Fig. 11(c): the same distribution for missing nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.core.pipeline import BoundaryDetectionResult
from repro.network.generator import Network
from repro.network.graph import NetworkGraph


@dataclass(frozen=True)
class DetectionStats:
    """Found/correct/mistaken/missing counts for one detection run.

    Percentages are normalized by the ground-truth boundary size, matching
    the y-axis of Fig. 11(a).
    """

    n_truth: int
    n_found: int
    n_correct: int
    n_mistaken: int
    n_missing: int

    @property
    def found_pct(self) -> float:
        """Found nodes as a fraction of the true boundary size."""
        return self.n_found / self.n_truth if self.n_truth else 0.0

    @property
    def correct_pct(self) -> float:
        """Correctly identified fraction of the true boundary."""
        return self.n_correct / self.n_truth if self.n_truth else 0.0

    @property
    def mistaken_pct(self) -> float:
        """Mistaken detections as a fraction of the true boundary size."""
        return self.n_mistaken / self.n_truth if self.n_truth else 0.0

    @property
    def missing_pct(self) -> float:
        """Missed fraction of the true boundary."""
        return self.n_missing / self.n_truth if self.n_truth else 0.0

    def as_row(self) -> str:
        """Formatted one-line summary."""
        return (
            f"truth={self.n_truth} found={self.n_found} correct={self.n_correct} "
            f"mistaken={self.n_mistaken} missing={self.n_missing}"
        )


def evaluate_detection(
    network: Network, result: BoundaryDetectionResult
) -> DetectionStats:
    """Compare a detection result against the network's ground truth."""
    truth = network.truth_boundary_set
    found = result.boundary
    correct = found & truth
    return DetectionStats(
        n_truth=len(truth),
        n_found=len(found),
        n_correct=len(correct),
        n_mistaken=len(found - truth),
        n_missing=len(truth - found),
    )


def hop_distribution(
    graph: NetworkGraph,
    from_nodes: Iterable[int],
    to_nodes: Iterable[int],
    *,
    max_bucket: int = 3,
) -> Dict[int, int]:
    """Histogram of hop distances from each source to the nearest target.

    Runs one multi-source BFS from ``to_nodes`` over the *full* graph (the
    paper measures "the shortest distance (in hops) from a mistaken
    boundary node to a correctly identified boundary node") and buckets the
    distance of every node in ``from_nodes``.

    Returns
    -------
    dict
        ``{1: count, 2: count, ..., max_bucket: count}`` plus key
        ``max_bucket + 1`` aggregating anything farther (or unreachable).
        Sources that are themselves targets count in bucket 0.
    """
    to_set: Set[int] = set(int(t) for t in to_nodes)
    from_list = [int(f) for f in from_nodes]
    buckets: Dict[int, int] = {b: 0 for b in range(0, max_bucket + 2)}
    if not from_list:
        return buckets
    hops = graph.bfs_hops(to_set) if to_set else {}
    for node in from_list:
        dist = hops.get(node)
        if dist is None or dist > max_bucket:
            buckets[max_bucket + 1] += 1
        else:
            buckets[dist] += 1
    return buckets


def mistaken_hop_distribution(
    network: Network,
    result: BoundaryDetectionResult,
    *,
    max_bucket: int = 3,
) -> Dict[int, int]:
    """Fig. 1(h)/11(b): hops from mistaken nodes to correct boundary nodes."""
    truth = network.truth_boundary_set
    correct = result.boundary & truth
    mistaken = result.boundary - truth
    return hop_distribution(network.graph, mistaken, correct, max_bucket=max_bucket)


def missing_hop_distribution(
    network: Network,
    result: BoundaryDetectionResult,
    *,
    max_bucket: int = 3,
) -> Dict[int, int]:
    """Fig. 1(i)/11(c): hops from missing nodes to correct boundary nodes."""
    truth = network.truth_boundary_set
    correct = result.boundary & truth
    missing = truth - result.boundary
    return hop_distribution(network.graph, missing, correct, max_bucket=max_bucket)


def distribution_percentages(buckets: Dict[int, int]) -> Dict[int, float]:
    """Normalize a hop histogram to fractions (empty histogram -> zeros)."""
    total = sum(buckets.values())
    if total == 0:
        return {k: 0.0 for k in buckets}
    return {k: v / total for k, v in buckets.items()}
