"""ASCII-table rendering in the shape of the paper's figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.evaluation.experiments import (
    ComplexityPoint,
    ErrorSweepPoint,
    MeshErrorPoint,
    ScenarioResult,
)
from repro.evaluation.metrics import distribution_percentages


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain fixed-width table (no external dependencies)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_error_sweep_counts(points: List[ErrorSweepPoint]) -> str:
    """Fig. 1(g): found/correct/mistaken/missing counts per error level."""
    rows = [
        (
            f"{p.level:.0%}",
            p.stats.n_found,
            p.stats.n_correct,
            p.stats.n_mistaken,
            p.stats.n_missing,
        )
        for p in points
    ]
    return format_table(
        ["error", "found", "correct", "mistaken", "missing"], rows
    )


def render_error_sweep_percent(points: List[ErrorSweepPoint]) -> str:
    """Fig. 11(a): the same series normalized by the true boundary size."""
    rows = [
        (
            f"{p.level:.0%}",
            f"{p.stats.found_pct:.1%}",
            f"{p.stats.correct_pct:.1%}",
            f"{p.stats.mistaken_pct:.1%}",
            f"{p.stats.missing_pct:.1%}",
        )
        for p in points
    ]
    return format_table(
        ["error", "found", "correct", "mistaken", "missing"], rows
    )


def _render_hop_table(points: List[ErrorSweepPoint], attr: str) -> str:
    rows = []
    for p in points:
        buckets: Dict[int, int] = getattr(p, attr)
        pct = distribution_percentages(buckets)
        rows.append(
            (
                f"{p.level:.0%}",
                f"{pct.get(1, 0.0):.1%}",
                f"{pct.get(2, 0.0):.1%}",
                f"{pct.get(3, 0.0):.1%}",
                f"{pct.get(4, 0.0):.1%}",
                sum(buckets.values()),
            )
        )
    return format_table(["error", "1 hop", "2 hop", "3 hop", ">3 hop", "n"], rows)


def render_mistaken_distribution(points: List[ErrorSweepPoint]) -> str:
    """Fig. 1(h)/11(b): mistaken-node hop distribution per error level."""
    return _render_hop_table(points, "mistaken_hops")


def render_missing_distribution(points: List[ErrorSweepPoint]) -> str:
    """Fig. 1(i)/11(c): missing-node hop distribution per error level."""
    return _render_hop_table(points, "missing_hops")


def render_scenario_result(result: ScenarioResult) -> str:
    """Figs. 6-10: one scenario's detection and mesh summary."""
    lines = [
        f"scenario: {result.scenario}",
        f"network:  {result.network_stats.as_row()}",
        f"detect:   {result.detection.as_row()}",
        f"groups:   {result.group_sizes}",
    ]
    for i, mesh in enumerate(result.meshes):
        lines.append(f"mesh[{i}]:  {mesh.as_row()}")
    return "\n".join(lines)


def render_mesh_error_sweep(points: List[MeshErrorPoint]) -> str:
    """Figs. 1(j)-(l): mesh quality per error level."""
    rows = []
    for p in points:
        for i, mesh in enumerate(p.meshes):
            rows.append(
                (
                    f"{p.level:.0%}",
                    i,
                    mesh.n_vertices,
                    mesh.n_edges,
                    mesh.n_faces,
                    mesh.euler_characteristic,
                    f"{mesh.two_faced_edge_fraction:.0%}",
                    f"{mesh.mean_deviation:.2f}" if mesh.mean_deviation is not None else "n/a",
                )
            )
    return format_table(
        ["error", "mesh", "V", "E", "F", "chi", "2-faced", "mean dev"], rows
    )


def render_complexity(points: List[ComplexityPoint]) -> str:
    """Theorem 1: balls tested versus density (expect ~quadratic growth)."""
    rows = [
        (
            f"{p.target_degree:.0f}",
            f"{p.mean_degree:.1f}",
            f"{p.mean_balls_tested:.0f}",
            f"{p.max_balls_tested:.0f}",
        )
        for p in points
    ]
    return format_table(
        ["target deg", "mean deg", "mean balls", "max balls"], rows
    )
