"""Degradation experiments: boundary detection under channel faults.

The paper's error sweeps (Figs. 1(g-i), 11) vary *measurement* noise but
assume perfectly reliable message delivery.  This driver attacks the other
axis: it fixes the sensing (UBF candidacy from true local frames) and runs
the communication phases -- IFF's TTL-bounded flood and min-label grouping
-- as actual message-level protocols over a faulty channel drawn from a
:class:`repro.runtime.faults.FaultPlan`, sweeping message-loss rate and
node-crash fraction.  Each sweep cell reports boundary-detection
precision/recall/F1 against ground truth plus the message overhead, with
and without the :class:`repro.runtime.protocols.ReliableProtocol`
ack/retransmit wrapper.

Everything is seeded: one ``seed`` reproduces the full sweep, each cell
drawing from its own deterministic substream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import DetectorConfig
from repro.core.ubf import candidates_from_outcomes, run_ubf
from repro.evaluation.reporting import format_table
from repro.evaluation.seeding import cell_rng, fault_cell_identity
from repro.network.generator import DeploymentConfig, Network, generate_network
from repro.observability.tracer import ensure_tracer
from repro.runtime.faults import FaultPlan, sample_crashes
from repro.runtime.protocols import (
    RetryPolicy,
    reliable_stats,
    run_grouping_distributed,
    run_iff_distributed,
)
from repro.shapes.library import scenario_by_name


def precision_recall_f1(
    found: Set[int], truth: Set[int]
) -> Tuple[float, float, float]:
    """Standard detection scores; empty sets score 1.0 against each other."""
    tp = len(found & truth)
    precision = tp / len(found) if found else (1.0 if not truth else 0.0)
    recall = tp / len(truth) if truth else 1.0
    denom = precision + recall
    f1 = 2.0 * precision * recall / denom if denom else 0.0
    return precision, recall, f1


@dataclass(frozen=True)
class RobustnessPoint:
    """Detection outcome of one (loss, crash) sweep cell.

    ``messages_sent``/``messages_dropped`` cover both communication phases
    (IFF flood + grouping); ``retransmissions``/``gave_up`` are zero when
    the cell ran without the reliable wrapper.
    """

    loss_rate: float
    crash_fraction: float
    reliable: bool
    precision: float
    recall: float
    f1: float
    n_found: int
    n_truth: int
    n_groups: int
    messages_sent: int
    messages_dropped: int
    retransmissions: int
    gave_up: int
    rounds: int
    quiesced: bool


def run_fault_cell(
    network: Network,
    loss_rate: float,
    crash_fraction: float,
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    retry_policy: Optional[RetryPolicy] = None,
    seed: int = 0,
    max_rounds: int = 10_000,
    candidates: Optional[Set[int]] = None,
    tracer=None,
) -> RobustnessPoint:
    """One ``(loss, crash)`` fault cell, a pure function of its identity.

    The cell's fault plan and channel draws come from the
    identity-derived substream ``default_rng([seed, cell])`` (see
    :mod:`repro.evaluation.seeding`), so its :class:`RobustnessPoint` is
    byte-identical whether the cell runs standalone, inside
    :func:`run_robustness_sweep`, or as a campaign job.  Raw and reliable
    runs of the same cell share the substream, keeping their comparison
    paired (same crash sample, same channel).

    ``candidates`` lets a sweep pass in the fault-free UBF candidacy it
    computed once; omitted, the cell recomputes it (deterministic, so the
    result is unchanged).
    """
    tracer = ensure_tracer(tracer)
    with tracer.span(
        "robustness.cell",
        loss_rate=loss_rate,
        crash_fraction=crash_fraction,
        reliable=retry_policy is not None,
    ) as cell_span:
        if candidates is None:
            outcomes = run_ubf(network, detector_config.ubf)
            candidates = candidates_from_outcomes(outcomes)
        truth = network.truth_boundary_set
        theta = detector_config.iff.theta
        ttl = detector_config.iff.ttl
        rng = cell_rng(seed, fault_cell_identity(loss_rate, crash_fraction))
        crashes = sample_crashes(candidates, crash_fraction, rng)
        plan = FaultPlan(loss_rate=loss_rate, crashes=crashes)
        survivors, iff_result = run_iff_distributed(
            network.graph,
            candidates,
            theta,
            ttl,
            fault_plan=plan,
            retry_policy=retry_policy,
            rng=rng,
            max_rounds=max_rounds,
        )
        labels, grp_result = run_grouping_distributed(
            network.graph,
            survivors,
            fault_plan=plan,
            retry_policy=retry_policy,
            rng=rng,
            max_rounds=max_rounds,
        )
        precision, recall, f1 = precision_recall_f1(survivors, truth)
        retry = reliable_stats(iff_result)
        retry_grp = reliable_stats(grp_result)
        point = RobustnessPoint(
            loss_rate=loss_rate,
            crash_fraction=crash_fraction,
            reliable=retry_policy is not None,
            precision=precision,
            recall=recall,
            f1=f1,
            n_found=len(survivors),
            n_truth=len(truth),
            n_groups=len(set(labels.values())),
            messages_sent=iff_result.messages_sent + grp_result.messages_sent,
            messages_dropped=iff_result.messages_dropped
            + grp_result.messages_dropped,
            retransmissions=retry.retransmissions + retry_grp.retransmissions,
            gave_up=retry.gave_up + retry_grp.gave_up,
            rounds=iff_result.rounds + grp_result.rounds,
            quiesced=iff_result.quiesced and grp_result.quiesced,
        )
        if tracer.enabled:
            cell_span.set_many(
                {
                    "precision": point.precision,
                    "recall": point.recall,
                    "f1": point.f1,
                    "n_found": point.n_found,
                    "n_groups": point.n_groups,
                    "messages_sent": point.messages_sent,
                    "messages_dropped": point.messages_dropped,
                    "retransmissions": point.retransmissions,
                    "gave_up": point.gave_up,
                    "rounds": point.rounds,
                    "quiesced": point.quiesced,
                }
            )
    return point


def run_robustness_sweep(
    network: Network,
    loss_rates: Sequence[float] = (0.0, 0.1, 0.3),
    crash_fractions: Sequence[float] = (0.0,),
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    retry_policy: Optional[RetryPolicy] = None,
    seed: int = 0,
    max_rounds: int = 10_000,
    tracer=None,
) -> List[RobustnessPoint]:
    """Sweep channel faults over the communication phases of detection.

    UBF candidacy is computed once, fault-free, from true local frames --
    channel faults cannot corrupt a node's geometric self-test, only the
    flood traffic that follows (the measurement-error axis is the existing
    :func:`repro.evaluation.experiments.run_error_sweep`).  Every
    ``(crash_fraction, loss_rate)`` cell is one :func:`run_fault_cell`
    invocation drawing from its identity-derived substream, so the sweep
    is exactly the concatenation of its standalone cells (order- and
    shape-independent); ``retry_policy`` switches the per-hop reliable
    wrapper on.

    ``tracer`` (optional :class:`repro.observability.Tracer`) wraps the
    sweep in a ``robustness.sweep`` span with one ``robustness.cell``
    child per ``(loss, crash)`` cell carrying its fault knobs and the
    point's detection/overhead observables.

    Returns one :class:`RobustnessPoint` per cell, in
    ``crash_fractions x loss_rates`` row-major order.
    """
    tracer = ensure_tracer(tracer)
    with tracer.span(
        "robustness.sweep",
        n_cells=len(crash_fractions) * len(loss_rates),
        reliable=retry_policy is not None,
        seed=seed,
    ) as sweep_span:
        outcomes = run_ubf(network, detector_config.ubf)
        candidates = candidates_from_outcomes(outcomes)
        if tracer.enabled:
            sweep_span.set("n_candidates", len(candidates))
            sweep_span.set("n_truth", len(network.truth_boundary_set))

        points: List[RobustnessPoint] = []
        for crash_fraction in crash_fractions:
            for loss in loss_rates:
                points.append(
                    run_fault_cell(
                        network,
                        loss,
                        crash_fraction,
                        detector_config=detector_config,
                        retry_policy=retry_policy,
                        seed=seed,
                        max_rounds=max_rounds,
                        candidates=candidates,
                        tracer=tracer,
                    )
                )
    return points


def run_scenario_robustness(
    scenario: str,
    deployment: DeploymentConfig = DeploymentConfig(),
    loss_rates: Sequence[float] = (0.0, 0.1, 0.3),
    crash_fractions: Sequence[float] = (0.0,),
    *,
    detector_config: DetectorConfig = DetectorConfig(),
    retry_policy: Optional[RetryPolicy] = None,
    seed: int = 0,
    max_rounds: int = 10_000,
    tracer=None,
) -> List[RobustnessPoint]:
    """Generate one scenario network and run the robustness sweep on it."""
    network = generate_network(
        scenario_by_name(scenario), deployment, scenario=scenario
    )
    return run_robustness_sweep(
        network,
        loss_rates,
        crash_fractions,
        detector_config=detector_config,
        retry_policy=retry_policy,
        seed=seed,
        max_rounds=max_rounds,
        tracer=tracer,
    )


def render_robustness_table(points: Iterable[RobustnessPoint]) -> str:
    """ASCII degradation table, one row per sweep cell."""
    rows = [
        (
            f"{p.loss_rate:.0%}",
            f"{p.crash_fraction:.0%}",
            "yes" if p.reliable else "no",
            p.n_found,
            f"{p.precision:.3f}",
            f"{p.recall:.3f}",
            f"{p.f1:.3f}",
            p.n_groups,
            p.messages_sent,
            p.messages_dropped,
            p.retransmissions,
            p.gave_up,
            p.rounds,
        )
        for p in points
    ]
    return format_table(
        [
            "loss",
            "crash",
            "reliable",
            "found",
            "precision",
            "recall",
            "F1",
            "groups",
            "msgs",
            "dropped",
            "retx",
            "gaveup",
            "rounds",
        ],
        rows,
    )
