"""Identity-derived RNG substreams for sweep cells.

The experiment drivers used to derive each sweep cell's random substream
from the cell's *position* in the sweep (``default_rng([seed, index])``),
which made a cell's result depend on which other cells happened to be in
the same grid: the ``loss=0.3`` cell of a three-point sweep drew from a
different stream than the same cell run alone.  That breaks the campaign
manager's memoization contract -- a cell must be a pure function of its
own identity so that running it standalone, inside a hand-rolled sweep,
or as a job-service campaign cell all produce byte-identical results.

:func:`cell_substream` replaces the positional index with a stable
64-bit digest of the cell's *semantic identity* (its axis values, sorted
JSON, SHA-256), keeping the paper's ``default_rng([seed, cell])``
two-word seeding pattern but making ``cell`` content-addressed -- the
same derivation the job store's result cache uses for whole jobs
(:meth:`repro.service.jobstore.JobSpec.cache_key`).

Identity dictionaries must hold plain JSON scalars; numpy scalars are
normalized so ``np.float64(0.1)`` and ``0.1`` name the same cell.
"""

from __future__ import annotations

import hashlib
import json
import numbers
from typing import Any, Dict, Mapping

import numpy as np

__all__ = ["cell_substream", "cell_rng", "error_cell_identity", "fault_cell_identity"]


def _normalize(value: Any) -> Any:
    """Coerce numpy scalars to plain Python so the JSON form is canonical."""
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, str) or value is None:
        return value
    raise TypeError(
        f"cell identity values must be JSON scalars, got {type(value).__name__}"
    )


def cell_substream(identity: Mapping[str, Any]) -> int:
    """Stable 64-bit substream word for one sweep cell.

    The word is the leading 16 hex digits of the SHA-256 over the
    sorted-keys JSON of ``identity``; combine it with the sweep seed as
    ``np.random.default_rng([seed, cell_substream(identity)])`` (or use
    :func:`cell_rng`).  Equal identities -- regardless of sweep shape,
    cell order, or how the cell was invoked -- always yield the same
    substream.
    """
    canonical: Dict[str, Any] = {
        str(key): _normalize(value) for key, value in identity.items()
    }
    payload = json.dumps(canonical, sort_keys=True)
    return int(hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16], 16)


def cell_rng(seed: int, identity: Mapping[str, Any]) -> np.random.Generator:
    """The ``default_rng([seed, cell])`` generator for one sweep cell."""
    return np.random.default_rng([int(seed), cell_substream(identity)])


def error_cell_identity(level: float) -> Dict[str, Any]:
    """Identity of one measurement-error sweep cell (Figs. 1(g-i))."""
    return {"cell": "error", "level": float(level)}


def fault_cell_identity(loss_rate: float, crash_fraction: float) -> Dict[str, Any]:
    """Identity of one channel-fault sweep cell (loss x crash grid).

    Deliberately excludes the reliable/raw mode: the raw and reliable
    runs of the same ``(loss, crash)`` cell share a substream so their
    comparison is paired (same crash sample, same channel draws).
    """
    return {
        "cell": "robustness",
        "crash": float(crash_fraction),
        "loss": float(loss_rate),
    }
