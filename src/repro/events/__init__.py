"""Event monitoring: detecting voids left by destroyed nodes.

The paper opens with the event-boundary motivation: "upon a fire, the
sensors located in the fire are likely destroyed (and thus resulting a
void area of failed nodes)" (Sec. I-A).  This package turns that story
into library code:

* :mod:`repro.events.models` -- event regions that destroy the nodes
  inside them, producing a survivor network plus the ID bookkeeping;
* :mod:`repro.events.monitor` -- before/after boundary detection and the
  comparison that surfaces *new* boundary groups as event boundaries,
  with precision/coverage metrics against the true event frontier.
"""

from repro.events.models import EventOutcome, ShapeEvent, SphericalEvent, apply_event
from repro.events.monitor import EventDetectionReport, EventMonitor, frontier_truth

__all__ = [
    "SphericalEvent",
    "ShapeEvent",
    "EventOutcome",
    "apply_event",
    "EventMonitor",
    "EventDetectionReport",
    "frontier_truth",
]
