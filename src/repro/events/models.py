"""Event regions and their effect on a deployed network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.shapes.base import Shape3D


class EventRegion:
    """A region of space whose nodes an event destroys."""

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside the event region."""
        raise NotImplementedError


@dataclass(frozen=True)
class SphericalEvent(EventRegion):
    """A ball-shaped event (fire, plume, jamming zone).

    Coordinates are in radio-range units (the deployed network's frame).
    """

    center: tuple
    radius: float

    def __post_init__(self):
        if self.radius <= 0:
            raise ValueError("event radius must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        center = np.asarray(self.center, dtype=float)
        diff = np.asarray(points, dtype=float) - center
        return np.einsum("ij,ij->i", diff, diff) <= self.radius ** 2


@dataclass(frozen=True)
class ShapeEvent(EventRegion):
    """An event region given by any :class:`repro.shapes.Shape3D`.

    ``scale`` maps the shape's model units into the network's radio-range
    units (use ``network.scale`` when the shape was authored in the same
    model frame as the deployment shape).
    """

    shape: Shape3D
    scale: float = 1.0

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.shape.contains(np.asarray(points, dtype=float) / self.scale)


@dataclass
class EventOutcome:
    """A survivor network plus the bookkeeping to compare against 'before'.

    Attributes
    ----------
    survivor:
        The post-event network (nodes re-labeled compactly; radio range
        still 1).
    alive_original_ids:
        ``alive_original_ids[new_id] = old_id`` mapping.
    destroyed_original_ids:
        Old IDs of the destroyed nodes (sorted).
    """

    survivor: Network
    alive_original_ids: np.ndarray
    destroyed_original_ids: np.ndarray

    @property
    def n_destroyed(self) -> int:
        """How many nodes the event destroyed."""
        return int(self.destroyed_original_ids.size)


def apply_event(network: Network, event: EventRegion) -> EventOutcome:
    """Destroy every node inside ``event`` and rebuild connectivity.

    The survivor network keeps the original positions (re-labeled) and
    re-derives adjacency with the same radio range; ground-truth boundary
    flags carry over so detection statistics remain comparable.
    """
    positions = network.graph.positions
    dead_mask = event.contains(positions)
    alive_ids = np.flatnonzero(~dead_mask)
    dead_ids = np.flatnonzero(dead_mask)
    graph = NetworkGraph(positions[alive_ids], radio_range=network.graph.radio_range)
    survivor = Network(
        graph=graph,
        truth_boundary=network.truth_boundary[alive_ids].copy(),
        scenario=network.scenario + "+event",
        scale=network.scale,
        config=network.config,
    )
    return EventOutcome(
        survivor=survivor,
        alive_original_ids=alive_ids,
        destroyed_original_ids=dead_ids,
    )
