"""Before/after boundary comparison: surfacing event boundaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.core.config import DetectorConfig, IFFConfig
from repro.core.pipeline import BoundaryDetectionResult, BoundaryDetector
from repro.events.models import EventOutcome, EventRegion, apply_event
from repro.network.generator import Network


def frontier_truth(
    outcome: EventOutcome,
    event: EventRegion,
    *,
    margin: float = 1.0,
) -> Set[int]:
    """Survivor nodes on the true event frontier.

    The frontier is every surviving node within ``margin`` radio ranges of
    the destroyed region -- the nodes a perfect detector would report as
    the new hole's boundary.  Computed against the event region itself so
    it stays meaningful even when the event destroyed zero nodes.
    """
    positions = outcome.survivor.graph.positions
    # Distance to the event region, probed by shrinking the margin ball:
    # a node is on the frontier iff some point of the event region lies
    # within `margin`.  For the shipped region types it suffices to test
    # region membership of the node's nearest region point; spherical
    # events allow the exact computation below, generic shapes fall back
    # to a membership test on a dilated sample.
    from repro.events.models import SphericalEvent

    if isinstance(event, SphericalEvent):
        center = np.asarray(event.center, dtype=float)
        dist = np.linalg.norm(positions - center, axis=1) - event.radius
        return set(np.flatnonzero(dist <= margin).tolist())
    # Generic fallback: sample the margin ball around each node.
    frontier: Set[int] = set()
    rng = np.random.default_rng(0)
    probes = rng.normal(size=(64, 3))
    probes /= np.linalg.norm(probes, axis=1, keepdims=True)
    probes *= rng.uniform(0, margin, size=(64, 1))
    for node, position in enumerate(positions):
        if event.contains(position[None, :] + probes).any():
            frontier.add(node)
    return frontier


@dataclass
class EventDetectionReport:
    """Outcome of post-event boundary monitoring.

    Attributes
    ----------
    outcome:
        The event application (survivor network + ID maps).
    detection:
        Post-event boundary detection result.
    event_groups:
        Detected boundary groups attributed to the event (all groups
        beyond the largest, which is the outer boundary).
    frontier:
        Ground-truth frontier node set (survivor IDs).
    precision:
        Fraction of event-group nodes that lie on the true frontier.
    coverage:
        Fraction of *interior* frontier nodes (frontier minus the original
        outer boundary) that the event groups contain.
    """

    outcome: EventOutcome
    detection: BoundaryDetectionResult
    event_groups: List[List[int]] = field(default_factory=list)
    frontier: Set[int] = field(default_factory=set)
    precision: float = 0.0
    coverage: float = 0.0

    @property
    def event_detected(self) -> bool:
        """Whether any event boundary group was found."""
        return bool(self.event_groups)


class EventMonitor:
    """Detects event-created holes by comparing boundary structure.

    Parameters
    ----------
    detector_config:
        Pipeline configuration; the default lowers IFF's theta to 10 so
        small event holes (fewer boundary nodes than a paper-default
        icosahedron bound assumes) survive filtering.
    """

    def __init__(self, detector_config: Optional[DetectorConfig] = None):
        self.config = detector_config or DetectorConfig(
            iff=IFFConfig(theta=10, ttl=3)
        )

    def inspect(
        self,
        network: Network,
        event: EventRegion,
        *,
        frontier_margin: float = 1.0,
    ) -> EventDetectionReport:
        """Apply ``event`` to ``network`` and report the detected hole(s)."""
        outcome = apply_event(network, event)
        detection = BoundaryDetector(self.config).detect(outcome.survivor)
        event_groups = [list(g) for g in detection.groups[1:]]
        frontier = frontier_truth(outcome, event, margin=frontier_margin)

        event_nodes: Set[int] = set()
        for group in event_groups:
            event_nodes.update(group)
        precision = (
            len(event_nodes & frontier) / len(event_nodes) if event_nodes else 0.0
        )
        original_boundary = set(
            np.flatnonzero(outcome.survivor.truth_boundary).tolist()
        )
        interior_frontier = frontier - original_boundary
        coverage = (
            len(event_nodes & interior_frontier) / len(interior_frontier)
            if interior_frontier
            else 0.0
        )
        return EventDetectionReport(
            outcome=outcome,
            detection=detection,
            event_groups=event_groups,
            frontier=frontier,
            precision=precision,
            coverage=coverage,
        )
