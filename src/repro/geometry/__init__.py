"""Geometry kernel for the 3D boundary-detection reproduction.

This package provides the low-level geometric machinery that the paper's
algorithms are built on:

* :mod:`repro.geometry.primitives` -- vector helpers, circumcenters,
  pairwise distances.
* :mod:`repro.geometry.ballfit` -- the unit-ball-through-three-points solver
  used by the Unit Ball Fitting (UBF) algorithm (Sec. II of the paper).
* :mod:`repro.geometry.spatial_index` -- a uniform grid for fixed-radius
  neighbor queries, used to build unit-ball graphs efficiently.
* :mod:`repro.geometry.mds` -- classical multidimensional scaling with
  shortest-path completion, the local-coordinates substrate (Sec. II-A3,
  step I).
* :mod:`repro.geometry.transforms` -- rigid alignment (Procrustes) used by
  tests and evaluation to compare local coordinate frames.
"""

from repro.geometry.ballfit import (
    BallFitResult,
    balls_through_three_points,
    balls_through_point_pairs,
    empty_ball_exists,
)
from repro.geometry.mds import (
    classical_mds,
    complete_distance_matrix,
    local_mds_embedding,
)
from repro.geometry.primitives import (
    circumcenter,
    circumradius,
    norm,
    normalize,
    pairwise_distances,
    triangle_area,
)
from repro.geometry.spatial_index import UniformGridIndex
from repro.geometry.transforms import (
    kabsch_align,
    procrustes_disparity,
    random_rotation_matrix,
)

__all__ = [
    "BallFitResult",
    "balls_through_three_points",
    "balls_through_point_pairs",
    "empty_ball_exists",
    "classical_mds",
    "complete_distance_matrix",
    "local_mds_embedding",
    "circumcenter",
    "circumradius",
    "norm",
    "normalize",
    "pairwise_distances",
    "triangle_area",
    "UniformGridIndex",
    "kabsch_align",
    "procrustes_disparity",
    "random_rotation_matrix",
]
