"""Unit-ball fitting: spheres of fixed radius through three points.

This module implements the geometric core of the paper's Unit Ball Fitting
(UBF) algorithm (Sec. II-A).  Given a node *i* and two of its neighbors *j*
and *k*, Eq. (1) of the paper asks for the centers ``(x, y, z)`` of balls of
radius ``r`` whose surface passes through all three nodes.  Depending on the
triangle ``i j k`` the system has zero, one, or two solutions:

* if the circumradius of the triangle exceeds ``r`` there is no such ball;
* if it equals ``r`` the unique center is the triangle's circumcenter;
* otherwise the two centers sit symmetrically on the line through the
  circumcenter perpendicular to the triangle's plane, at offset
  ``h = sqrt(r^2 - R_circ^2)``.

A candidate ball is *empty* when no other node of the one-hop neighborhood
lies strictly inside it; by Lemma 1 an empty candidate ball certifies that
the node can construct an empty unit ball touching itself, i.e. that it is a
boundary node.

Kernels
-------
The emptiness search ships in four interchangeable implementations selected
by the ``kernel`` argument of :func:`empty_ball_exists` (and batch-wide by
:func:`empty_ball_exists_batch`):

``"naive"``
    The literal per-pair reading of Algorithm 1: a Python loop over neighbor
    pairs, the scalar Eq.-1 solver per pair, and a point-by-point probe loop
    per candidate ball.  Slow by design -- it is the differential-test
    oracle the other kernels are checked against, and the baseline the
    ``repro-bench`` speedup criterion is measured from.

``"vectorized"``
    All candidate centers for the node are produced in one batched Eq.-1
    evaluation (:func:`balls_through_point_pairs`) and emptiness is decided
    from broadcasted distance matrices, processed in chunks of
    ``chunk_size`` candidates so the common "an empty ball appears early"
    case exits before touching the remaining candidates.

``"batched"``
    The network-batched kernel: candidate balls of *all* nodes in a batch
    are flattened into one node-major, pair-major workset (one Eq.-1
    evaluation over every neighbor pair of every node), and emptiness runs
    in synchronized waves -- each wave advances every still-active node by
    ``chunk_size`` candidates with one broadcast distance computation for
    the whole batch, so the per-node Python dispatch of the vectorized
    kernel disappears while the chunk-granular early exit is preserved.

``"native"``
    The batched enumeration above, with the emptiness scan handed to the
    ``ubf_empty_check`` C kernel (:mod:`repro.geometry.native`): a true
    per-point early-exit loop per candidate, one call per batch.  Falls
    back to ``"batched"`` -- same results by construction -- when no C
    compiler is available or ``REPRO_NATIVE=0`` disables native kernels.

All kernels enumerate candidates in the same canonical order (node-major,
lexicographic neighbor pairs, the ``+offset`` center before the ``-offset``
center) and report identical observables: the same boundary verdict, the
same witness ball, and the same ``balls_tested`` / ``points_checked``
counters.  The counters are *semantic* work counts -- the number of
candidate balls and point probes the sequential algorithm performs, with
per-ball early exit at the first strictly-inside point -- so they are
hardware- and implementation-independent observables of Theorem 1's
``Theta(rho^2)`` candidate bound and ``Theta(rho^3)`` total probe bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import DEGENERACY_TOL, as_point, as_points

#: Relative slack used when testing whether a node is strictly inside a ball.
#: The three defining nodes sit numerically *on* the sphere; the slack keeps
#: them (and any other exactly-on-sphere node) from counting as inside.
INSIDE_TOL = 1e-7

#: Radius-relative floor below which two of the three points count as
#: coincident (degenerate triple).  Side lengths this far under the ball
#: radius are rounding noise, not geometry: resolving them would make the
#: verdict depend on cancellation (e.g. flip under translation).  Scaling
#: coordinates and radius together leaves the test invariant.
COINCIDENT_TOL = 1e-7

#: Kernel names accepted by :func:`empty_ball_exists`.
KERNELS = ("naive", "vectorized", "batched", "native")

#: Candidate balls processed per distance-matrix batch in the vectorized
#: kernel.  Small enough that a boundary node whose first empty ball sits
#: among the early pairs never materializes the full candidate family,
#: large enough that interior nodes amortize the numpy dispatch overhead.
DEFAULT_CHUNK_SIZE = 64

#: Neighbor pairs evaluated per Eq.-1 block in the batched enumeration.
#: Purely a memory bound (each block materializes a handful of ``(B, 3)``
#: temporaries); results never depend on it because every step is
#: row-wise.
BATCH_PAIR_BLOCK = 1 << 20

#: Ball-point distance entries per broadcast in the batched emptiness
#: waves; bounds the ``(balls, probes, 3)`` temporaries to a few dozen MB.
#: A memory knob only -- counters and verdicts are independent of it.
BATCH_PROBE_BUDGET = 1 << 21

#: Probe columns scanned per early-exit round of :func:`_batch_probe`.
#: Most candidate balls contain a neighborhood point within the first few
#: probes, so narrow rounds retire them without touching the rest of the
#: collection.  A work/overhead knob only -- results are independent.
PROBE_COL_WAVE = 16


def balls_through_three_points(p1, p2, p3, radius: float) -> List[np.ndarray]:
    """Centers of all balls of ``radius`` whose surface contains three points.

    Parameters
    ----------
    p1, p2, p3:
        The three points (3-vectors).
    radius:
        Ball radius ``r``; the paper uses ``r = 1 + eps`` with the radio
        range normalized to 1.

    Returns
    -------
    list of numpy.ndarray
        Zero, one, or two center points.  Collinear (degenerate) triples
        yield an empty list: a line has infinite circumradius, so no ball of
        finite radius passes through it in a well-defined way, matching
        Definition 3's exclusion of degenerate line segments.  Two-solution
        cases list the ``+offset`` center (along ``cross(p2-p1, p3-p1)``)
        first -- the canonical enumeration order shared with
        :func:`balls_through_point_pairs`.
    """
    p1 = as_point(p1)
    a = as_point(p2) - p1
    b = as_point(p3) - p1
    n = np.cross(a, b)
    n2 = float(np.dot(n, n))
    aa = float(np.dot(a, a))
    bb = float(np.dot(b, b))
    # Relative degeneracy tests: sides below the radius-relative
    # coincidence floor, then |a x b|^2 = |a|^2 |b|^2 sin^2(theta), so
    # n2 <= tol * aa * bb means sin^2(theta) <= tol regardless of scale.
    # An absolute cutoff on n2 (which grows as scale^4) would flip
    # near-degenerate verdicts under uniform scaling of the network.
    coincident_sq = (COINCIDENT_TOL * radius) ** 2
    if aa <= coincident_sq or bb <= coincident_sq:
        return []
    if n2 <= DEGENERACY_TOL * aa * bb:
        return []
    center0 = p1 + (aa * np.cross(b, n) + bb * np.cross(n, a)) / (2.0 * n2)
    circum_sq = float(np.dot(center0 - p1, center0 - p1))
    h_sq = radius * radius - circum_sq
    if h_sq < -INSIDE_TOL * radius * radius:
        return []
    if h_sq <= (INSIDE_TOL * radius) ** 2:
        return [center0]
    offset = np.sqrt(h_sq) * (n / np.sqrt(n2))
    return [center0 + offset, center0 - offset]


def balls_through_point_pairs(
    origin, others: Sequence, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized candidate-ball centers for UBF at one node.

    Computes, for every unordered pair ``(j, k)`` of points in ``others``,
    the centers of the balls of radius ``radius`` through
    ``(origin, others[j], others[k])`` in one batched evaluation of Eq. (1).

    Parameters
    ----------
    origin:
        The testing node's own position.
    others:
        Positions of its one-hop neighbors, shape ``(m, 3)``.
    radius:
        Ball radius.

    Returns
    -------
    (centers, pair_indices)
        ``centers`` is a ``(K, 3)`` array of all valid ball centers and
        ``pair_indices`` a ``(K, 2)`` integer array giving, for each center,
        the indices into ``others`` of the two neighbors that define it.
        Both are empty when fewer than two neighbors are supplied.

        Ordering is canonical and matches a per-pair loop over
        :func:`balls_through_three_points`: pairs enumerate
        lexicographically (``(0,1), (0,2), ..., (1,2), ...``) and
        two-solution pairs list the ``+offset`` center before the
        ``-offset`` center.  Tangent pairs (circumradius numerically equal
        to ``radius``) contribute their single circumcenter once.
    """
    origin = as_point(origin)
    pts = as_points(others) if len(others) else np.empty((0, 3))
    m = pts.shape[0]
    if m < 2:
        return np.empty((0, 3)), np.empty((0, 2), dtype=int)

    j_idx, k_idx = np.triu_indices(m, k=1)
    a = pts[j_idx] - origin  # (P, 3)
    b = pts[k_idx] - origin  # (P, 3)
    n = np.cross(a, b)
    n2 = np.einsum("ij,ij->i", n, n)
    aa = np.einsum("ij,ij->i", a, a)
    bb = np.einsum("ij,ij->i", b, b)
    # Same scale-invariant degeneracy tests as balls_through_three_points
    # (coincidence floor + sin^2(theta) > tol), keeping the two kernels
    # verdict-identical.
    coincident_sq = (COINCIDENT_TOL * radius) ** 2
    valid = (
        (aa > coincident_sq) & (bb > coincident_sq) & (n2 > DEGENERACY_TOL * aa * bb)
    )
    if not np.any(valid):
        return np.empty((0, 3)), np.empty((0, 2), dtype=int)

    a, b, n, n2 = a[valid], b[valid], n[valid], n2[valid]
    aa, bb = aa[valid][:, None], bb[valid][:, None]
    j_idx, k_idx = j_idx[valid], k_idx[valid]

    center0 = origin + (aa * np.cross(b, n) + bb * np.cross(n, a)) / (2.0 * n2[:, None])

    circum_sq = np.einsum("ij,ij->i", center0 - origin, center0 - origin)
    h_sq = radius * radius - circum_sq
    fits = h_sq > -INSIDE_TOL * radius * radius
    if not np.any(fits):
        return np.empty((0, 3)), np.empty((0, 2), dtype=int)

    center0, n, n2, h_sq = center0[fits], n[fits], n2[fits], h_sq[fits]
    j_idx, k_idx = j_idx[fits], k_idx[fits]

    tangent = h_sq <= (INSIDE_TOL * radius) ** 2
    h = np.sqrt(np.clip(h_sq, 0.0, None))
    unit_n = n / np.sqrt(n2)[:, None]
    offset = h[:, None] * unit_n

    # Interleave pair-major: each pair contributes [center+, center-] (or
    # just the circumcenter when tangent), preserving the naive loop order.
    counts = np.where(tangent, 1, 2)
    starts = np.cumsum(counts) - counts
    total = int(counts.sum())
    centers = np.empty((total, 3))
    centers[starts] = np.where(tangent[:, None], center0, center0 + offset)
    minus_rows = starts[~tangent] + 1
    centers[minus_rows] = (center0 - offset)[~tangent]
    pairs = np.repeat(np.column_stack([j_idx, k_idx]), counts, axis=0)
    return centers, pairs


@dataclass
class BallFitResult:
    """Outcome of a full UBF emptiness search at one node.

    Attributes
    ----------
    is_boundary:
        True when at least one empty candidate ball exists.
    empty_center:
        Center of the first empty ball found, or None.
    witness_pair:
        Indices (into the neighbor array) of the two neighbors that define
        the empty ball, or None.
    balls_tested:
        Number of candidate balls examined before the search stopped; a
        direct observable for the Theta(rho^2) bound of Theorem 1.
    points_checked:
        Number of point probes performed across the tested balls, with
        per-ball early exit at the first strictly-inside point; the
        observable behind Theorem 1's Theta(rho) checks per ball /
        Theta(rho^3) total bound.  Identical for both kernels by contract.
    """

    is_boundary: bool
    empty_center: Optional[np.ndarray] = None
    witness_pair: Optional[Tuple[int, int]] = None
    balls_tested: int = 0
    points_checked: int = 0


def _inside_threshold(radius: float) -> float:
    """Squared strict-inside threshold shared by both kernels."""
    return (radius * (1.0 - INSIDE_TOL)) ** 2


def _naive_search(
    origin: np.ndarray,
    pts: np.ndarray,
    check: np.ndarray,
    radius: float,
    find_first: bool,
) -> BallFitResult:
    """Per-pair Python oracle: scalar Eq.-1 solver, point-by-point probes."""
    threshold = _inside_threshold(radius)
    probe_rows: List[Tuple[float, float, float]] = [
        (float(origin[0]), float(origin[1]), float(origin[2]))
    ]
    probe_rows.extend((float(p[0]), float(p[1]), float(p[2])) for p in check)

    tested = 0
    checked = 0
    witness: Optional[Tuple[np.ndarray, Tuple[int, int]]] = None
    m = pts.shape[0]
    for j in range(m - 1):
        for k in range(j + 1, m):
            for center in balls_through_three_points(origin, pts[j], pts[k], radius):
                tested += 1
                cx = float(center[0])
                cy = float(center[1])
                cz = float(center[2])
                inside = False
                for px, py, pz in probe_rows:
                    checked += 1
                    dx = cx - px
                    dy = cy - py
                    dz = cz - pz
                    if dx * dx + dy * dy + dz * dz < threshold:
                        inside = True
                        break
                if not inside and witness is None:
                    witness = (center.copy(), (j, k))
                    if find_first:
                        return BallFitResult(
                            is_boundary=True,
                            empty_center=witness[0],
                            witness_pair=witness[1],
                            balls_tested=tested,
                            points_checked=checked,
                        )
    if tested == 0:
        # No candidate ball fits through any neighbor pair: every triangle's
        # circumradius exceeds r.  Such a node sits against empty space.
        return BallFitResult(is_boundary=True, balls_tested=0, points_checked=0)
    if witness is None:
        return BallFitResult(
            is_boundary=False, balls_tested=tested, points_checked=checked
        )
    return BallFitResult(
        is_boundary=True,
        empty_center=witness[0],
        witness_pair=witness[1],
        balls_tested=tested,
        points_checked=checked,
    )


def _vectorized_search(
    origin: np.ndarray,
    pts: np.ndarray,
    check: np.ndarray,
    radius: float,
    find_first: bool,
    chunk_size: int,
) -> BallFitResult:
    """Batched kernel: one Eq.-1 evaluation, chunked distance matrices."""
    centers, pairs = balls_through_point_pairs(origin, pts, radius)
    n_candidates = centers.shape[0]
    if n_candidates == 0:
        return BallFitResult(is_boundary=True, balls_tested=0, points_checked=0)

    all_points = np.vstack([origin[None, :], check])
    n_points = all_points.shape[0]
    threshold = _inside_threshold(radius)

    tested = 0
    checked = 0
    witness_idx = -1
    for start in range(0, n_candidates, chunk_size):
        chunk = centers[start : start + chunk_size]
        diff = chunk[:, None, :] - all_points[None, :, :]
        dist_sq = np.einsum("ijk,ijk->ij", diff, diff)
        inside = dist_sq < threshold
        inside_any = inside.any(axis=1)
        # Semantic probe count per ball: index of the first inside point
        # plus one, or the full point set when the ball is empty -- exactly
        # what the naive per-point loop performs.
        probes = np.where(inside_any, inside.argmax(axis=1) + 1, n_points)
        empty_local = np.flatnonzero(~inside_any)
        if find_first and empty_local.size:
            first = int(empty_local[0])
            tested += first + 1
            checked += int(probes[: first + 1].sum())
            hit = start + first
            return BallFitResult(
                is_boundary=True,
                empty_center=centers[hit].copy(),
                witness_pair=(int(pairs[hit, 0]), int(pairs[hit, 1])),
                balls_tested=tested,
                points_checked=checked,
            )
        tested += chunk.shape[0]
        checked += int(probes.sum())
        if witness_idx < 0 and empty_local.size:
            witness_idx = start + int(empty_local[0])

    if witness_idx < 0:
        return BallFitResult(
            is_boundary=False, balls_tested=tested, points_checked=checked
        )
    return BallFitResult(
        is_boundary=True,
        empty_center=centers[witness_idx].copy(),
        witness_pair=(int(pairs[witness_idx, 0]), int(pairs[witness_idx, 1])),
        balls_tested=tested,
        points_checked=checked,
    )


def empty_ball_exists(
    origin,
    neighbors,
    radius: float,
    *,
    check_points=None,
    find_first: bool = True,
    kernel: str = "vectorized",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> BallFitResult:
    """Search the candidate balls at ``origin`` for an empty one.

    This is steps (II) and (III) of Algorithm 1 in the paper: enumerate the
    balls through ``origin`` and every neighbor pair, then check each against
    the known surrounding points.  A ball is empty when no point (other than
    the three numerically on its surface) lies strictly inside.

    Parameters
    ----------
    origin:
        Position of the testing node.
    neighbors:
        ``(m, 3)`` positions of its one-hop neighbors -- the pair candidates
        through which balls are constructed.
    radius:
        Ball radius ``r = 1 + eps``.
    check_points:
        Positions the emptiness test runs against.  Defaults to
        ``neighbors``; the full pipeline passes the node's 2-hop collection
        here, since a candidate ball reaches up to ``2r`` from the node and
        Lemma 1/Theorem 1 reason about all nodes within that radius.
    find_first:
        When True (default), stop at the first empty ball, as a real node
        would (Algorithm 1 breaks on success).  When False, scan every
        candidate and report the total count tested, which benches use to
        measure Theorem 1's complexity.
    kernel:
        One of :data:`KERNELS`: ``"vectorized"`` (default) for the per-node
        chunked-early-exit implementation, ``"naive"`` for the per-pair
        Python oracle, ``"batched"``/``"native"`` for the network-batched
        implementations (single-node facade over
        :func:`empty_ball_exists_batch`).  All return identical results
        and counters (see the module docstring).
    chunk_size:
        Candidates per distance-matrix batch in the vectorized and batched
        kernels; ignored by the naive kernel.

    Returns
    -------
    BallFitResult

    Notes
    -----
    Nodes with fewer than two neighbors cannot run the pair test at all.
    Definition 3 (well-connected networks) rules such nodes out; if one is
    encountered anyway we conservatively declare it a boundary node, since a
    node that sparsely connected is certainly adjacent to empty space.
    """
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    origin = as_point(origin)
    pts = as_points(neighbors) if len(neighbors) else np.empty((0, 3))
    if pts.shape[0] < 2:
        return BallFitResult(is_boundary=True, balls_tested=0, points_checked=0)
    if check_points is None:
        check = pts
    else:
        check = as_points(check_points) if len(check_points) else np.empty((0, 3))

    if kernel == "naive":
        return _naive_search(origin, pts, check, radius, find_first)
    if kernel in ("batched", "native"):
        return empty_ball_exists_batch(
            origin[None, :],
            [pts],
            radius,
            check_sets=[check],
            find_first=find_first,
            kernel=kernel,
            chunk_size=chunk_size,
        )[0]
    return _vectorized_search(origin, pts, check, radius, find_first, chunk_size)


def _batch_enumerate(
    origins: np.ndarray,
    nbr_flat: np.ndarray,
    nbr_ptr: np.ndarray,
    radius: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Eq.-1 candidate centers for a whole batch of nodes at once.

    Flattens every node's neighbor pairs into one node-major, pair-major
    workset and evaluates :func:`balls_through_point_pairs`'s arithmetic on
    it block by block.  The per-row operations are exactly the per-node
    ones (the origin is broadcast per row instead of per call), so the
    centers are bit-identical to what ``balls_through_point_pairs`` returns
    node by node, concatenated in node order.

    Returns ``(centers, pairs, cand_node, cand_ptr)``: candidate centers
    ``(K, 3)``, their local neighbor-pair indices ``(K, 2)``, the owning
    node's row for every candidate, and per-node candidate offsets
    ``(N + 1,)``.
    """
    n_nodes = origins.shape[0]
    m = np.diff(nbr_ptr)
    pair_counts = m * (m - 1) // 2
    pair_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=pair_ptr[1:])
    total_pairs = int(pair_ptr[-1])
    if total_pairs == 0:
        return (
            np.empty((0, 3)),
            np.empty((0, 2), dtype=int),
            np.empty(0, dtype=np.int64),
            np.zeros(n_nodes + 1, dtype=np.int64),
        )

    # Scatter each degree group's (cached) triu pattern into the global
    # node-major pair arrays -- no per-node Python dispatch.
    gj = np.empty(total_pairs, dtype=np.int64)
    gk = np.empty(total_pairs, dtype=np.int64)
    loc_j = np.empty(total_pairs, dtype=np.int32)
    loc_k = np.empty(total_pairs, dtype=np.int32)
    for mu in np.unique(m):
        if mu < 2:
            continue
        sel = np.flatnonzero(m == mu)
        tj, tk = np.triu_indices(int(mu), k=1)
        dest = pair_ptr[sel][:, None] + np.arange(tj.size)[None, :]
        gj[dest] = nbr_ptr[sel][:, None] + tj[None, :]
        gk[dest] = nbr_ptr[sel][:, None] + tk[None, :]
        loc_j[dest] = tj[None, :]
        loc_k[dest] = tk[None, :]
    pair_node = np.repeat(np.arange(n_nodes, dtype=np.int64), pair_counts)

    coincident_sq = (COINCIDENT_TOL * radius) ** 2
    centers_blocks: List[np.ndarray] = []
    pairs_blocks: List[np.ndarray] = []
    node_blocks: List[np.ndarray] = []
    for s in range(0, total_pairs, BATCH_PAIR_BLOCK):
        e = min(s + BATCH_PAIR_BLOCK, total_pairs)
        origin_rows = origins[pair_node[s:e]]
        a = nbr_flat[gj[s:e]] - origin_rows
        b = nbr_flat[gk[s:e]] - origin_rows
        n = np.cross(a, b)
        n2 = np.einsum("ij,ij->i", n, n)
        aa = np.einsum("ij,ij->i", a, a)
        bb = np.einsum("ij,ij->i", b, b)
        valid = (
            (aa > coincident_sq)
            & (bb > coincident_sq)
            & (n2 > DEGENERACY_TOL * aa * bb)
        )
        if not np.any(valid):
            continue
        rows = np.flatnonzero(valid)
        a, b, n, n2 = a[rows], b[rows], n[rows], n2[rows]
        aa, bb = aa[rows][:, None], bb[rows][:, None]
        origin_rows = origin_rows[rows]
        center0 = origin_rows + (
            aa * np.cross(b, n) + bb * np.cross(n, a)
        ) / (2.0 * n2[:, None])
        delta = center0 - origin_rows
        circum_sq = np.einsum("ij,ij->i", delta, delta)
        h_sq = radius * radius - circum_sq
        fits = h_sq > -INSIDE_TOL * radius * radius
        if not np.any(fits):
            continue
        keep = rows[fits] + s  # global pair rows surviving both filters
        center0, n, n2, h_sq = center0[fits], n[fits], n2[fits], h_sq[fits]

        tangent = h_sq <= (INSIDE_TOL * radius) ** 2
        h = np.sqrt(np.clip(h_sq, 0.0, None))
        unit_n = n / np.sqrt(n2)[:, None]
        offset = h[:, None] * unit_n
        counts = np.where(tangent, 1, 2)
        starts = np.cumsum(counts) - counts
        total = int(counts.sum())
        centers = np.empty((total, 3))
        centers[starts] = np.where(tangent[:, None], center0, center0 + offset)
        centers[starts[~tangent] + 1] = (center0 - offset)[~tangent]
        pair_cols = np.column_stack([loc_j[keep], loc_k[keep]]).astype(int)
        centers_blocks.append(centers)
        pairs_blocks.append(np.repeat(pair_cols, counts, axis=0))
        node_blocks.append(np.repeat(pair_node[keep], counts))

    if not centers_blocks:
        return (
            np.empty((0, 3)),
            np.empty((0, 2), dtype=int),
            np.empty(0, dtype=np.int64),
            np.zeros(n_nodes + 1, dtype=np.int64),
        )
    centers = np.concatenate(centers_blocks)
    pairs = np.concatenate(pairs_blocks)
    cand_node = np.concatenate(node_blocks)
    cand_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(cand_node, minlength=n_nodes), out=cand_ptr[1:])
    return centers, pairs, cand_node, cand_ptr


def _batch_probe(
    centers_sel: np.ndarray,
    ball_node: np.ndarray,
    probe_flat: np.ndarray,
    probe_base: np.ndarray,
    probe_len: np.ndarray,
    threshold: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Semantic probe counts and emptiness for a wave of candidate balls.

    For each ball: the index of the first strictly-inside probe point plus
    one (the work the sequential scan performs), or the full probe count
    when the ball is empty.  Memory-bounded by :data:`BATCH_PROBE_BUDGET`.
    """
    count = centers_sel.shape[0]
    mpts = probe_len[ball_node]
    base = probe_base[ball_node]
    probes = np.empty(count, dtype=np.int64)
    empty = np.empty(count, dtype=bool)
    row_step = max(1, BATCH_PROBE_BUDGET // PROBE_COL_WAVE)
    for s in range(0, count, row_step):
        e = min(s + row_step, count)
        # Probe-level early exit: scan PROBE_COL_WAVE probe columns at a
        # time and retire every ball whose first inside point has been
        # found.  The mean witness probe sits at a handful of points
        # (Theorem 1's early exit), so most balls resolve in one round
        # instead of paying for their node's full collection.
        alive = np.arange(s, e, dtype=np.int64)
        posa = np.zeros(alive.size, dtype=np.int64)
        while alive.size:
            rem = mpts[alive] - posa
            w = min(PROBE_COL_WAVE, int(rem.max()))
            col = np.arange(w, dtype=np.int64)
            mask = col[None, :] < rem[:, None]
            idx = np.where(
                mask, base[alive, None] + posa[:, None] + col[None, :], 0
            )
            diff = centers_sel[alive, None, :] - probe_flat[idx]
            dist_sq = np.einsum("ijk,ijk->ij", diff, diff)
            inside = (dist_sq < threshold) & mask
            any_inside = inside.any(axis=1)
            hit = alive[any_inside]
            probes[hit] = posa[any_inside] + inside.argmax(axis=1)[any_inside] + 1
            empty[hit] = False
            keep = ~any_inside
            alive = alive[keep]
            posa = posa[keep] + np.minimum(rem[keep], w)
            done = posa >= mpts[alive]
            fin = alive[done]
            probes[fin] = mpts[fin]
            empty[fin] = True
            alive = alive[~done]
            posa = posa[~done]
    return probes, empty


def _batched_search(
    origins: np.ndarray,
    nbr_flat: np.ndarray,
    nbr_ptr: np.ndarray,
    probe_flat: np.ndarray,
    probe_base: np.ndarray,
    probe_len: np.ndarray,
    radius: float,
    find_first: bool,
    chunk_size: int,
    use_native: bool,
) -> List[BallFitResult]:
    """Network-batched emptiness search over a batch of nodes.

    Candidates are enumerated once for the whole batch
    (:func:`_batch_enumerate`), then scanned either by the native
    ``ubf_empty_check`` kernel (one C call) or in numpy waves: every wave
    advances each still-active node by ``chunk_size`` candidates with one
    broadcast for the entire batch, so a boundary node stops contributing
    work at the wave after its witness -- the same chunk-granular early
    exit the vectorized kernel performs per node, without its per-node
    Python dispatch.  Counters are the semantic sequential work counts, so
    they match the naive oracle exactly.
    """
    n_nodes = origins.shape[0]
    centers, pairs, _, cand_ptr = _batch_enumerate(
        origins, nbr_flat, nbr_ptr, radius
    )
    threshold = _inside_threshold(radius)
    cand_counts = np.diff(cand_ptr)

    tested = np.zeros(n_nodes, dtype=np.int64)
    checked = np.zeros(n_nodes, dtype=np.int64)
    witness = np.full(n_nodes, -1, dtype=np.int64)

    native = _native_ubf_kernels() if use_native and centers.shape[0] else None
    if native is not None:
        native.ubf_empty_check(
            centers,
            cand_ptr,
            probe_flat,
            probe_base,
            probe_len,
            threshold,
            find_first,
            tested,
            checked,
            witness,
        )
    elif centers.shape[0]:
        pos = cand_ptr[:-1].copy()
        active = cand_counts > 0
        while True:
            cur = np.flatnonzero(active & (pos < cand_ptr[1:]))
            if cur.size == 0:
                break
            take = np.minimum(cand_ptr[1:][cur] - pos[cur], chunk_size)
            total = int(take.sum())
            seg_base = np.cumsum(take) - take
            ball_idx = (
                np.arange(total, dtype=np.int64)
                - np.repeat(seg_base, take)
                + np.repeat(pos[cur], take)
            )
            ball_node = np.repeat(cur, take)
            probes, empty = _batch_probe(
                centers[ball_idx], ball_node, probe_flat, probe_base,
                probe_len, threshold,
            )
            cum = np.cumsum(probes)
            seg_end = seg_base + take
            seg_sum = cum[seg_end - 1] - np.where(
                seg_base > 0, cum[seg_base - 1], 0
            )
            if empty.any():
                empty_rows = np.flatnonzero(empty)
                # ball_node is non-decreasing, so np.unique's first
                # occurrence is each node's earliest empty ball this wave.
                first_nodes, first_at = np.unique(
                    ball_node[empty_rows], return_index=True
                )
                first_rows = empty_rows[first_at]
            else:
                first_nodes = np.empty(0, dtype=np.int64)
                first_rows = np.empty(0, dtype=np.int64)
            if find_first and first_nodes.size:
                rank = np.searchsorted(cur, first_nodes)
                local = first_rows - seg_base[rank]
                prefix = cum[first_rows] - np.where(
                    seg_base[rank] > 0, cum[seg_base[rank] - 1], 0
                )
                tested[first_nodes] += local + 1
                checked[first_nodes] += prefix
                witness[first_nodes] = ball_idx[first_rows]
                active[first_nodes] = False
                rest = np.ones(cur.size, dtype=bool)
                rest[rank] = False
                tested[cur[rest]] += take[rest]
                checked[cur[rest]] += seg_sum[rest]
            else:
                tested[cur] += take
                checked[cur] += seg_sum
                if first_nodes.size:
                    fresh = witness[first_nodes] < 0
                    witness[first_nodes[fresh]] = ball_idx[first_rows[fresh]]
            pos[cur] += take

    results: List[BallFitResult] = []
    for u in range(n_nodes):
        if cand_counts[u] == 0:
            # No candidate ball fits (or fewer than two neighbors): the
            # node sits against empty space -- conservative boundary.
            results.append(
                BallFitResult(is_boundary=True, balls_tested=0, points_checked=0)
            )
        elif witness[u] >= 0:
            w = int(witness[u])
            results.append(
                BallFitResult(
                    is_boundary=True,
                    empty_center=centers[w].copy(),
                    witness_pair=(int(pairs[w, 0]), int(pairs[w, 1])),
                    balls_tested=int(tested[u]),
                    points_checked=int(checked[u]),
                )
            )
        else:
            results.append(
                BallFitResult(
                    is_boundary=False,
                    balls_tested=int(tested[u]),
                    points_checked=int(checked[u]),
                )
            )
    return results


def _native_ubf_kernels():
    """The native kernel table, or None when unavailable (numpy fallback)."""
    from repro.geometry.native import load_kernels

    return load_kernels()


def empty_ball_exists_batch_arrays(
    origins,
    nbr_flat,
    nbr_ptr,
    probe_flat,
    probe_ptr,
    radius: float,
    *,
    find_first: bool = True,
    kernel: str = "batched",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[BallFitResult]:
    """Batch emptiness search over pre-flattened per-node arrays.

    The array-native entry point behind :func:`empty_ball_exists_batch`:
    ``nbr_flat``/``nbr_ptr`` hold every node's one-hop neighbor positions
    concatenated (CSR layout), ``probe_flat``/``probe_ptr`` the emptiness
    probe sets with **each node's own position as the first probe row** --
    the probe order the sequential scan uses.  Callers that already hold
    flattened collections (the 100k-scale pipeline) avoid any per-node
    Python assembly.
    """
    if kernel not in ("batched", "native"):
        raise ValueError(f"kernel must be 'batched' or 'native', got {kernel!r}")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    origins = as_points(origins)
    nbr_ptr = np.asarray(nbr_ptr, dtype=np.int64)
    probe_ptr = np.asarray(probe_ptr, dtype=np.int64)
    nbr_flat = as_points(nbr_flat) if len(nbr_flat) else np.empty((0, 3))
    probe_flat = as_points(probe_flat) if len(probe_flat) else np.empty((0, 3))
    return _batched_search(
        origins,
        nbr_flat,
        nbr_ptr,
        probe_flat,
        probe_ptr[:-1],
        np.diff(probe_ptr),
        radius,
        find_first,
        chunk_size,
        kernel == "native",
    )


def empty_ball_exists_batch(
    origins,
    neighbor_sets: Sequence,
    radius: float,
    *,
    check_sets: Optional[Sequence] = None,
    find_first: bool = True,
    kernel: str = "batched",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[BallFitResult]:
    """Run the UBF emptiness search for a whole batch of nodes at once.

    The batch twin of :func:`empty_ball_exists`: ``origins`` is ``(N, 3)``,
    ``neighbor_sets[i]`` the ``(m_i, 3)`` one-hop neighbors of node ``i``
    and ``check_sets[i]`` its emptiness-check set (defaults to the
    neighbors, as in the single-node API).  Results are identical, node by
    node, to calling :func:`empty_ball_exists` per node with any kernel --
    the flattening changes only how the work is dispatched.
    """
    origins = as_points(origins)
    n_nodes = origins.shape[0]
    if len(neighbor_sets) != n_nodes:
        raise ValueError("neighbor_sets length must match origins")
    if check_sets is not None and len(check_sets) != n_nodes:
        raise ValueError("check_sets length must match origins")
    nbrs = [
        as_points(nb) if len(nb) else np.empty((0, 3)) for nb in neighbor_sets
    ]
    # Nodes with fewer than two neighbors never enumerate (conservative
    # boundary, zero counters) -- drop their neighbors so the enumeration
    # skips them, matching the single-node guard.
    nbrs = [nb if nb.shape[0] >= 2 else np.empty((0, 3)) for nb in nbrs]
    nbr_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum([nb.shape[0] for nb in nbrs], out=nbr_ptr[1:])
    nbr_flat = np.concatenate(nbrs) if n_nodes else np.empty((0, 3))
    probe_rows: List[np.ndarray] = []
    for i in range(n_nodes):
        check = (
            nbrs[i]
            if check_sets is None
            else (
                as_points(check_sets[i])
                if len(check_sets[i])
                else np.empty((0, 3))
            )
        )
        probe_rows.append(np.vstack([origins[i][None, :], check]))
    probe_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum([p.shape[0] for p in probe_rows], out=probe_ptr[1:])
    probe_flat = np.concatenate(probe_rows) if n_nodes else np.empty((0, 3))
    return empty_ball_exists_batch_arrays(
        origins,
        nbr_flat,
        nbr_ptr,
        probe_flat,
        probe_ptr,
        radius,
        find_first=find_first,
        kernel=kernel,
        chunk_size=chunk_size,
    )
