"""Unit-ball fitting: spheres of fixed radius through three points.

This module implements the geometric core of the paper's Unit Ball Fitting
(UBF) algorithm (Sec. II-A).  Given a node *i* and two of its neighbors *j*
and *k*, Eq. (1) of the paper asks for the centers ``(x, y, z)`` of balls of
radius ``r`` whose surface passes through all three nodes.  Depending on the
triangle ``i j k`` the system has zero, one, or two solutions:

* if the circumradius of the triangle exceeds ``r`` there is no such ball;
* if it equals ``r`` the unique center is the triangle's circumcenter;
* otherwise the two centers sit symmetrically on the line through the
  circumcenter perpendicular to the triangle's plane, at offset
  ``h = sqrt(r^2 - R_circ^2)``.

A candidate ball is *empty* when no other node of the one-hop neighborhood
lies strictly inside it; by Lemma 1 an empty candidate ball certifies that
the node can construct an empty unit ball touching itself, i.e. that it is a
boundary node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import DEGENERACY_TOL, as_point, as_points

#: Relative slack used when testing whether a node is strictly inside a ball.
#: The three defining nodes sit numerically *on* the sphere; the slack keeps
#: them (and any other exactly-on-sphere node) from counting as inside.
INSIDE_TOL = 1e-7


def balls_through_three_points(p1, p2, p3, radius: float) -> List[np.ndarray]:
    """Centers of all balls of ``radius`` whose surface contains three points.

    Parameters
    ----------
    p1, p2, p3:
        The three points (3-vectors).
    radius:
        Ball radius ``r``; the paper uses ``r = 1 + eps`` with the radio
        range normalized to 1.

    Returns
    -------
    list of numpy.ndarray
        Zero, one, or two center points.  Collinear (degenerate) triples
        yield an empty list: a line has infinite circumradius, so no ball of
        finite radius passes through it in a well-defined way, matching
        Definition 3's exclusion of degenerate line segments.
    """
    p1 = as_point(p1)
    a = as_point(p2) - p1
    b = as_point(p3) - p1
    n = np.cross(a, b)
    n2 = float(np.dot(n, n))
    if n2 < DEGENERACY_TOL:
        return []
    center0 = p1 + (np.dot(a, a) * np.cross(b, n) + np.dot(b, b) * np.cross(n, a)) / (
        2.0 * n2
    )
    circum_sq = float(np.dot(center0 - p1, center0 - p1))
    h_sq = radius * radius - circum_sq
    if h_sq < -INSIDE_TOL * radius * radius:
        return []
    if h_sq <= (INSIDE_TOL * radius) ** 2:
        return [center0]
    offset = np.sqrt(h_sq) * (n / np.sqrt(n2))
    return [center0 + offset, center0 - offset]


def balls_through_point_pairs(
    origin, others: Sequence, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized candidate-ball centers for UBF at one node.

    Computes, for every unordered pair ``(j, k)`` of points in ``others``,
    the centers of the balls of radius ``radius`` through
    ``(origin, others[j], others[k])``.

    Parameters
    ----------
    origin:
        The testing node's own position.
    others:
        Positions of its one-hop neighbors, shape ``(m, 3)``.
    radius:
        Ball radius.

    Returns
    -------
    (centers, pair_indices)
        ``centers`` is a ``(K, 3)`` array of all valid ball centers and
        ``pair_indices`` a ``(K, 2)`` integer array giving, for each center,
        the indices into ``others`` of the two neighbors that define it.
        Both are empty when fewer than two neighbors are supplied.
    """
    origin = as_point(origin)
    pts = as_points(others) if len(others) else np.empty((0, 3))
    m = pts.shape[0]
    if m < 2:
        return np.empty((0, 3)), np.empty((0, 2), dtype=int)

    j_idx, k_idx = np.triu_indices(m, k=1)
    a = pts[j_idx] - origin  # (P, 3)
    b = pts[k_idx] - origin  # (P, 3)
    n = np.cross(a, b)
    n2 = np.einsum("ij,ij->i", n, n)
    valid = n2 >= DEGENERACY_TOL
    if not np.any(valid):
        return np.empty((0, 3)), np.empty((0, 2), dtype=int)

    a, b, n, n2 = a[valid], b[valid], n[valid], n2[valid]
    j_idx, k_idx = j_idx[valid], k_idx[valid]

    aa = np.einsum("ij,ij->i", a, a)[:, None]
    bb = np.einsum("ij,ij->i", b, b)[:, None]
    center0 = origin + (aa * np.cross(b, n) + bb * np.cross(n, a)) / (2.0 * n2[:, None])

    circum_sq = np.einsum("ij,ij->i", center0 - origin, center0 - origin)
    h_sq = radius * radius - circum_sq
    fits = h_sq > -INSIDE_TOL * radius * radius
    if not np.any(fits):
        return np.empty((0, 3)), np.empty((0, 2), dtype=int)

    center0, n, n2, h_sq = center0[fits], n[fits], n2[fits], h_sq[fits]
    j_idx, k_idx = j_idx[fits], k_idx[fits]

    h = np.sqrt(np.clip(h_sq, 0.0, None))
    unit_n = n / np.sqrt(n2)[:, None]
    offset = h[:, None] * unit_n
    centers = np.vstack([center0 + offset, center0 - offset])
    pairs = np.vstack(
        [np.column_stack([j_idx, k_idx]), np.column_stack([j_idx, k_idx])]
    )

    # Tangent balls (h == 0) produce the same center twice; drop duplicates.
    tangent = h <= INSIDE_TOL * radius
    if np.any(tangent):
        keep = np.ones(centers.shape[0], dtype=bool)
        keep[center0.shape[0] :][tangent] = False
        centers, pairs = centers[keep], pairs[keep]
    return centers, pairs


@dataclass
class BallFitResult:
    """Outcome of a full UBF emptiness search at one node.

    Attributes
    ----------
    is_boundary:
        True when at least one empty candidate ball exists.
    empty_center:
        Center of the first empty ball found, or None.
    witness_pair:
        Indices (into the neighbor array) of the two neighbors that define
        the empty ball, or None.
    balls_tested:
        Number of candidate balls examined before the search stopped; a
        direct observable for the Theta(rho^2) bound of Theorem 1.
    """

    is_boundary: bool
    empty_center: Optional[np.ndarray] = None
    witness_pair: Optional[Tuple[int, int]] = None
    balls_tested: int = 0


def empty_ball_exists(
    origin,
    neighbors,
    radius: float,
    *,
    check_points=None,
    find_first: bool = True,
) -> BallFitResult:
    """Search the candidate balls at ``origin`` for an empty one.

    This is steps (II) and (III) of Algorithm 1 in the paper: enumerate the
    balls through ``origin`` and every neighbor pair, then check each against
    the known surrounding points.  A ball is empty when no point (other than
    the three numerically on its surface) lies strictly inside.

    Parameters
    ----------
    origin:
        Position of the testing node.
    neighbors:
        ``(m, 3)`` positions of its one-hop neighbors -- the pair candidates
        through which balls are constructed.
    radius:
        Ball radius ``r = 1 + eps``.
    check_points:
        Positions the emptiness test runs against.  Defaults to
        ``neighbors``; the full pipeline passes the node's 2-hop collection
        here, since a candidate ball reaches up to ``2r`` from the node and
        Lemma 1/Theorem 1 reason about all nodes within that radius.
    find_first:
        When True (default), stop at the first empty ball, as a real node
        would (Algorithm 1 breaks on success).  When False, scan every
        candidate and report the total count tested, which benches use to
        measure Theorem 1's complexity.

    Returns
    -------
    BallFitResult

    Notes
    -----
    Nodes with fewer than two neighbors cannot run the pair test at all.
    Definition 3 (well-connected networks) rules such nodes out; if one is
    encountered anyway we conservatively declare it a boundary node, since a
    node that sparsely connected is certainly adjacent to empty space.
    """
    origin = as_point(origin)
    pts = as_points(neighbors) if len(neighbors) else np.empty((0, 3))
    if pts.shape[0] < 2:
        return BallFitResult(is_boundary=True, balls_tested=0)
    if check_points is None:
        check = pts
    else:
        check = as_points(check_points) if len(check_points) else np.empty((0, 3))

    centers, pairs = balls_through_point_pairs(origin, pts, radius)
    if centers.shape[0] == 0:
        # No candidate ball fits through any neighbor pair: every triangle's
        # circumradius exceeds r.  Such a node sits against empty space.
        return BallFitResult(is_boundary=True, balls_tested=0)

    all_points = np.vstack([origin[None, :], check])
    diff = centers[:, None, :] - all_points[None, :, :]
    dist_sq = np.einsum("ijk,ijk->ij", diff, diff)
    threshold = (radius * (1.0 - INSIDE_TOL)) ** 2
    inside_any = (dist_sq < threshold).any(axis=1)

    empty_idx = np.flatnonzero(~inside_any)
    if empty_idx.size == 0:
        return BallFitResult(is_boundary=False, balls_tested=centers.shape[0])

    first = int(empty_idx[0])
    tested = first + 1 if find_first else centers.shape[0]
    return BallFitResult(
        is_boundary=True,
        empty_center=centers[first].copy(),
        witness_pair=(int(pairs[first, 0]), int(pairs[first, 1])),
        balls_tested=tested,
    )
