/* Native hot-path kernels: the "sparse" localization engine and the UBF
 * emptiness scan.
 *
 * Compiled on demand by repro.geometry.native with the system C compiler
 * (see native.py for the cache/fallback protocol); every routine has a
 * pure-numpy twin in repro.geometry.mds / repro.network.localization /
 * repro.geometry.ballfit that the caller falls back to when no compiler
 * is available.
 *
 * Numerical contracts
 * -------------------
 * - fw_complete_batch mirrors the numpy Floyd-Warshall relaxation
 *   bit-for-bit: identical pivot order (k outer), identical elementwise
 *   min/add, no FMA contraction (-ffp-contract=off in the build flags).
 * - smacof_refine_frames reproduces smacof_refine_counted's majorization
 *   (including the d > 1e-12 ratio guard and the relative stress stopping
 *   rule) with reassociated reductions; coordinates agree within
 *   SMACOF_BATCH_COORD_TOL and step counts agree exactly.
 * - ubf_empty_check mirrors the batched numpy emptiness waves exactly:
 *   same strictly-inside comparison against the same squared threshold,
 *   sequential dx*dx + dy*dy + dz*dz accumulation with no FMA
 *   contraction, per-ball early exit at the first inside probe.
 * - No routine reads clocks, RNGs, or global state: outputs depend only
 *   on inputs, so results are byte-stable across processes and batch
 *   compositions (the repro-san property).
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

/* ---------------------------------------------------------------- */
/* Frame assembly: partial distance matrices + undirected edge lists */
/* ---------------------------------------------------------------- */

/* Fill per-frame partial distance matrices and measured edge lists from
 * the global CSR adjacency.  `local_index` is an n_nodes scratch array
 * that must be -1-filled on entry; it is restored to -1 on exit.
 * Returns the total number of undirected edges written. */
int64_t assemble_frames(
    const int64_t *members, const int64_t *frame_ptr,
    const int64_t *indptr, const int64_t *indices, const double *edge_vals,
    int64_t n_frames,
    double *partial_flat, const int64_t *partial_ptr,
    int32_t *edge_src, int32_t *edge_dst, double *edge_delta,
    int64_t *edge_ptr, int32_t *local_index)
{
    int64_t ne_total = 0;
    edge_ptr[0] = 0;
    for (int64_t f = 0; f < n_frames; ++f) {
        const int64_t *mem = members + frame_ptr[f];
        int64_t m = frame_ptr[f + 1] - frame_ptr[f];
        double *partial = partial_flat + partial_ptr[f];
        for (int64_t i = 0; i < m; ++i)
            local_index[mem[i]] = (int32_t)i;
        for (int64_t i = 0; i < m * m; ++i)
            partial[i] = INFINITY;
        for (int64_t i = 0; i < m; ++i)
            partial[i * m + i] = 0.0;
        for (int64_t li = 0; li < m; ++li) {
            int64_t u = mem[li];
            for (int64_t p = indptr[u]; p < indptr[u + 1]; ++p) {
                int32_t lj = local_index[indices[p]];
                if (lj < 0)
                    continue;
                double val = edge_vals[p];
                partial[li * m + lj] = val;
                if (lj > li) {
                    edge_src[ne_total] = (int32_t)li;
                    edge_dst[ne_total] = lj;
                    edge_delta[ne_total] = val;
                    ++ne_total;
                }
            }
        }
        for (int64_t i = 0; i < m; ++i)
            local_index[mem[i]] = -1;
        edge_ptr[f + 1] = ne_total;
    }
    return ne_total;
}

/* ---------------------------------------------------------------- */
/* Floyd-Warshall completion                                        */
/* ---------------------------------------------------------------- */

/* In-place Floyd-Warshall over a (b, m, m) stack; identical relaxation
 * order to complete_distance_matrix_batch.  `rowk` buffers pivot row k
 * so the inner loop carries no aliasing (i == k) and vectorizes. */
void fw_complete_batch(double *d, int64_t b, int64_t m,
                       double unreachable, double *rowk)
{
    for (int64_t s = 0; s < b; ++s) {
        double *ds = d + s * m * m;
        for (int64_t k = 0; k < m; ++k) {
            memcpy(rowk, ds + k * m, (size_t)m * sizeof(double));
            for (int64_t i = 0; i < m; ++i) {
                double dik = ds[i * m + k];
                double *restrict rowi = ds + i * m;
                for (int64_t j = 0; j < m; ++j) {
                    double via = dik + rowk[j];
                    rowi[j] = via < rowi[j] ? via : rowi[j];
                }
            }
        }
        for (int64_t i = 0; i < m * m; ++i)
            if (isinf(ds[i]))
                ds[i] = unreachable;
    }
}

/* ---------------------------------------------------------------- */
/* Double centering                                                 */
/* ---------------------------------------------------------------- */

/* numpy's pairwise summation over a contiguous double vector, transcribed
 * from numpy's pairwise_sum_DOUBLE: sequential below 8 elements, an
 * 8-accumulator unrolled block up to 128, and a halving recursion (split
 * rounded down to a multiple of 8) above.  The 8 accumulators are
 * independent, so auto-vectorization cannot reassociate them -- the bits
 * match np.sum / np.mean reductions exactly, which the centering below
 * relies on to stay bit-identical to torgerson_gram_batch. */
static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; ++i)
            res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i + 0];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; ++i)
            res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
}

/* In-place Torgerson double centering of a (b, m, m) stack of *symmetric*
 * completed distance matrices: D -> -1/2 J D^2 J with J = I - 11^T/m.
 * Row and column means coincide by symmetry.  `rowmean` is an m-sized
 * scratch buffer.
 *
 * Bit-identical to torgerson_gram_batch: means use numpy's pairwise
 * summation (the grand mean is the mean of the row means, as
 * row.mean(axis=-2) computes it), and the combine step follows the ufunc
 * chain ((sq - row) - row^T) + total, scaled by -0.5.  The downstream
 * eigenvectors sit near-degenerate in places, so last-ulp centering
 * differences would otherwise be amplified past the engine tolerance. */
void center_gram_batch(double *d, int64_t b, int64_t m, double *rowmean)
{
    double dm = (double)m;
    for (int64_t s = 0; s < b; ++s) {
        double *ds = d + s * m * m;
        for (int64_t i = 0; i < m * m; ++i)
            ds[i] *= ds[i];
        for (int64_t i = 0; i < m; ++i)
            rowmean[i] = pairwise_sum(ds + i * m, m) / dm;
        double totalmean = pairwise_sum(rowmean, m) / dm;
        for (int64_t i = 0; i < m; ++i) {
            double *rowi = ds + i * m;
            double ri = rowmean[i];
            for (int64_t j = 0; j < m; ++j)
                rowi[j] = -0.5 * (((rowi[j] - ri) - rowmean[j]) + totalmean);
        }
    }
}

/* ---------------------------------------------------------------- */
/* SMACOF majorization over concatenated frames                     */
/* ---------------------------------------------------------------- */

/* Unblocked Cholesky (lower) of an SPD matrix, in place.  Returns 0 on
 * success, -1 if a pivot is non-positive (rank-deficient input). */
static int cholesky(double *a, int64_t m)
{
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j <= i; ++j) {
            double s = a[i * m + j];
            for (int64_t k = 0; k < j; ++k)
                s -= a[i * m + k] * a[j * m + k];
            if (i == j) {
                if (s <= 0.0)
                    return -1;
                a[i * m + i] = sqrt(s);
            } else {
                a[i * m + j] = s / a[j * m + j];
            }
        }
    }
    return 0;
}

/* Invert an SPD matrix given its in-place Cholesky factor L (lower):
 * writes A^{-1} into `ainv` (row-major, full symmetric).  Computed as a
 * matrix-wide forward substitution (L Y = I, exploiting Y's lower
 * triangularity) followed by a matrix-wide backward substitution
 * (L^T Z = Y); the inner loops run over contiguous rows, so they
 * vectorize -- the whole inverse costs about ten majorization steps'
 * worth of triangular solves and is amortized over every iteration. */
static void cholesky_inverse(const double *L, double *ainv, int64_t m)
{
    for (int64_t i = 0; i < m * m; ++i)
        ainv[i] = 0.0;
    for (int64_t i = 0; i < m; ++i)
        ainv[i * m + i] = 1.0;
    for (int64_t k = 0; k < m; ++k) {
        double *restrict yk = ainv + k * m;
        double inv = 1.0 / L[k * m + k];
        for (int64_t j = 0; j <= k; ++j)
            yk[j] *= inv;
        for (int64_t i = k + 1; i < m; ++i) {
            double lik = L[i * m + k];
            double *restrict yi = ainv + i * m;
            for (int64_t j = 0; j <= k; ++j)
                yi[j] -= lik * yk[j];
        }
    }
    for (int64_t i = m - 1; i >= 0; --i) {
        double *restrict zi = ainv + i * m;
        double inv = 1.0 / L[i * m + i];
        for (int64_t j = 0; j < m; ++j)
            zi[j] *= inv;
        for (int64_t k = 0; k < i; ++k) {
            double lik = L[i * m + k];
            double *restrict zk = ainv + k * m;
            for (int64_t j = 0; j < m; ++j)
                zk[j] -= lik * zi[j];
        }
    }
}

/* Weighted-stress majorization over concatenated frames.
 *
 * x            (total_members, 3) coordinates, refined in place
 * frame_ptr    (n_frames + 1) member offsets into x
 * edge_src/dst (total_edges) local member indices, src < dst, per frame
 * edge_delta   (total_edges) measured distances
 * edge_ptr     (n_frames + 1) edge offsets
 * steps_out    (n_frames) majorization step counts (output)
 * a            max_m * max_m scratch (Laplacian + Cholesky factor)
 * ainv         max_m * max_m scratch (explicit (V + 11^T/m)^{-1})
 * bxt          3 * max_m scratch (majorization right-hand side, B X
 *              stored transposed so the per-iteration apply reads three
 *              contiguous streams)
 * dcache       max_edges scratch (embedded distances per edge)
 * diffcache    max_edges * 3 scratch (embedded differences per edge)
 *
 * Per frame this mirrors smacof_refine_counted: the update is
 * X <- (V + 11^T/m)^{-1} (B X) - (11^T/m)(B X), equal to pinv(V) B X for
 * the connected weight graphs the engines build; like the numpy batch
 * twin (smacof_refine_batch) the inverse is formed once per frame and
 * applied as a dense product each step.  The stopping rule is
 * last - current <= tol * max(last, 1e-12) on the half-stress.
 * Returns 0, or -1 if any frame's Cholesky failed (caller falls back). */
int smacof_refine_frames(
    double *x, const int64_t *frame_ptr,
    const int32_t *edge_src, const int32_t *edge_dst,
    const double *edge_delta, const int64_t *edge_ptr,
    int64_t n_frames, int64_t iterations, double tol,
    double *a, double *ainv, double *bxt, double *dcache, double *diffcache,
    int64_t *steps_out)
{
    for (int64_t f = 0; f < n_frames; ++f) {
        int64_t m = frame_ptr[f + 1] - frame_ptr[f];
        int64_t ne = edge_ptr[f + 1] - edge_ptr[f];
        steps_out[f] = 0;
        if (m <= 1 || ne == 0)
            continue;
        double *xf = x + frame_ptr[f] * 3;
        const int32_t *es = edge_src + edge_ptr[f];
        const int32_t *ed = edge_dst + edge_ptr[f];
        const double *et = edge_delta + edge_ptr[f];
        double invm = 1.0 / (double)m;

        /* A = V + 11^T/m with V the unit-weight Laplacian of the
         * measured-pair graph. */
        for (int64_t i = 0; i < m * m; ++i)
            a[i] = invm;
        for (int64_t e = 0; e < ne; ++e) {
            int64_t i = es[e], j = ed[e];
            a[i * m + j] -= 1.0;
            a[j * m + i] -= 1.0;
            a[i * m + i] += 1.0;
            a[j * m + j] += 1.0;
        }
        if (cholesky(a, m) != 0)
            return -1;
        cholesky_inverse(a, ainv, m);

        double last = 0.0;
        for (int64_t e = 0; e < ne; ++e) {
            int64_t i = es[e], j = ed[e];
            double dx = xf[i * 3] - xf[j * 3];
            double dy = xf[i * 3 + 1] - xf[j * 3 + 1];
            double dz = xf[i * 3 + 2] - xf[j * 3 + 2];
            double dd = sqrt(dx * dx + dy * dy + dz * dz);
            diffcache[e * 3] = dx;
            diffcache[e * 3 + 1] = dy;
            diffcache[e * 3 + 2] = dz;
            dcache[e] = dd;
            double r = dd - et[e];
            last += r * r;
        }
        double *bxx = bxt, *bxy = bxt + m, *bxz = bxt + 2 * m;
        for (int64_t it = 0; it < iterations; ++it) {
            memset(bxt, 0, (size_t)(m * 3) * sizeof(double));
            for (int64_t e = 0; e < ne; ++e) {
                double dd = dcache[e];
                double r = dd > 1e-12 ? et[e] / dd : 0.0;
                int64_t i = es[e], j = ed[e];
                double cx = r * diffcache[e * 3];
                double cy = r * diffcache[e * 3 + 1];
                double cz = r * diffcache[e * 3 + 2];
                bxx[i] += cx; bxy[i] += cy; bxz[i] += cz;
                bxx[j] -= cx; bxy[j] -= cy; bxz[j] -= cz;
            }
            double mx = 0.0, my = 0.0, mz = 0.0;
            for (int64_t i = 0; i < m; ++i) {
                mx += bxx[i]; my += bxy[i]; mz += bxz[i];
            }
            mx *= invm; my *= invm; mz *= invm;
            for (int64_t i = 0; i < m; ++i) {
                const double *restrict ai = ainv + i * m;
                double s0 = 0.0, s1 = 0.0, s2 = 0.0;
                for (int64_t j = 0; j < m; ++j) {
                    s0 += ai[j] * bxx[j];
                    s1 += ai[j] * bxy[j];
                    s2 += ai[j] * bxz[j];
                }
                xf[i * 3] = s0 - mx;
                xf[i * 3 + 1] = s1 - my;
                xf[i * 3 + 2] = s2 - mz;
            }
            steps_out[f] += 1;
            double cur = 0.0;
            for (int64_t e = 0; e < ne; ++e) {
                int64_t i = es[e], j = ed[e];
                double dx = xf[i * 3] - xf[j * 3];
                double dy = xf[i * 3 + 1] - xf[j * 3 + 1];
                double dz = xf[i * 3 + 2] - xf[j * 3 + 2];
                double dd = sqrt(dx * dx + dy * dy + dz * dz);
                diffcache[e * 3] = dx;
                diffcache[e * 3 + 1] = dy;
                diffcache[e * 3 + 2] = dz;
                dcache[e] = dd;
                double r = dd - et[e];
                cur += r * r;
            }
            double floor_ = last > 1e-12 ? last : 1e-12;
            if (last - cur <= tol * floor_)
                break;
            last = cur;
        }
    }
    return 0;
}

/* ---------------------------------------------------------------- */
/* UBF emptiness scan                                               */
/* ---------------------------------------------------------------- */

/* Sequential emptiness scan over batched UBF candidate balls.
 *
 * centers       (total_candidates, 3) candidate ball centers, node-major
 *               in the canonical enumeration order
 * cand_ptr      (n_nodes + 1) candidate offsets per node
 * probe_flat    (total_probes, 3) emptiness probe points, node-major,
 *               each node's own position first
 * probe_base    (n_nodes) offset of each node's probe segment
 * probe_len     (n_nodes) probe count per node
 * threshold_sq  squared strictly-inside radius ((r * (1 - tol))^2)
 * find_first    nonzero to stop each node at its first empty ball
 * balls_tested / points_checked / witness
 *               (n_nodes) outputs; witness holds the global row of each
 *               node's first empty ball, or -1
 *
 * The distance accumulation is dx*dx + dy*dy + dz*dz left-to-right with
 * no FMA contraction, matching the numpy einsum of the batched kernel
 * elementwise, so verdicts, witnesses and the semantic counters are
 * identical to the numpy waves (and to the per-node kernels). */
void ubf_empty_check(
    const double *centers, const int64_t *cand_ptr,
    const double *probe_flat, const int64_t *probe_base,
    const int64_t *probe_len,
    int64_t n_nodes, double threshold_sq, int find_first,
    int64_t *balls_tested, int64_t *points_checked, int64_t *witness)
{
    for (int64_t u = 0; u < n_nodes; ++u) {
        const double *probes = probe_flat + probe_base[u] * 3;
        int64_t n_probes = probe_len[u];
        int64_t tested = 0, checked = 0, wit = -1;
        for (int64_t c = cand_ptr[u]; c < cand_ptr[u + 1]; ++c) {
            const double *ctr = centers + c * 3;
            int inside = 0;
            int64_t p = 0;
            for (; p < n_probes; ++p) {
                double dx = ctr[0] - probes[p * 3];
                double dy = ctr[1] - probes[p * 3 + 1];
                double dz = ctr[2] - probes[p * 3 + 2];
                if (dx * dx + dy * dy + dz * dz < threshold_sq) {
                    inside = 1;
                    break;
                }
            }
            checked += inside ? p + 1 : n_probes;
            ++tested;
            if (!inside && wit < 0) {
                wit = c;
                if (find_first)
                    break;
            }
        }
        balls_tested[u] = tested;
        points_checked[u] = checked;
        witness[u] = wit;
    }
}
