"""Multidimensional scaling for local coordinate establishment.

Step (I) of Algorithm 1: every node collects the (noisy) pairwise distances
within its one-hop neighborhood and embeds them into a private 3D coordinate
frame.  The paper adopts improved MDS-based localization (Shang & Ruml); the
same family is implemented here:

1. missing pairwise distances (neighbor pairs that are out of radio range of
   each other) are completed with shortest-path distances over the measured
   local graph (:func:`complete_distance_matrix`), and
2. the completed matrix is embedded with classical (Torgerson) MDS
   (:func:`classical_mds`).

The resulting frame is arbitrary up to rotation/translation/reflection,
which UBF is invariant to.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Distance assigned to node pairs unreachable inside the local subgraph.
#: Two one-hop neighbors of the same node can be at most two radio ranges
#: apart, so 2.0 (in radio-range units) is the geometrically safe ceiling.
UNREACHABLE_LOCAL_DISTANCE = 2.0


def complete_distance_matrix(
    partial: np.ndarray,
    *,
    missing_value: float = np.inf,
    unreachable: float = UNREACHABLE_LOCAL_DISTANCE,
) -> np.ndarray:
    """Fill unknown entries of a partial distance matrix via shortest paths.

    Parameters
    ----------
    partial:
        Square symmetric matrix; ``partial[i, j]`` is the measured distance
        between local nodes ``i`` and ``j``, or ``missing_value`` when the
        pair is out of range of each other.  The diagonal must be zero.
    missing_value:
        Sentinel marking unmeasured pairs (default ``inf``).
    unreachable:
        Distance substituted for pairs still unreachable after shortest-path
        completion (disconnected local subgraphs).

    Returns
    -------
    numpy.ndarray
        Completed symmetric matrix with no infinities.

    Notes
    -----
    The completion is plain Floyd-Warshall.  Neighborhoods have at most a few
    dozen nodes, so the ``O(m^3)`` cost is negligible and the implementation
    can stay a readable three-liner over numpy broadcasting.
    """
    dist = np.array(partial, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("partial distance matrix must be square")
    if np.isfinite(missing_value):
        dist[dist == missing_value] = np.inf
    np.fill_diagonal(dist, 0.0)
    m = dist.shape[0]
    for k in range(m):
        via_k = dist[:, k, None] + dist[None, k, :]
        dist = np.minimum(dist, via_k)
    dist[~np.isfinite(dist)] = unreachable
    return dist


def classical_mds(distances: np.ndarray, n_components: int = 3) -> np.ndarray:
    """Classical (Torgerson) MDS embedding of a distance matrix.

    Double-centers the squared distance matrix and takes the top
    ``n_components`` eigenpairs.  Negative eigenvalues (which arise when the
    input is not exactly Euclidean, e.g. after shortest-path completion or
    under measurement noise) are clipped to zero.

    Parameters
    ----------
    distances:
        Square symmetric matrix of (approximate) Euclidean distances.
    n_components:
        Embedding dimension; 3 for this library.

    Returns
    -------
    numpy.ndarray
        ``(m, n_components)`` coordinates, centered at the origin.
    """
    dist = np.asarray(distances, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance matrix must be square")
    m = dist.shape[0]
    if m == 0:
        return np.empty((0, n_components))
    if not np.all(np.isfinite(dist)):
        raise ValueError("distance matrix must be finite; complete it first")

    sq = dist ** 2
    centering = np.eye(m) - np.full((m, m), 1.0 / m)
    gram = -0.5 * centering @ sq @ centering
    # eigh returns ascending order; take the largest n_components.
    eigvals, eigvecs = np.linalg.eigh((gram + gram.T) / 2.0)
    order = np.argsort(eigvals)[::-1][:n_components]
    top_vals = np.clip(eigvals[order], 0.0, None)
    coords = eigvecs[:, order] * np.sqrt(top_vals)[None, :]
    if coords.shape[1] < n_components:
        pad = np.zeros((m, n_components - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords


def smacof_refine(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> np.ndarray:
    """Weighted stress majorization (SMACOF) refinement of an embedding.

    Improves ``coords`` so that pairwise embedded distances match
    ``distances`` where ``weights`` is positive.  This is the "improved" in
    improved-MDS localization [31]: the classical-MDS solution (computed on
    a shortest-path-completed matrix, which *overestimates* non-adjacent
    distances) is refined against the actually *measured* distances only.

    Parameters
    ----------
    coords:
        ``(m, d)`` initial embedding.
    distances:
        ``(m, m)`` target distances; entries with zero weight are ignored.
    weights:
        ``(m, m)`` symmetric non-negative weights with a zero diagonal.
    iterations:
        Maximum majorization steps.
    tol:
        Relative stress-improvement threshold for early stopping.

    Returns
    -------
    numpy.ndarray
        Refined ``(m, d)`` coordinates (a new array).
    """
    x = np.array(coords, dtype=float)
    m = x.shape[0]
    w = np.asarray(weights, dtype=float)
    d_target = np.asarray(distances, dtype=float)
    if m <= 1 or not np.any(w > 0):
        return x

    # Moore-Penrose inverse of the weight Laplacian, computed once.
    v = -w.copy()
    np.fill_diagonal(v, w.sum(axis=1))
    v_pinv = np.linalg.pinv(v + np.full((m, m), 1.0 / m)) - np.full((m, m), 1.0 / m)

    def embedded_distances(y: np.ndarray) -> np.ndarray:
        diff = y[:, None, :] - y[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def stress(y: np.ndarray) -> float:
        d = embedded_distances(y)
        return float(np.sum(w * (d - d_target) ** 2) / 2.0)

    last = stress(x)
    for _ in range(iterations):
        d = embedded_distances(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(d > 1e-12, d_target / d, 0.0)
        b = -w * ratio
        np.fill_diagonal(b, 0.0)
        np.fill_diagonal(b, -b.sum(axis=1))
        x = v_pinv @ (b @ x)
        current = stress(x)
        if last - current <= tol * max(last, 1e-12):
            break
        last = current
    return x


def local_mds_embedding(
    partial_distances: np.ndarray,
    *,
    n_components: int = 3,
    missing_value: float = np.inf,
    refine: bool = True,
    refine_iterations: int = 30,
) -> np.ndarray:
    """Local coordinate system from partial pairwise distances.

    Composition of :func:`complete_distance_matrix`, :func:`classical_mds`,
    and (by default) :func:`smacof_refine` against the measured entries
    only; this is what step (I) of Algorithm 1 runs at every node.  With
    perfect measurements the refinement recovers the local geometry almost
    exactly even though shortest-path completion inflated the classical-MDS
    initialization.
    """
    partial = np.asarray(partial_distances, dtype=float)
    completed = complete_distance_matrix(partial, missing_value=missing_value)
    coords = classical_mds(completed, n_components=n_components)
    if refine:
        measured_mask = np.isfinite(partial) if np.isinf(missing_value) else (
            partial != missing_value
        )
        weights = measured_mask.astype(float)
        np.fill_diagonal(weights, 0.0)
        coords = smacof_refine(
            coords, np.where(measured_mask, partial, 0.0), weights,
            iterations=refine_iterations,
        )
    return coords
