"""Multidimensional scaling for local coordinate establishment.

Step (I) of Algorithm 1: every node collects the (noisy) pairwise distances
within its one-hop neighborhood and embeds them into a private 3D coordinate
frame.  The paper adopts improved MDS-based localization (Shang & Ruml); the
same family is implemented here:

1. missing pairwise distances (neighbor pairs that are out of radio range of
   each other) are completed with shortest-path distances over the measured
   local graph (:func:`complete_distance_matrix`), and
2. the completed matrix is embedded with classical (Torgerson) MDS
   (:func:`classical_mds`).

The resulting frame is arbitrary up to rotation/translation/reflection,
which UBF is invariant to.

Batched twins
-------------
Every step also has a batched twin operating on an ``(B, m, m)`` stack of
same-size neighborhoods (:func:`complete_distance_matrix_batch`,
:func:`classical_mds_batch`, :func:`smacof_refine_batch`, composed by
:func:`local_mds_embedding_batch`).  Stacking ``B`` same-size problems
amortizes numpy call overhead ``B``-fold and lets the LAPACK stages
(``eigh``, ``pinv``) run as gufunc loops instead of one call per node.

Two accuracy contracts apply.  :func:`complete_distance_matrix_batch` and
:func:`classical_mds_batch` mirror the scalar implementations expression
for expression, so their slices are *bit-identical* to the scalar results.
:func:`smacof_refine_batch` additionally restructures the iteration
arithmetic for memory locality (Gram-identity distances, algebraically
expanded stress); its slices match the scalar oracle within
:data:`SMACOF_BATCH_COORD_TOL` with *exactly* equal iteration counts --
the engine contract the differential tests in
``tests/unit/test_localization_engines.py`` pin down (see
docs/PERFORMANCE.md, "Localization engine").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

#: Distance assigned to node pairs unreachable inside the local subgraph.
#: Two one-hop neighbors of the same node can be at most two radio ranges
#: apart, so 2.0 (in radio-range units) is the geometrically safe ceiling.
UNREACHABLE_LOCAL_DISTANCE = 2.0

#: Coordinate agreement tolerance (absolute, in radio-range units) between
#: the scalar and batched SMACOF refinements.  The batched chain reorders
#: float reductions, so individual operations differ at the last ulp; the
#: majorization update is a contraction near its fixed point, keeping the
#: accumulated divergence many orders of magnitude below this bound
#: (observed maxima are ~1e-12 on 2000-node scenarios).
SMACOF_BATCH_COORD_TOL = 1e-9

#: Slices per Floyd-Warshall sub-chunk in the batched completion; two
#: ``(chunk, m, m)`` float arrays at typical collection sizes stay within
#: the L2 cache, which the relaxation's m full passes reward.
FW_CHUNK_SLICES = 8


def complete_distance_matrix(
    partial: np.ndarray,
    *,
    missing_value: float = np.inf,
    unreachable: float = UNREACHABLE_LOCAL_DISTANCE,
) -> np.ndarray:
    """Fill unknown entries of a partial distance matrix via shortest paths.

    Parameters
    ----------
    partial:
        Square symmetric matrix; ``partial[i, j]`` is the measured distance
        between local nodes ``i`` and ``j``, or ``missing_value`` when the
        pair is out of range of each other.  The diagonal must be zero.
    missing_value:
        Sentinel marking unmeasured pairs (default ``inf``).
    unreachable:
        Distance substituted for pairs still unreachable after shortest-path
        completion (disconnected local subgraphs).

    Returns
    -------
    numpy.ndarray
        Completed symmetric matrix with no infinities.

    Notes
    -----
    The completion is plain Floyd-Warshall over numpy broadcasting.  The
    relaxation runs fully in place: one scratch buffer holds the ``via k``
    sums and ``np.minimum(..., out=dist)`` folds them back, so no per-``k``
    arrays are allocated.  (In-place per-``k`` relaxation is sound because
    iteration ``k`` never changes row or column ``k``: the candidate for
    ``dist[i, k]`` is ``dist[i, k] + dist[k, k] = dist[i, k]``.)
    """
    dist = np.array(partial, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("partial distance matrix must be square")
    if np.isfinite(missing_value):
        dist[dist == missing_value] = np.inf
    np.fill_diagonal(dist, 0.0)
    m = dist.shape[0]
    via_k = np.empty_like(dist)
    for k in range(m):
        np.add(dist[:, k, None], dist[None, k, :], out=via_k)
        np.minimum(dist, via_k, out=dist)
    dist[~np.isfinite(dist)] = unreachable
    return dist


def complete_distance_matrix_batch(
    partial: np.ndarray,
    *,
    missing_value: float = np.inf,
    unreachable: float = UNREACHABLE_LOCAL_DISTANCE,
) -> np.ndarray:
    """Batched :func:`complete_distance_matrix` over an ``(B, m, m)`` stack.

    Runs the same in-place Floyd-Warshall relaxation on every slice at
    once; slice ``b`` of the result is bit-identical to
    ``complete_distance_matrix(partial[b], ...)``.  Slices are relaxed in
    sub-chunks of :data:`FW_CHUNK_SLICES` so the pair of ``(chunk, m, m)``
    working arrays stays cache-resident (each slice's relaxation is
    independent, so chunking cannot change the result).
    """
    dist = np.array(partial, dtype=float)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError("partial distance stack must be (B, m, m)")
    if np.isfinite(missing_value):
        dist[dist == missing_value] = np.inf
    m = dist.shape[1]
    diag = np.arange(m)
    dist[:, diag, diag] = 0.0
    n_chunk = min(FW_CHUNK_SLICES, dist.shape[0])
    via_k = np.empty((n_chunk, m, m))
    for c in range(0, dist.shape[0], n_chunk):
        block = dist[c : c + n_chunk]
        via = via_k[: block.shape[0]]
        for k in range(m):
            np.add(block[:, :, k, None], block[:, None, k, :], out=via)
            np.minimum(block, via, out=block)
    dist[~np.isfinite(dist)] = unreachable
    return dist


def classical_mds(distances: np.ndarray, n_components: int = 3) -> np.ndarray:
    """Classical (Torgerson) MDS embedding of a distance matrix.

    Double-centers the squared distance matrix and takes the top
    ``n_components`` eigenpairs.  Negative eigenvalues (which arise when the
    input is not exactly Euclidean, e.g. after shortest-path completion or
    under measurement noise) are clipped to zero.

    Parameters
    ----------
    distances:
        Square symmetric matrix of (approximate) Euclidean distances.
    n_components:
        Embedding dimension; 3 for this library.

    Returns
    -------
    numpy.ndarray
        ``(m, n_components)`` coordinates, centered at the origin.
    """
    dist = np.asarray(distances, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance matrix must be square")
    m = dist.shape[0]
    if m == 0:
        return np.empty((0, n_components))
    if not np.all(np.isfinite(dist)):
        raise ValueError("distance matrix must be finite; complete it first")

    sq = dist ** 2
    centering = np.eye(m) - np.full((m, m), 1.0 / m)
    gram = -0.5 * centering @ sq @ centering
    # eigh returns ascending order; take the largest n_components.
    eigvals, eigvecs = np.linalg.eigh((gram + gram.T) / 2.0)
    order = np.argsort(eigvals)[::-1][:n_components]
    top_vals = np.clip(eigvals[order], 0.0, None)
    coords = eigvecs[:, order] * np.sqrt(top_vals)[None, :]
    if coords.shape[1] < n_components:
        pad = np.zeros((m, n_components - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords


def classical_mds_batch(distances: np.ndarray, n_components: int = 3) -> np.ndarray:
    """Batched :func:`classical_mds` over an ``(B, m, m)`` stack.

    Mirrors the scalar implementation expression for expression; the
    double-centering matmuls and the ``eigh`` gufunc loop the identical
    routines per slice, so slice ``b`` equals
    ``classical_mds(distances[b], n_components)`` bit for bit.
    """
    dist = np.asarray(distances, dtype=float)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError("distance stack must be (B, m, m)")
    n_batch, m, _ = dist.shape
    if m == 0:
        return np.empty((n_batch, 0, n_components))
    if not np.all(np.isfinite(dist)):
        raise ValueError("distance stack must be finite; complete it first")

    sq = dist ** 2
    centering = np.eye(m) - np.full((m, m), 1.0 / m)
    gram = -0.5 * centering @ sq @ centering
    sym = (gram + np.swapaxes(gram, -1, -2)) / 2.0
    eigvals, eigvecs = np.linalg.eigh(sym)
    order = np.argsort(eigvals, axis=-1)[:, ::-1][:, :n_components]
    top_vals = np.clip(np.take_along_axis(eigvals, order, axis=-1), 0.0, None)
    coords = np.take_along_axis(eigvecs, order[:, None, :], axis=2)
    coords = coords * np.sqrt(top_vals)[:, None, :]
    if coords.shape[2] < n_components:
        pad = np.zeros((n_batch, m, n_components - coords.shape[2]))
        coords = np.concatenate([coords, pad], axis=2)
    return coords


def smacof_refine(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> np.ndarray:
    """Weighted stress majorization (SMACOF) refinement of an embedding.

    Improves ``coords`` so that pairwise embedded distances match
    ``distances`` where ``weights`` is positive.  This is the "improved" in
    improved-MDS localization [31]: the classical-MDS solution (computed on
    a shortest-path-completed matrix, which *overestimates* non-adjacent
    distances) is refined against the actually *measured* distances only.

    Parameters
    ----------
    coords:
        ``(m, d)`` initial embedding.
    distances:
        ``(m, m)`` target distances; entries with zero weight are ignored.
    weights:
        ``(m, m)`` symmetric non-negative weights with a zero diagonal.
    iterations:
        Maximum majorization steps.
    tol:
        Relative stress-improvement threshold for early stopping.

    Returns
    -------
    numpy.ndarray
        Refined ``(m, d)`` coordinates (a new array).
    """
    coords, _ = smacof_refine_counted(
        coords, distances, weights, iterations=iterations, tol=tol
    )
    return coords


def smacof_refine_counted(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> Tuple[np.ndarray, int]:
    """:func:`smacof_refine` that also reports the majorization steps taken.

    The step count is a deterministic observable of the refinement (it
    depends only on the inputs), so the batched engine is required to
    reproduce it exactly -- it is one of the counters the localization
    bench compares between engines.
    """
    x = np.array(coords, dtype=float)
    m = x.shape[0]
    w = np.asarray(weights, dtype=float)
    d_target = np.asarray(distances, dtype=float)
    if m <= 1 or not np.any(w > 0):
        return x, 0

    # Moore-Penrose inverse of the weight Laplacian, computed once.
    v = -w.copy()
    np.fill_diagonal(v, w.sum(axis=1))
    v_pinv = np.linalg.pinv(v + np.full((m, m), 1.0 / m)) - np.full((m, m), 1.0 / m)

    def embedded_distances(y: np.ndarray) -> np.ndarray:
        diff = y[:, None, :] - y[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def stress(y: np.ndarray) -> float:
        d = embedded_distances(y)
        return float(np.sum(w * (d - d_target) ** 2) / 2.0)

    last = stress(x)
    n_steps = 0
    for _ in range(iterations):
        d = embedded_distances(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(d > 1e-12, d_target / d, 0.0)
        b = -w * ratio
        np.fill_diagonal(b, 0.0)
        np.fill_diagonal(b, -b.sum(axis=1))
        x = v_pinv @ (b @ x)
        n_steps += 1
        current = stress(x)
        if last - current <= tol * max(last, 1e-12):
            break
        last = current
    return x, n_steps


def smacof_refine_batch(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched SMACOF over ``(B, m, d)`` embeddings with per-slice stopping.

    Runs the majorization of :func:`smacof_refine_counted` on every slice
    of the stack simultaneously, restructured for throughput:

    * embedded distances use the Gram identity
      ``d_ij^2 = |y_i|^2 + |y_j|^2 - 2 <y_i, y_j>`` (one gemm plus
      ``O(m^2)`` traffic instead of the ``O(m^2 d)`` pairwise-difference
      tensor), clipping cancellation negatives before the square root;
    * the stress is expanded algebraically,
      ``2 sigma = sum w d^2 - 2 sum (w t) d + sum w t^2``, so each check is
      two einsum reductions against precomputed per-slice constants;
    * the majorization matrix comes straight from the precomputed
      ``-w t`` product (one divide, no ratio intermediate);
    * all work buffers are allocated once and re-sliced, distances are
      computed once per step (reused across the B-matrix and the stress),
      and the live set is compacted only on steps where a slice converged.

    Slices converge independently: a converged slice is frozen and dropped
    from the live set while the rest keep iterating, so per-slice *step
    counts* reproduce the scalar early-stopping sequence exactly (the
    convergence test sees the same stress values up to a relative
    float-reassociation error of ~1e-13, see below).  Coordinates match
    ``smacof_refine_counted`` within :data:`SMACOF_BATCH_COORD_TOL`: the
    reordered reductions differ from the scalar chain only at the
    last-ulp level per operation, and the majorization update is a
    contraction near the fixed point, so the engines' iterates never
    drift beyond that tolerance.

    Returns
    -------
    (coords, steps):
        The refined ``(B, m, d)`` stack and an ``(B,)`` int array of
        majorization steps per slice.
    """
    x = np.array(coords, dtype=float)
    if x.ndim != 3:
        raise ValueError("coords stack must be (B, m, d)")
    n_batch, m, n_dim = x.shape
    w_all = np.asarray(weights, dtype=float)
    t_all = np.asarray(distances, dtype=float)
    steps = np.zeros(n_batch, dtype=int)
    if n_batch == 0 or m <= 1:
        return x, steps
    live = np.nonzero(np.any(w_all > 0, axis=(1, 2)))[0]
    if live.size == 0:
        return x, steps

    diag = np.arange(m)
    w = w_all[live]
    t = t_all[live]
    v = -w.copy()
    v[:, diag, diag] = w.sum(axis=2)
    correction = np.full((m, m), 1.0 / m)
    # The weight Laplacian V is PSD with nullspace span(1) whenever the
    # weight graph is connected -- true by construction for BFS-built
    # collections (every hop-k member has a measured edge to a
    # hop-(k-1) parent) -- making V + 11^T/m symmetric positive definite
    # with plain inverse equal to pinv(V) + 11^T/m.  A batched LU inverse
    # is several times cheaper than an SVD- or eigh-based pseudo-inverse;
    # for rank-deficient stacks (disconnected weight graphs, only seen on
    # arbitrary caller-supplied matrices) LU fails loudly and we fall back
    # to the spectral-cutoff pseudo-inverse.
    a = v + correction
    try:
        v_pinv = np.linalg.inv(a)
    except np.linalg.LinAlgError:
        evals, evecs = np.linalg.eigh(a)
        cutoff = 1e-15 * m * np.abs(evals).max(axis=1, keepdims=True)
        keep = np.abs(evals) > cutoff
        inv_vals = np.where(keep, 1.0 / np.where(keep, evals, 1.0), 0.0)
        v_pinv = (evecs * inv_vals[:, None, :]) @ np.swapaxes(evecs, -1, -2)
    v_pinv -= correction
    xa = x[live]

    # Per-slice constants of the iteration.
    neg_wt = -(w * t)
    wtt = np.einsum("bij,bij->b", w, t * t)

    # Preallocated work buffers, re-sliced to the live count every step.
    n_live = live.size
    norms = np.empty((n_live, m))
    gram = np.empty((n_live, m, m))
    sq = np.empty((n_live, m, m))
    dist = np.empty((n_live, m, m))
    bmat = np.empty((n_live, m, m))
    degenerate = np.empty((n_live, m, m), dtype=bool)
    close_mask = np.empty((n_live, m, m), dtype=bool)
    y2 = np.empty((n_live, m, n_dim))
    bx = np.empty((n_live, m, n_dim))
    x_next = np.empty((n_live, m, n_dim))

    def embedded_distances(y: np.ndarray) -> bool:
        """Fill ``sq``/``dist`` with squared and plain pairwise distances.

        The Gram identity carries an *absolute* rounding error of a few
        ulp of ``|y|^2``, which is a large *relative* error for
        near-coincident points -- and ``t / d`` amplifies exactly those
        entries.  Every off-diagonal distance below ``1e-2`` (radio-range
        units) is therefore recomputed with the exact difference formula;
        such pairs are rare, so the fix-up normally costs one comparison
        pass and no gather.  The diagonal (exactly zero in the scalar
        chain, ulp-level residue under the Gram identity -- possibly
        negative, hence NaN after the sqrt) is overwritten with zero
        directly.  Returns whether any off-diagonal pair is *degenerate*
        (distance <= 1e-12), so the caller can skip the B-matrix masking
        passes when no maskable entry can exist.
        """
        k = y.shape[0]
        np.einsum("bij,bij->bi", y, y, out=norms[:k])
        # y @ (2y)^T is bit-identical to 2 * (y @ y^T): scaling by a power
        # of two is exact and distributes exactly over float addition, and
        # it trades a full (k, m, m) pass for a (k, m, d) one.
        np.multiply(y, 2.0, out=y2[:k])
        np.matmul(y, np.swapaxes(y2[:k], -1, -2), out=gram[:k])
        np.add(norms[:k, :, None], norms[:k, None, :], out=sq[:k])
        np.subtract(sq[:k], gram[:k], out=sq[:k])
        np.less(sq[:k], 1e-4, out=close_mask[:k])
        close_mask[:k][:, diag, diag] = False
        has_degenerate = False
        with np.errstate(invalid="ignore"):
            np.sqrt(sq[:k], out=dist[:k])
        dist[:k][:, diag, diag] = 0.0
        sq[:k][:, diag, diag] = 0.0
        if close_mask[:k].any():
            cb, ci, cj = np.nonzero(close_mask[:k])
            delta = y[cb, ci] - y[cb, cj]
            exact = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            dist[:k][cb, ci, cj] = exact
            sq[:k][cb, ci, cj] = exact * exact
            has_degenerate = bool((exact <= 1e-12).any())
        return has_degenerate

    def stress_of(k: int) -> np.ndarray:
        half = np.einsum("bij,bij->b", w, sq[:k])
        half += 2.0 * np.einsum("bij,bij->b", neg_wt, dist[:k])
        half += wtt
        return half / 2.0

    has_degenerate = embedded_distances(xa)
    last = stress_of(live.size)
    for _ in range(iterations):
        k = live.size
        if k == 0:
            break
        # dist[:k]/sq[:k] hold the distances of the current live embeddings.
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(neg_wt, dist[:k], out=bmat[:k])
        if has_degenerate:
            # Only run the masking passes when an off-diagonal entry with
            # dist <= 1e-12 actually exists (embedded_distances tracked
            # this); the division's NaN diagonal is overwritten below.
            np.less_equal(dist[:k], 1e-12, out=degenerate[:k])
            np.copyto(bmat[:k], 0.0, where=degenerate[:k])
        bmat[:k][:, diag, diag] = 0.0
        bmat[:k][:, diag, diag] = -bmat[:k].sum(axis=2)
        np.matmul(bmat[:k], xa, out=bx[:k])
        np.matmul(v_pinv, bx[:k], out=x_next[:k])
        steps[live] += 1
        has_degenerate = embedded_distances(x_next[:k])
        current = stress_of(k)
        x[live] = x_next[:k]
        done = (last - current) <= tol * np.maximum(last, 1e-12)
        if done.any():
            keep = ~done
            live = live[keep]
            xa = x_next[:k][keep]
            w = w[keep]
            neg_wt = neg_wt[keep]
            wtt = wtt[keep]
            v_pinv = v_pinv[keep]
            last = current[keep]
            kept_sq = sq[:k][keep]
            kept_dist = dist[:k][keep]
            sq[: live.size] = kept_sq
            dist[: live.size] = kept_dist
        else:
            xa = x_next[:k]
            last = current
    return x, steps


def local_mds_embedding(
    partial_distances: np.ndarray,
    *,
    n_components: int = 3,
    missing_value: float = np.inf,
    refine: bool = True,
    refine_iterations: int = 30,
    info: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Local coordinate system from partial pairwise distances.

    Composition of :func:`complete_distance_matrix`, :func:`classical_mds`,
    and (by default) :func:`smacof_refine` against the measured entries
    only; this is what step (I) of Algorithm 1 runs at every node.  With
    perfect measurements the refinement recovers the local geometry almost
    exactly even though shortest-path completion inflated the classical-MDS
    initialization.

    ``info``, when given a dict, receives the ``smacof_iterations`` count
    -- the deterministic refinement observable the localization bench
    compares across engines.
    """
    partial = np.asarray(partial_distances, dtype=float)
    completed = complete_distance_matrix(partial, missing_value=missing_value)
    coords = classical_mds(completed, n_components=n_components)
    n_steps = 0
    if refine:
        measured_mask = np.isfinite(partial) if np.isinf(missing_value) else (
            partial != missing_value
        )
        weights = measured_mask.astype(float)
        np.fill_diagonal(weights, 0.0)
        coords, n_steps = smacof_refine_counted(
            coords, np.where(measured_mask, partial, 0.0), weights,
            iterations=refine_iterations,
        )
    if info is not None:
        info["smacof_iterations"] = n_steps
    return coords


def local_mds_embedding_batch(
    partial_distances: np.ndarray,
    *,
    n_components: int = 3,
    missing_value: float = np.inf,
    refine: bool = True,
    refine_iterations: int = 30,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`local_mds_embedding` over an ``(B, m, m)`` stack.

    The batched-engine hot path: completes, embeds, and refines ``B``
    same-size neighborhoods at once.  Slice ``b`` of the returned
    coordinate stack matches the scalar composition on
    ``partial_distances[b]`` within :data:`SMACOF_BATCH_COORD_TOL` (the
    completion and classical-MDS stages are bit-identical; the refinement
    reorders float reductions, see :func:`smacof_refine_batch`), and the
    step counts match exactly.

    Returns
    -------
    (coords, steps):
        ``(B, m, n_components)`` embedded stack and the ``(B,)`` SMACOF
        step counts (zeros when ``refine`` is off).
    """
    partial = np.asarray(partial_distances, dtype=float)
    if partial.ndim != 3 or partial.shape[1] != partial.shape[2]:
        raise ValueError("partial distance stack must be (B, m, m)")
    completed = complete_distance_matrix_batch(partial, missing_value=missing_value)
    coords = classical_mds_batch(completed, n_components=n_components)
    steps = np.zeros(partial.shape[0], dtype=int)
    if refine:
        measured_mask = np.isfinite(partial) if np.isinf(missing_value) else (
            partial != missing_value
        )
        weights = measured_mask.astype(float)
        diag = np.arange(partial.shape[1])
        weights[:, diag, diag] = 0.0
        coords, steps = smacof_refine_batch(
            coords, np.where(measured_mask, partial, 0.0), weights,
            iterations=refine_iterations,
        )
    return coords, steps
