"""Multidimensional scaling for local coordinate establishment.

Step (I) of Algorithm 1: every node collects the (noisy) pairwise distances
within its one-hop neighborhood and embeds them into a private 3D coordinate
frame.  The paper adopts improved MDS-based localization (Shang & Ruml); the
same family is implemented here:

1. missing pairwise distances (neighbor pairs that are out of radio range of
   each other) are completed with shortest-path distances over the measured
   local graph (:func:`complete_distance_matrix`), and
2. the completed matrix is embedded with classical (Torgerson) MDS
   (:func:`classical_mds`).

The resulting frame is arbitrary up to rotation/translation/reflection,
which UBF is invariant to.

Batched twins
-------------
Every step also has a batched twin operating on an ``(B, m, m)`` stack of
same-size neighborhoods (:func:`complete_distance_matrix_batch`,
:func:`classical_mds_batch`, :func:`smacof_refine_batch`, composed by
:func:`local_mds_embedding_batch`).  Stacking ``B`` same-size problems
amortizes numpy call overhead ``B``-fold and lets the LAPACK stages
(``eigh``, ``pinv``) run as gufunc loops instead of one call per node.

Two accuracy contracts apply.  :func:`complete_distance_matrix_batch` and
:func:`classical_mds_batch` mirror the scalar implementations expression
for expression, so their slices are *bit-identical* to the scalar results.
:func:`smacof_refine_batch` additionally restructures the iteration
arithmetic for memory locality (Gram-identity distances, algebraically
expanded stress); its slices match the scalar oracle within
:data:`SMACOF_BATCH_COORD_TOL` with *exactly* equal iteration counts --
the engine contract the differential tests in
``tests/unit/test_localization_engines.py`` pin down (see
docs/PERFORMANCE.md, "Localization engine").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

#: Distance assigned to node pairs unreachable inside the local subgraph.
#: Two one-hop neighbors of the same node can be at most two radio ranges
#: apart, so 2.0 (in radio-range units) is the geometrically safe ceiling.
UNREACHABLE_LOCAL_DISTANCE = 2.0

#: Coordinate agreement tolerance (absolute, in radio-range units) between
#: the scalar and batched SMACOF refinements.  The batched chain reorders
#: float reductions, so individual operations differ at the last ulp; the
#: majorization update is a contraction near its fixed point, keeping the
#: accumulated divergence many orders of magnitude below this bound
#: (observed maxima are ~1e-12 on 2000-node scenarios).
SMACOF_BATCH_COORD_TOL = 1e-9

#: Slices per Floyd-Warshall sub-chunk in the batched completion; two
#: ``(chunk, m, m)`` float arrays at typical collection sizes stay within
#: the L2 cache, which the relaxation's m full passes reward.
FW_CHUNK_SLICES = 8

#: Eigenvalues below this fraction of the leading eigenvalue are treated
#: as exact zeros by classical MDS.  Such directions are pure rounding
#: noise (a fully collinear collection has two mathematically-zero
#: eigenvalues that materialize as ~1e-16 * lambda_max), and their
#: eigenvectors are numerically arbitrary -- different LAPACK drivers
#: return entirely different bases for the near-null subspace, which
#: would break the cross-engine coordinate contract.  Zeroing them makes
#: every engine emit the same (zero) coordinate for a degenerate axis.
DEGENERATE_EIGENVALUE_RATIO = 1e-12

#: Max rows per block-diagonal Dijkstra call in
#: :func:`complete_distance_matrix_sparse`: bounds the dense
#: ``(rows, rows)`` distance output of one scipy call to a few megabytes.
SPARSE_COMPLETION_BLOCK_ROWS = 1024


def complete_distance_matrix(
    partial: np.ndarray,
    *,
    missing_value: float = np.inf,
    unreachable: float = UNREACHABLE_LOCAL_DISTANCE,
) -> np.ndarray:
    """Fill unknown entries of a partial distance matrix via shortest paths.

    Parameters
    ----------
    partial:
        Square symmetric matrix; ``partial[i, j]`` is the measured distance
        between local nodes ``i`` and ``j``, or ``missing_value`` when the
        pair is out of range of each other.  The diagonal must be zero.
    missing_value:
        Sentinel marking unmeasured pairs (default ``inf``).
    unreachable:
        Distance substituted for pairs still unreachable after shortest-path
        completion (disconnected local subgraphs).

    Returns
    -------
    numpy.ndarray
        Completed symmetric matrix with no infinities.

    Notes
    -----
    The completion is plain Floyd-Warshall over numpy broadcasting.  The
    relaxation runs fully in place: one scratch buffer holds the ``via k``
    sums and ``np.minimum(..., out=dist)`` folds them back, so no per-``k``
    arrays are allocated.  (In-place per-``k`` relaxation is sound because
    iteration ``k`` never changes row or column ``k``: the candidate for
    ``dist[i, k]`` is ``dist[i, k] + dist[k, k] = dist[i, k]``.)
    """
    dist = np.array(partial, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("partial distance matrix must be square")
    if np.isfinite(missing_value):
        dist[dist == missing_value] = np.inf
    np.fill_diagonal(dist, 0.0)
    m = dist.shape[0]
    via_k = np.empty_like(dist)
    for k in range(m):
        np.add(dist[:, k, None], dist[None, k, :], out=via_k)
        np.minimum(dist, via_k, out=dist)
    dist[~np.isfinite(dist)] = unreachable
    return dist


def complete_distance_matrix_batch(
    partial: np.ndarray,
    *,
    missing_value: float = np.inf,
    unreachable: float = UNREACHABLE_LOCAL_DISTANCE,
) -> np.ndarray:
    """Batched :func:`complete_distance_matrix` over an ``(B, m, m)`` stack.

    Runs the same in-place Floyd-Warshall relaxation on every slice at
    once; slice ``b`` of the result is bit-identical to
    ``complete_distance_matrix(partial[b], ...)``.  Slices are relaxed in
    sub-chunks of :data:`FW_CHUNK_SLICES` so the pair of ``(chunk, m, m)``
    working arrays stays cache-resident (each slice's relaxation is
    independent, so chunking cannot change the result).
    """
    dist = np.array(partial, dtype=float)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError("partial distance stack must be (B, m, m)")
    if np.isfinite(missing_value):
        dist[dist == missing_value] = np.inf
    m = dist.shape[1]
    diag = np.arange(m)
    dist[:, diag, diag] = 0.0
    n_chunk = min(FW_CHUNK_SLICES, dist.shape[0])
    via_k = np.empty((n_chunk, m, m))
    for c in range(0, dist.shape[0], n_chunk):
        block = dist[c : c + n_chunk]
        via = via_k[: block.shape[0]]
        for k in range(m):
            np.add(block[:, :, k, None], block[:, None, k, :], out=via)
            np.minimum(block, via, out=block)
    dist[~np.isfinite(dist)] = unreachable
    return dist


def _canonicalize_axis_signs(vecs: np.ndarray) -> np.ndarray:
    """Flip eigenvector columns to a driver-independent sign convention.

    An eigenvector's sign is arbitrary, and different LAPACK drivers
    (``syevd`` behind ``np.linalg.eigh``, MRRR ``syevr`` behind the sparse
    engine's subset solve) make different choices.  Each column is flipped
    so that its largest-magnitude component is positive, which every engine
    applies identically; negation is exact in IEEE arithmetic, so the
    convention costs no precision.  Operates on the trailing two axes of a
    ``(..., m, k)`` stack and returns a new array.
    """
    if vecs.shape[-2] == 0 or vecs.shape[-1] == 0:
        return vecs
    amax = np.argmax(np.abs(vecs), axis=-2)
    picked = np.take_along_axis(vecs, amax[..., None, :], axis=-2)
    return vecs * np.where(picked < 0.0, -1.0, 1.0)


def complete_distance_matrix_sparse(
    partial: np.ndarray,
    *,
    missing_value: float = np.inf,
    unreachable: float = UNREACHABLE_LOCAL_DISTANCE,
) -> np.ndarray:
    """Sparse-graph shortest-path completion of an ``(B, m, m)`` stack.

    Same contract as :func:`complete_distance_matrix_batch`, computed with
    ``scipy.sparse.csgraph.dijkstra`` instead of the dense Floyd-Warshall
    relaxation: the measured entries of every slice become one
    block-diagonal CSR graph (blocks are independent, so batching cannot
    couple frames) and a single multi-source Dijkstra call completes up to
    :data:`SPARSE_COMPLETION_BLOCK_ROWS` rows at a time.

    Dijkstra accumulates each path sum left-to-right along the shortest
    path whereas Floyd-Warshall folds sub-path sums, so the two are not
    bit-identical -- they agree to well within the 1e-9 engine contract
    (property-tested in the engine-equivalence suite).  Cost is
    ``O(m^2 log m)`` per frame versus ``O(m^3)`` dense, which wins for
    large frames; below :data:`~repro.network.localization.SPARSE_DIJKSTRA_MIN_MEMBERS`
    the dense relaxation's contiguous arithmetic is faster in practice.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    dist = np.array(partial, dtype=float)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError("partial distance stack must be (B, m, m)")
    if np.isfinite(missing_value):
        dist[dist == missing_value] = np.inf
    n_batch, m, _ = dist.shape
    if n_batch == 0 or m == 0:
        return dist
    diag = np.arange(m)
    dist[:, diag, diag] = 0.0
    frames_per_call = max(1, SPARSE_COMPLETION_BLOCK_ROWS // m)
    out = np.empty_like(dist)
    for start in range(0, n_batch, frames_per_call):
        block = dist[start : start + frames_per_call]
        nb = block.shape[0]
        mask = np.isfinite(block)
        mask[:, diag, diag] = False
        counts = mask.sum(axis=2)
        indptr = np.zeros(nb * m + 1, dtype=np.int64)
        np.cumsum(counts.reshape(-1), out=indptr[1:])
        rows_b, _, cols = np.nonzero(mask)
        graph = csr_matrix(
            (block[mask], rows_b * m + cols, indptr), shape=(nb * m, nb * m)
        )
        full = dijkstra(graph, directed=True)
        picked = np.arange(nb)
        out[start : start + nb] = full.reshape(nb, m, nb, m)[picked, :, picked, :]
    out[~np.isfinite(out)] = unreachable
    return out


def torgerson_gram_batch(distances: np.ndarray) -> np.ndarray:
    """Double-center a distance stack into the classical-MDS Gram stack.

    Computes ``-1/2 J D^2 J`` for every ``(m, m)`` slice using the O(m^2)
    mean-subtraction identity (``J S J = S - r 1^T - 1 r^T + t`` with row
    means ``r`` and total mean ``t``).  Every engine centers through this
    one routine (or its bit-identical native twin ``center_gram_batch``):
    the classical-MDS seed must match across engines bit for bit, because
    SMACOF's ``t / d`` majorization terms amplify seed differences by
    orders of magnitude on frames with near-zero measured distances.
    Accepts a single ``(m, m)`` matrix or any ``(..., m, m)`` stack; the
    per-slice reduction order is identical either way.
    """
    sq = np.ascontiguousarray(distances, dtype=float) ** 2
    row = sq.mean(axis=-1, keepdims=True)
    total = row.mean(axis=-2, keepdims=True)
    return -0.5 * (sq - row - np.swapaxes(row, -1, -2) + total)


def classical_mds_from_gram(gram: np.ndarray, n_components: int = 3) -> np.ndarray:
    """Embed one pre-centered Gram matrix via a top-``n_components`` solve.

    The per-frame MDS eigensolve shared by every engine: it asks LAPACK's
    MRRR driver (``syevr``) for just the top eigenpairs, which is ~5x
    cheaper than a full ``syevd`` factorization at typical frame sizes.
    Eigenvector signs are canonicalized and near-null eigenvalues zeroed
    identically everywhere, and :func:`classical_mds` routes through this
    same solve, so the classical-MDS seed is bit-identical across the
    pernode, batch, and sparse engines -- a hard requirement, since the
    SMACOF refinement that follows can amplify a last-ulp seed difference
    past the 1e-9 engine contract on ill-conditioned frames.  ``gram`` is
    overwritten.
    """
    m = gram.shape[0]
    if m == 0:
        return np.empty((0, n_components))
    k = min(n_components, m)
    try:
        from scipy.linalg import eigh as scipy_eigh
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        eigvals, eigvecs = np.linalg.eigh(gram)
        vals = eigvals[::-1][:k]
        vecs = eigvecs[:, ::-1][:, :k]
    else:
        vals, vecs = scipy_eigh(
            gram,
            subset_by_index=[m - k, m - 1],
            driver="evr",
            lower=False,
            check_finite=False,
            overwrite_a=True,
        )
        vals = vals[::-1]
        vecs = vecs[:, ::-1]
    top_vals = np.clip(vals, 0.0, None)
    top_vals = np.where(
        top_vals < DEGENERATE_EIGENVALUE_RATIO * top_vals[..., :1], 0.0, top_vals
    )
    coords = _canonicalize_axis_signs(vecs) * np.sqrt(top_vals)[None, :]
    if coords.shape[1] < n_components:
        pad = np.zeros((m, n_components - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords


_SYEVR_CACHE = None


def _syevr():
    """The raw LAPACK ``dsyevr`` handle (or ``None`` without scipy)."""
    global _SYEVR_CACHE
    if _SYEVR_CACHE is None:
        try:
            from scipy.linalg import get_lapack_funcs
        except ImportError:  # pragma: no cover - scipy is a hard dependency
            _SYEVR_CACHE = (None,)
        else:
            _SYEVR_CACHE = get_lapack_funcs(("syevr",), (np.empty((1, 1)),))
    return _SYEVR_CACHE[0]


def classical_mds_from_gram_stack(
    gram: np.ndarray, n_components: int = 3
) -> np.ndarray:
    """Batched :func:`classical_mds_from_gram` over a ``(B, m, m)`` stack.

    The sparse engine's MDS hot loop: one raw LAPACK ``dsyevr`` call per
    slice (skipping the scipy wrapper's per-call validation), with the
    clip / degenerate-cutoff / sign-canonicalization / scaling epilogue
    vectorized across the whole stack.
    """
    n_batch, m, _ = gram.shape
    if m == 0:
        return np.zeros((n_batch, 0, n_components))
    k = min(n_components, m)
    vals = np.empty((n_batch, k))
    vecs = np.empty((n_batch, m, k))
    syevr = _syevr()
    for b in range(n_batch):
        if syevr is not None:
            w, z, _, _, info = syevr(
                gram[b], compute_v=1, range="I", il=m - k + 1, iu=m, lower=0
            )
        else:  # pragma: no cover - scipy is a hard dependency
            info = 1
        if syevr is None or info != 0:
            ew, ev = np.linalg.eigh(gram[b])
            vals[b] = ew[::-1][:k]
            vecs[b] = ev[:, ::-1][:, :k]
        else:
            vals[b] = w[k - 1 :: -1]
            vecs[b] = z[:, ::-1]
    top_vals = np.clip(vals, 0.0, None)
    top_vals = np.where(
        top_vals < DEGENERATE_EIGENVALUE_RATIO * top_vals[..., :1], 0.0, top_vals
    )
    coords = _canonicalize_axis_signs(vecs) * np.sqrt(top_vals)[:, None, :]
    if k < n_components:
        pad = np.zeros((n_batch, m, n_components - k))
        coords = np.concatenate([coords, pad], axis=2)
    return coords


def classical_mds(distances: np.ndarray, n_components: int = 3) -> np.ndarray:
    """Classical (Torgerson) MDS embedding of a distance matrix.

    Double-centers the squared distance matrix via
    :func:`torgerson_gram_batch` and takes the top ``n_components``
    eigenpairs via :func:`classical_mds_from_gram` -- the exact chain the
    sparse engine runs per frame, so the seed every engine hands to SMACOF
    is bit-identical.  Negative eigenvalues (which arise when the input is
    not exactly Euclidean, e.g. after shortest-path completion or under
    measurement noise) are clipped to zero; eigenvalues below
    :data:`DEGENERATE_EIGENVALUE_RATIO` of the leading one are zeroed (their
    eigenvectors are numerically arbitrary), and eigenvector signs follow
    the canonical convention of :func:`_canonicalize_axis_signs` so every
    engine produces the same embedding.

    Parameters
    ----------
    distances:
        Square symmetric matrix of (approximate) Euclidean distances.
    n_components:
        Embedding dimension; 3 for this library.

    Returns
    -------
    numpy.ndarray
        ``(m, n_components)`` coordinates, centered at the origin.
    """
    dist = np.asarray(distances, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance matrix must be square")
    m = dist.shape[0]
    if m == 0:
        return np.empty((0, n_components))
    if not np.all(np.isfinite(dist)):
        raise ValueError("distance matrix must be finite; complete it first")

    return classical_mds_from_gram(torgerson_gram_batch(dist), n_components)


def classical_mds_batch(distances: np.ndarray, n_components: int = 3) -> np.ndarray:
    """Batched :func:`classical_mds` over an ``(B, m, m)`` stack.

    Same centering identity and per-slice ``syevr`` solve as the scalar
    path, so slice ``b`` equals ``classical_mds(distances[b],
    n_components)`` bit for bit.
    """
    dist = np.asarray(distances, dtype=float)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError("distance stack must be (B, m, m)")
    n_batch, m, _ = dist.shape
    if m == 0:
        return np.empty((n_batch, 0, n_components))
    if not np.all(np.isfinite(dist)):
        raise ValueError("distance stack must be finite; complete it first")

    return classical_mds_from_gram_stack(torgerson_gram_batch(dist), n_components)


def smacof_refine(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> np.ndarray:
    """Weighted stress majorization (SMACOF) refinement of an embedding.

    Improves ``coords`` so that pairwise embedded distances match
    ``distances`` where ``weights`` is positive.  This is the "improved" in
    improved-MDS localization [31]: the classical-MDS solution (computed on
    a shortest-path-completed matrix, which *overestimates* non-adjacent
    distances) is refined against the actually *measured* distances only.

    Parameters
    ----------
    coords:
        ``(m, d)`` initial embedding.
    distances:
        ``(m, m)`` target distances; entries with zero weight are ignored.
    weights:
        ``(m, m)`` symmetric non-negative weights with a zero diagonal.
    iterations:
        Maximum majorization steps.
    tol:
        Relative stress-improvement threshold for early stopping.

    Returns
    -------
    numpy.ndarray
        Refined ``(m, d)`` coordinates (a new array).
    """
    coords, _ = smacof_refine_counted(
        coords, distances, weights, iterations=iterations, tol=tol
    )
    return coords


def smacof_refine_counted(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> Tuple[np.ndarray, int]:
    """:func:`smacof_refine` that also reports the majorization steps taken.

    The step count is a deterministic observable of the refinement (it
    depends only on the inputs), so the batched engine is required to
    reproduce it exactly -- it is one of the counters the localization
    bench compares between engines.
    """
    x = np.array(coords, dtype=float)
    m = x.shape[0]
    w = np.asarray(weights, dtype=float)
    d_target = np.asarray(distances, dtype=float)
    if m <= 1 or not np.any(w > 0):
        return x, 0

    # Moore-Penrose inverse of the weight Laplacian, computed once.
    v = -w.copy()
    np.fill_diagonal(v, w.sum(axis=1))
    v_pinv = np.linalg.pinv(v + np.full((m, m), 1.0 / m)) - np.full((m, m), 1.0 / m)

    def embedded_distances(y: np.ndarray) -> np.ndarray:
        diff = y[:, None, :] - y[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def stress(y: np.ndarray) -> float:
        d = embedded_distances(y)
        return float(np.sum(w * (d - d_target) ** 2) / 2.0)

    last = stress(x)
    n_steps = 0
    for _ in range(iterations):
        d = embedded_distances(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(d > 1e-12, d_target / d, 0.0)
        b = -w * ratio
        np.fill_diagonal(b, 0.0)
        np.fill_diagonal(b, -b.sum(axis=1))
        x = v_pinv @ (b @ x)
        n_steps += 1
        current = stress(x)
        if last - current <= tol * max(last, 1e-12):
            break
        last = current
    return x, n_steps


def smacof_refine_batch(
    coords: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray,
    *,
    iterations: int = 30,
    tol: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched SMACOF over ``(B, m, d)`` embeddings with per-slice stopping.

    Runs the majorization of :func:`smacof_refine_counted` on every slice
    of the stack simultaneously, restructured for throughput:

    * embedded distances use the Gram identity
      ``d_ij^2 = |y_i|^2 + |y_j|^2 - 2 <y_i, y_j>`` (one gemm plus
      ``O(m^2)`` traffic instead of the ``O(m^2 d)`` pairwise-difference
      tensor), clipping cancellation negatives before the square root;
    * the stress is expanded algebraically,
      ``2 sigma = sum w d^2 - 2 sum (w t) d + sum w t^2``, so each check is
      two einsum reductions against precomputed per-slice constants;
    * the majorization matrix comes straight from the precomputed
      ``-w t`` product (one divide, no ratio intermediate);
    * all work buffers are allocated once and re-sliced, distances are
      computed once per step (reused across the B-matrix and the stress),
      and the live set is compacted only on steps where a slice converged.

    Slices converge independently: a converged slice is frozen and dropped
    from the live set while the rest keep iterating, so per-slice *step
    counts* reproduce the scalar early-stopping sequence exactly (the
    convergence test sees the same stress values up to a relative
    float-reassociation error of ~1e-13, see below).  Coordinates match
    ``smacof_refine_counted`` within :data:`SMACOF_BATCH_COORD_TOL`: the
    reordered reductions differ from the scalar chain only at the
    last-ulp level per operation, and the majorization update is a
    contraction near the fixed point, so the engines' iterates never
    drift beyond that tolerance.

    Returns
    -------
    (coords, steps):
        The refined ``(B, m, d)`` stack and an ``(B,)`` int array of
        majorization steps per slice.
    """
    x = np.array(coords, dtype=float)
    if x.ndim != 3:
        raise ValueError("coords stack must be (B, m, d)")
    n_batch, m, n_dim = x.shape
    w_all = np.asarray(weights, dtype=float)
    t_all = np.asarray(distances, dtype=float)
    steps = np.zeros(n_batch, dtype=int)
    if n_batch == 0 or m <= 1:
        return x, steps
    live = np.nonzero(np.any(w_all > 0, axis=(1, 2)))[0]
    if live.size == 0:
        return x, steps

    diag = np.arange(m)
    w = w_all[live]
    t = t_all[live]
    v = -w.copy()
    v[:, diag, diag] = w.sum(axis=2)
    correction = np.full((m, m), 1.0 / m)
    # The weight Laplacian V is PSD with nullspace span(1) whenever the
    # weight graph is connected -- true by construction for BFS-built
    # collections (every hop-k member has a measured edge to a
    # hop-(k-1) parent) -- making V + 11^T/m symmetric positive definite
    # with plain inverse equal to pinv(V) + 11^T/m.  A batched LU inverse
    # is several times cheaper than an SVD- or eigh-based pseudo-inverse;
    # for rank-deficient stacks (disconnected weight graphs, only seen on
    # arbitrary caller-supplied matrices) LU fails loudly and we fall back
    # to the spectral-cutoff pseudo-inverse.
    a = v + correction
    try:
        v_pinv = np.linalg.inv(a)
    except np.linalg.LinAlgError:
        evals, evecs = np.linalg.eigh(a)
        cutoff = 1e-15 * m * np.abs(evals).max(axis=1, keepdims=True)
        keep = np.abs(evals) > cutoff
        inv_vals = np.where(keep, 1.0 / np.where(keep, evals, 1.0), 0.0)
        v_pinv = (evecs * inv_vals[:, None, :]) @ np.swapaxes(evecs, -1, -2)
    v_pinv -= correction
    xa = x[live]

    # Per-slice constants of the iteration.
    neg_wt = -(w * t)
    wtt = np.einsum("bij,bij->b", w, t * t)

    # Preallocated work buffers, re-sliced to the live count every step.
    n_live = live.size
    norms = np.empty((n_live, m))
    gram = np.empty((n_live, m, m))
    sq = np.empty((n_live, m, m))
    dist = np.empty((n_live, m, m))
    bmat = np.empty((n_live, m, m))
    degenerate = np.empty((n_live, m, m), dtype=bool)
    close_mask = np.empty((n_live, m, m), dtype=bool)
    y2 = np.empty((n_live, m, n_dim))
    bx = np.empty((n_live, m, n_dim))
    x_next = np.empty((n_live, m, n_dim))

    def embedded_distances(y: np.ndarray) -> bool:
        """Fill ``sq``/``dist`` with squared and plain pairwise distances.

        The Gram identity carries an *absolute* rounding error of a few
        ulp of ``|y|^2``, which is a large *relative* error for
        near-coincident points -- and ``t / d`` amplifies exactly those
        entries.  Every off-diagonal distance below ``1e-2`` (radio-range
        units) is therefore recomputed with the exact difference formula;
        such pairs are rare, so the fix-up normally costs one comparison
        pass and no gather.  The diagonal (exactly zero in the scalar
        chain, ulp-level residue under the Gram identity -- possibly
        negative, hence NaN after the sqrt) is overwritten with zero
        directly.  Returns whether any off-diagonal pair is *degenerate*
        (distance <= 1e-12), so the caller can skip the B-matrix masking
        passes when no maskable entry can exist.
        """
        k = y.shape[0]
        np.einsum("bij,bij->bi", y, y, out=norms[:k])
        # y @ (2y)^T is bit-identical to 2 * (y @ y^T): scaling by a power
        # of two is exact and distributes exactly over float addition, and
        # it trades a full (k, m, m) pass for a (k, m, d) one.
        np.multiply(y, 2.0, out=y2[:k])
        np.matmul(y, np.swapaxes(y2[:k], -1, -2), out=gram[:k])
        np.add(norms[:k, :, None], norms[:k, None, :], out=sq[:k])
        np.subtract(sq[:k], gram[:k], out=sq[:k])
        np.less(sq[:k], 1e-4, out=close_mask[:k])
        close_mask[:k][:, diag, diag] = False
        has_degenerate = False
        with np.errstate(invalid="ignore"):
            np.sqrt(sq[:k], out=dist[:k])
        dist[:k][:, diag, diag] = 0.0
        sq[:k][:, diag, diag] = 0.0
        if close_mask[:k].any():
            cb, ci, cj = np.nonzero(close_mask[:k])
            delta = y[cb, ci] - y[cb, cj]
            exact = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            dist[:k][cb, ci, cj] = exact
            sq[:k][cb, ci, cj] = exact * exact
            has_degenerate = bool((exact <= 1e-12).any())
        return has_degenerate

    def stress_of(k: int) -> np.ndarray:
        half = np.einsum("bij,bij->b", w, sq[:k])
        half += 2.0 * np.einsum("bij,bij->b", neg_wt, dist[:k])
        half += wtt
        return half / 2.0

    has_degenerate = embedded_distances(xa)
    last = stress_of(live.size)
    for _ in range(iterations):
        k = live.size
        if k == 0:
            break
        # dist[:k]/sq[:k] hold the distances of the current live embeddings.
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(neg_wt, dist[:k], out=bmat[:k])
        if has_degenerate:
            # Only run the masking passes when an off-diagonal entry with
            # dist <= 1e-12 actually exists (embedded_distances tracked
            # this); the division's NaN diagonal is overwritten below.
            np.less_equal(dist[:k], 1e-12, out=degenerate[:k])
            np.copyto(bmat[:k], 0.0, where=degenerate[:k])
        bmat[:k][:, diag, diag] = 0.0
        bmat[:k][:, diag, diag] = -bmat[:k].sum(axis=2)
        np.matmul(bmat[:k], xa, out=bx[:k])
        np.matmul(v_pinv, bx[:k], out=x_next[:k])
        steps[live] += 1
        has_degenerate = embedded_distances(x_next[:k])
        current = stress_of(k)
        x[live] = x_next[:k]
        done = (last - current) <= tol * np.maximum(last, 1e-12)
        if done.any():
            keep = ~done
            live = live[keep]
            xa = x_next[:k][keep]
            w = w[keep]
            neg_wt = neg_wt[keep]
            wtt = wtt[keep]
            v_pinv = v_pinv[keep]
            last = current[keep]
            kept_sq = sq[:k][keep]
            kept_dist = dist[:k][keep]
            sq[: live.size] = kept_sq
            dist[: live.size] = kept_dist
        else:
            xa = x_next[:k]
            last = current
    return x, steps


def local_mds_embedding(
    partial_distances: np.ndarray,
    *,
    n_components: int = 3,
    missing_value: float = np.inf,
    refine: bool = True,
    refine_iterations: int = 30,
    info: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Local coordinate system from partial pairwise distances.

    Composition of :func:`complete_distance_matrix`, :func:`classical_mds`,
    and (by default) :func:`smacof_refine` against the measured entries
    only; this is what step (I) of Algorithm 1 runs at every node.  With
    perfect measurements the refinement recovers the local geometry almost
    exactly even though shortest-path completion inflated the classical-MDS
    initialization.

    ``info``, when given a dict, receives the ``smacof_iterations`` count
    -- the deterministic refinement observable the localization bench
    compares across engines.
    """
    partial = np.asarray(partial_distances, dtype=float)
    completed = complete_distance_matrix(partial, missing_value=missing_value)
    coords = classical_mds(completed, n_components=n_components)
    n_steps = 0
    if refine:
        measured_mask = np.isfinite(partial) if np.isinf(missing_value) else (
            partial != missing_value
        )
        weights = measured_mask.astype(float)
        np.fill_diagonal(weights, 0.0)
        coords, n_steps = smacof_refine_counted(
            coords, np.where(measured_mask, partial, 0.0), weights,
            iterations=refine_iterations,
        )
    if info is not None:
        info["smacof_iterations"] = n_steps
    return coords


def local_mds_embedding_batch(
    partial_distances: np.ndarray,
    *,
    n_components: int = 3,
    missing_value: float = np.inf,
    refine: bool = True,
    refine_iterations: int = 30,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`local_mds_embedding` over an ``(B, m, m)`` stack.

    The batched-engine hot path: completes, embeds, and refines ``B``
    same-size neighborhoods at once.  Slice ``b`` of the returned
    coordinate stack matches the scalar composition on
    ``partial_distances[b]`` within :data:`SMACOF_BATCH_COORD_TOL` (the
    completion and classical-MDS stages are bit-identical; the refinement
    reorders float reductions, see :func:`smacof_refine_batch`), and the
    step counts match exactly.

    Returns
    -------
    (coords, steps):
        ``(B, m, n_components)`` embedded stack and the ``(B,)`` SMACOF
        step counts (zeros when ``refine`` is off).
    """
    partial = np.asarray(partial_distances, dtype=float)
    if partial.ndim != 3 or partial.shape[1] != partial.shape[2]:
        raise ValueError("partial distance stack must be (B, m, m)")
    completed = complete_distance_matrix_batch(partial, missing_value=missing_value)
    coords = classical_mds_batch(completed, n_components=n_components)
    steps = np.zeros(partial.shape[0], dtype=int)
    if refine:
        measured_mask = np.isfinite(partial) if np.isinf(missing_value) else (
            partial != missing_value
        )
        weights = measured_mask.astype(float)
        diag = np.arange(partial.shape[1])
        weights[:, diag, diag] = 0.0
        coords, steps = smacof_refine_batch(
            coords, np.where(measured_mask, partial, 0.0), weights,
            iterations=refine_iterations,
        )
    return coords, steps
