"""On-demand native kernels for the sparse localization engine and UBF.

The hot loops (frame assembly, Floyd-Warshall completion, double
centering, SMACOF majorization, and the UBF emptiness scan) are written
once in portable C (``ckernels.c``) and compiled lazily with the system C
compiler the first time they are requested.  The resulting shared object is cached on disk
keyed by the source hash, so every later process (including pool workers)
dlopens the same binary -- a precondition for the byte-identical sharded
outputs repro-san checks.

No new dependency is introduced: the build shells out to ``cc`` (or
``$CC``) with ``ctypes`` doing the loading.  When no compiler is
available, compilation fails, or ``REPRO_NATIVE=0`` is set, callers
receive ``None`` and fall back to the pure-numpy twins in
:mod:`repro.geometry.mds` / :mod:`repro.geometry.ballfit` -- same
results, more wall clock.

The build pins ``-ffp-contract=off`` (no FMA contraction) so the C
relaxation arithmetic matches the numpy ufunc chain operation for
operation; see ckernels.c for the per-routine contracts.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional, Tuple

import numpy as np

#: Environment variable gating native kernels; set to ``0`` to force the
#: pure-numpy fallback path (used by the differential tests).
NATIVE_ENV_VAR = "REPRO_NATIVE"

#: Environment variable overriding the shared-object cache directory.
NATIVE_CACHE_ENV_VAR = "REPRO_NATIVE_CACHE"

_C_SOURCE = os.path.join(os.path.dirname(__file__), "ckernels.c")

_CFLAGS = ["-O3", "-march=native", "-ffp-contract=off", "-fPIC", "-shared"]

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)
_INT32_P = ctypes.POINTER(ctypes.c_int32)


def _ptr(array: np.ndarray, ctype) -> "ctypes.pointer":
    return array.ctypes.data_as(ctypes.POINTER(ctype))


class NativeKernels:
    """Thin typed wrappers over the compiled ``ckernels`` shared object."""

    def __init__(self, library: ctypes.CDLL, path: str):
        self.path = path
        self._lib = library
        library.assemble_frames.restype = ctypes.c_int64
        library.assemble_frames.argtypes = [
            _INT64_P, _INT64_P, _INT64_P, _INT64_P, _DOUBLE_P,
            ctypes.c_int64, _DOUBLE_P, _INT64_P,
            _INT32_P, _INT32_P, _DOUBLE_P, _INT64_P, _INT32_P,
        ]
        library.fw_complete_batch.restype = None
        library.fw_complete_batch.argtypes = [
            _DOUBLE_P, ctypes.c_int64, ctypes.c_int64, ctypes.c_double,
            _DOUBLE_P,
        ]
        library.center_gram_batch.restype = None
        library.center_gram_batch.argtypes = [
            _DOUBLE_P, ctypes.c_int64, ctypes.c_int64, _DOUBLE_P,
        ]
        library.smacof_refine_frames.restype = ctypes.c_int
        library.smacof_refine_frames.argtypes = [
            _DOUBLE_P, _INT64_P, _INT32_P, _INT32_P, _DOUBLE_P, _INT64_P,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_double,
            _DOUBLE_P, _DOUBLE_P, _DOUBLE_P, _DOUBLE_P, _DOUBLE_P, _INT64_P,
        ]
        library.ubf_empty_check.restype = None
        library.ubf_empty_check.argtypes = [
            _DOUBLE_P, _INT64_P, _DOUBLE_P, _INT64_P, _INT64_P,
            ctypes.c_int64, ctypes.c_double, ctypes.c_int,
            _INT64_P, _INT64_P, _INT64_P,
        ]

    def assemble_frames(
        self,
        members: np.ndarray,
        frame_ptr: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_vals: np.ndarray,
        partial_flat: np.ndarray,
        partial_ptr: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_delta: np.ndarray,
        edge_ptr: np.ndarray,
        local_index: np.ndarray,
    ) -> int:
        """Fill partial matrices + edge lists; returns the edge count."""
        n_frames = frame_ptr.shape[0] - 1
        return int(self._lib.assemble_frames(
            _ptr(members, ctypes.c_int64), _ptr(frame_ptr, ctypes.c_int64),
            _ptr(indptr, ctypes.c_int64), _ptr(indices, ctypes.c_int64),
            _ptr(edge_vals, ctypes.c_double), n_frames,
            _ptr(partial_flat, ctypes.c_double),
            _ptr(partial_ptr, ctypes.c_int64),
            _ptr(edge_src, ctypes.c_int32), _ptr(edge_dst, ctypes.c_int32),
            _ptr(edge_delta, ctypes.c_double), _ptr(edge_ptr, ctypes.c_int64),
            _ptr(local_index, ctypes.c_int32),
        ))

    def fw_complete(self, stack: np.ndarray, unreachable: float) -> None:
        """In-place Floyd-Warshall over a C-contiguous (B, m, m) stack."""
        b, m, _ = stack.shape
        rowk = np.empty(m, dtype=np.float64)
        self._lib.fw_complete_batch(
            _ptr(stack, ctypes.c_double), b, m, unreachable,
            _ptr(rowk, ctypes.c_double),
        )

    def center_gram(self, stack: np.ndarray) -> None:
        """In-place Torgerson centering of a symmetric (B, m, m) stack."""
        b, m, _ = stack.shape
        rowmean = np.empty(m, dtype=np.float64)
        self._lib.center_gram_batch(
            _ptr(stack, ctypes.c_double), b, m,
            _ptr(rowmean, ctypes.c_double),
        )

    def smacof_refine(
        self,
        coords: np.ndarray,
        frame_ptr: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_delta: np.ndarray,
        edge_ptr: np.ndarray,
        *,
        iterations: int,
        tol: float,
        max_members: int,
        max_edges: int,
    ) -> Optional[np.ndarray]:
        """Refine concatenated frame coordinates in place.

        Returns the per-frame step counts, or ``None`` when a frame's
        weight Laplacian was rank-deficient (disconnected measured-pair
        graph) and the caller must fall back to the numpy path.
        """
        n_frames = frame_ptr.shape[0] - 1
        steps = np.zeros(n_frames, dtype=np.int64)
        scratch_a = np.empty(max(max_members * max_members, 1), dtype=np.float64)
        scratch_ainv = np.empty_like(scratch_a)
        scratch_bxt = np.empty(max(max_members * 3, 1), dtype=np.float64)
        scratch_d = np.empty(max(max_edges, 1), dtype=np.float64)
        scratch_diff = np.empty(max(max_edges * 3, 1), dtype=np.float64)
        rc = self._lib.smacof_refine_frames(
            _ptr(coords, ctypes.c_double), _ptr(frame_ptr, ctypes.c_int64),
            _ptr(edge_src, ctypes.c_int32), _ptr(edge_dst, ctypes.c_int32),
            _ptr(edge_delta, ctypes.c_double), _ptr(edge_ptr, ctypes.c_int64),
            n_frames, iterations, tol,
            _ptr(scratch_a, ctypes.c_double), _ptr(scratch_ainv, ctypes.c_double),
            _ptr(scratch_bxt, ctypes.c_double),
            _ptr(scratch_d, ctypes.c_double), _ptr(scratch_diff, ctypes.c_double),
            _ptr(steps, ctypes.c_int64),
        )
        if rc != 0:
            return None
        return steps

    def ubf_empty_check(
        self,
        centers: np.ndarray,
        cand_ptr: np.ndarray,
        probe_flat: np.ndarray,
        probe_base: np.ndarray,
        probe_len: np.ndarray,
        threshold_sq: float,
        find_first: bool,
        balls_tested: np.ndarray,
        points_checked: np.ndarray,
        witness: np.ndarray,
    ) -> None:
        """Sequential UBF emptiness scan over batched candidate balls.

        Fills the per-node ``balls_tested`` / ``points_checked`` /
        ``witness`` output arrays in place; results are identical to the
        numpy waves of the batched kernel (see ckernels.c for the
        floating-point contract).
        """
        n_nodes = cand_ptr.shape[0] - 1
        centers = np.ascontiguousarray(centers, dtype=np.float64)
        probe_flat = np.ascontiguousarray(probe_flat, dtype=np.float64)
        cand_ptr = np.ascontiguousarray(cand_ptr, dtype=np.int64)
        probe_base = np.ascontiguousarray(probe_base, dtype=np.int64)
        probe_len = np.ascontiguousarray(probe_len, dtype=np.int64)
        self._lib.ubf_empty_check(
            _ptr(centers, ctypes.c_double), _ptr(cand_ptr, ctypes.c_int64),
            _ptr(probe_flat, ctypes.c_double),
            _ptr(probe_base, ctypes.c_int64), _ptr(probe_len, ctypes.c_int64),
            n_nodes, threshold_sq, 1 if find_first else 0,
            _ptr(balls_tested, ctypes.c_int64),
            _ptr(points_checked, ctypes.c_int64),
            _ptr(witness, ctypes.c_int64),
        )


def _cache_dir() -> str:
    override = os.environ.get(NATIVE_CACHE_ENV_VAR)
    if override:
        return override
    tag = f"repro-native-{os.getuid()}" if hasattr(os, "getuid") else "repro-native"
    return os.path.join(tempfile.gettempdir(), tag)


def _source_digest(source_path: str) -> str:
    with open(source_path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()[:16]


def _compile(source_path: str, out_path: str) -> bool:
    compiler = os.environ.get("CC", "cc")
    tmp_path = f"{out_path}.{os.getpid()}.tmp"
    command = [compiler, *_CFLAGS, "-o", tmp_path, source_path, "-lm"]
    try:
        result = subprocess.run(
            command, capture_output=True, timeout=120, check=False
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    if result.returncode != 0:
        return False
    try:
        os.replace(tmp_path, out_path)
    except OSError:
        return False
    return True


_CACHED: Tuple[bool, Optional[NativeKernels]] = (False, None)


def load_kernels() -> Optional[NativeKernels]:
    """Load (compiling if needed) the native kernels, or ``None``.

    The result is cached per process.  ``None`` means "use the numpy
    fallback": the environment disabled native kernels, no working C
    compiler was found, or the compile/load failed.
    """
    global _CACHED
    if _CACHED[0]:
        return _CACHED[1]
    kernels = _load_uncached()
    _CACHED = (True, kernels)
    return kernels


def reset_kernel_cache() -> None:
    """Forget the per-process kernel handle (test hook)."""
    global _CACHED
    _CACHED = (False, None)


def _load_uncached() -> Optional[NativeKernels]:
    if os.environ.get(NATIVE_ENV_VAR, "1").lower() in ("0", "off", "no", "false"):
        return None
    if not os.path.exists(_C_SOURCE):
        return None
    cache = _cache_dir()
    so_path = os.path.join(cache, f"ckernels-{_source_digest(_C_SOURCE)}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache, exist_ok=True)
        except OSError:
            return None
        if not _compile(_C_SOURCE, so_path):
            return None
    try:
        library = ctypes.CDLL(so_path)
        return NativeKernels(library, so_path)
    except OSError:
        return None
