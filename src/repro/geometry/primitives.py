"""Basic vector and triangle geometry in 3D.

All functions accept array-likes and operate on ``float64`` numpy arrays.
Points are row vectors of shape ``(3,)``; point sets are ``(n, 3)`` arrays.
"""

from __future__ import annotations

import numpy as np

#: Tolerance below which a triangle is treated as degenerate (collinear).
DEGENERACY_TOL = 1e-12


def as_point(p) -> np.ndarray:
    """Return ``p`` as a ``(3,)`` float64 array.

    Raises
    ------
    ValueError
        If ``p`` does not have exactly three components.
    """
    arr = np.asarray(p, dtype=float).reshape(-1)
    if arr.shape != (3,):
        raise ValueError(f"expected a 3D point, got shape {arr.shape}")
    return arr


def as_points(pts) -> np.ndarray:
    """Return ``pts`` as an ``(n, 3)`` float64 array."""
    arr = np.asarray(pts, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"expected an (n, 3) point array, got shape {arr.shape}")
    return arr


def norm(v) -> float:
    """Euclidean norm of a 3-vector."""
    return float(np.linalg.norm(np.asarray(v, dtype=float)))


def normalize(v) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises
    ------
    ValueError
        If ``v`` is (numerically) the zero vector.
    """
    arr = np.asarray(v, dtype=float)
    length = np.linalg.norm(arr)
    if length < DEGENERACY_TOL:
        raise ValueError("cannot normalize a zero-length vector")
    return arr / length


def pairwise_distances(points) -> np.ndarray:
    """Dense symmetric matrix of Euclidean distances between ``points``.

    Uses direct difference broadcasting, which is exact enough for the small
    one-hop neighborhoods this library works with (tens of points).
    """
    pts = as_points(points)
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def triangle_area(p1, p2, p3) -> float:
    """Area of the triangle ``p1 p2 p3``."""
    a = as_point(p2) - as_point(p1)
    b = as_point(p3) - as_point(p1)
    return 0.5 * float(np.linalg.norm(np.cross(a, b)))


def circumcenter(p1, p2, p3) -> np.ndarray:
    """Circumcenter of a non-degenerate triangle in 3D.

    The circumcenter is the unique point in the plane of the triangle that is
    equidistant from all three vertices.

    Raises
    ------
    ValueError
        If the three points are (numerically) collinear.
    """
    p1 = as_point(p1)
    a = as_point(p2) - p1
    b = as_point(p3) - p1
    n = np.cross(a, b)
    n2 = float(np.dot(n, n))
    if n2 < DEGENERACY_TOL:
        raise ValueError("collinear points have no circumcenter")
    offset = (np.dot(a, a) * np.cross(b, n) + np.dot(b, b) * np.cross(n, a)) / (2.0 * n2)
    return p1 + offset


def circumradius(p1, p2, p3) -> float:
    """Circumradius of a non-degenerate triangle in 3D."""
    center = circumcenter(p1, p2, p3)
    return norm(center - as_point(p1))


def point_in_ball(point, center, radius, *, tol: float = 1e-9) -> bool:
    """Whether ``point`` lies strictly inside the ball ``(center, radius)``.

    A point whose distance from ``center`` is within ``tol`` of ``radius``
    (i.e. numerically *on* the sphere) is not considered inside.  This is the
    convention the UBF emptiness test relies on: the three nodes that define
    a candidate ball sit exactly on its surface and must not disqualify it.
    """
    return norm(as_point(point) - as_point(center)) < radius - tol
