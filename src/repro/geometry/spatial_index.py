"""Uniform grid index for fixed-radius neighbor queries in 3D.

Building a unit-ball graph naively costs ``O(n^2)`` distance checks.  The
generator instead bins points into a uniform grid with cell size equal to the
query radius, so each query inspects only the 27 surrounding cells.  For the
roughly uniform deployments this library simulates, construction and the full
all-pairs neighbor sweep are both ``O(n)`` expected.

The index is fully array-based: cell membership is computed for every point
at once, points are grouped by sorted linear cell id (one stable argsort +
run-length boundaries instead of a per-point Python dict), and the bulk
queries -- :meth:`UniformGridIndex.neighbor_pairs_array` /
:meth:`~UniformGridIndex.neighbor_lists` -- expand whole cell-pair blocks
with vectorized cross products.  This is what lets the generator emit a
100k-node unit-ball graph in seconds; the scalar dict implementation it
replaces spent minutes in per-point loops at that scale.

Candidate-cell selection picks the cheaper of two scans: enumerating the
``(2*reach+1)^3`` stencil around the query cell, or -- when the stencil is
larger than the number of *occupied* cells -- intersecting the occupied-cell
table with the query's Chebyshev range directly, so sparse indexes never pay
for empty stencil cells.

All query results are returned in ascending index order (and pairs in
lexicographic ``(i, j)`` order), which is also exactly what a brute-force
``O(n^2)`` scan produces -- the differential tests compare byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.geometry.primitives import as_point, as_points

#: Cached ``(2*reach+1)^3 x 3`` offset stencils, keyed by reach.
_STENCILS: Dict[int, np.ndarray] = {}


def _stencil(reach: int) -> np.ndarray:
    """All integer cell offsets with Chebyshev norm <= ``reach`` (lex order)."""
    cached = _STENCILS.get(reach)
    if cached is None:
        r = np.arange(-reach, reach + 1, dtype=np.int64)
        cached = (
            np.stack(np.meshgrid(r, r, r, indexing="ij"), axis=-1).reshape(-1, 3)
        )
        _STENCILS[reach] = cached
    return cached


def auto_cell_size(radius: float) -> float:
    """The cell size the index performs best at for ``radius`` queries.

    Radius-sized cells make every fixed-radius query a 27-cell stencil scan
    with expected O(1) points per cell under uniform density: smaller cells
    multiply the stencil volume, larger cells multiply the candidates per
    cell.  The generator and graph construction use this helper so the grid
    is always matched to the radio range they query with.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    return float(radius)


class UniformGridIndex:
    """Spatial hash grid over a fixed set of 3D points.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of point positions.  The index keeps a copy.
    cell_size:
        Edge length of the cubic grid cells (see :func:`auto_cell_size`).
        Queries with radius larger than ``cell_size`` fall back to scanning
        proportionally more cells and stay correct, just slower.
    """

    def __init__(self, points, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._points = as_points(points).copy()
        self._cell_size = float(cell_size)
        n = self._points.shape[0]
        if n == 0:
            self._cell_min = np.zeros(3, dtype=np.int64)
            self._cell_span = np.ones(3, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._cell_keys = np.empty(0, dtype=np.int64)
            self._cell_starts = np.zeros(1, dtype=np.int64)
            self._cell_coords = np.empty((0, 3), dtype=np.int64)
            return
        cells = np.floor(self._points / self._cell_size).astype(np.int64)
        self._cell_min = cells.min(axis=0)
        self._cell_span = cells.max(axis=0) - self._cell_min + 1
        if int(self._cell_span[0]) * int(self._cell_span[1]) * int(
            self._cell_span[2]
        ) >= 2**62:
            raise ValueError(
                "grid extent too large for linear cell keys; "
                "increase cell_size or rescale the points"
            )
        keys = self._keys_of(cells)
        # Stable sort: points within one cell stay in ascending index order.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        is_first = np.empty(n, dtype=bool)
        is_first[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=is_first[1:])
        firsts = np.flatnonzero(is_first)
        self._order = order.astype(np.int64, copy=False)
        self._cell_keys = sorted_keys[firsts]
        self._cell_starts = np.concatenate(
            [firsts, np.array([n], dtype=np.int64)]
        ).astype(np.int64, copy=False)
        self._cell_coords = cells[order[firsts]]

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def n_occupied_cells(self) -> int:
        """Number of grid cells holding at least one point."""
        return int(self._cell_keys.size)

    def _keys_of(self, cells: np.ndarray) -> np.ndarray:
        """Linear cell key per row of ``cells``; -1 outside the occupied box.

        Keys are raveled offsets inside the bounding box of occupied cells,
        so any cell outside that box -- which cannot be occupied -- maps to
        the sentinel instead of a colliding key.
        """
        rel = cells - self._cell_min
        inside = np.logical_and(rel >= 0, rel < self._cell_span).all(axis=1)
        keys = (
            rel[:, 0] * self._cell_span[1] + rel[:, 1]
        ) * self._cell_span[2] + rel[:, 2]
        return np.where(inside, keys, np.int64(-1))

    def _lookup(self, keys: np.ndarray) -> np.ndarray:
        """Occupied-cell group index per key (-1 when the cell is empty)."""
        if self._cell_keys.size == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        pos = np.searchsorted(self._cell_keys, keys)
        pos = np.minimum(pos, self._cell_keys.size - 1)
        hit = (keys >= 0) & (self._cell_keys[pos] == keys)
        return np.where(hit, pos, np.int64(-1))

    def _cells_in_range(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Occupied-cell group indices intersecting the query ball's box.

        Scans whichever side is smaller: the ``(2*reach+1)^3`` stencil
        around the query cell, or the occupied-cell table itself.  A sparse
        index queried with a large radius therefore never enumerates the
        (mostly empty) stencil -- it walks its occupied cells once.
        """
        reach = int(np.ceil(radius / self._cell_size))
        cell = np.floor(point / self._cell_size).astype(np.int64)
        n_stencil = (2 * reach + 1) ** 3
        if n_stencil <= self._cell_keys.size:
            groups = self._lookup(self._keys_of(cell + _stencil(reach)))
            return groups[groups >= 0]
        within = (np.abs(self._cell_coords - cell) <= reach).all(axis=1)
        return np.flatnonzero(within)

    def _group_points(self, groups: np.ndarray) -> np.ndarray:
        """Concatenated point indices of the given occupied-cell groups."""
        counts = self._cell_starts[groups + 1] - self._cell_starts[groups]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        base = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(base, counts)
        return self._order[np.repeat(self._cell_starts[groups], counts) + within]

    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``point`` (inclusive).

        Returned in ascending index order -- identical to what a brute-force
        distance scan over all points produces.
        """
        point = as_point(point)
        if self._points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        cand = self._group_points(self._cells_in_range(point, radius))
        if cand.size == 0:
            return cand
        diff = self._points[cand] - point
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        return np.sort(cand[dist_sq <= radius * radius])

    def neighbor_pairs_array(self, radius: float) -> np.ndarray:
        """All index pairs within ``radius`` as an ``(E, 2)`` int64 array.

        Rows satisfy ``i < j`` and are sorted lexicographically by
        ``(i, j)`` -- the order a brute-force double loop emits.  A point is
        never paired with itself; coincident points are paired.

        The sweep is cell-block batched: for each stencil offset, every
        occupied cell is matched against the occupied cell at that offset
        in one ``searchsorted``, and all matched cell pairs expand their
        point cross products with one vectorized block -- no per-point
        Python dispatch anywhere.
        """
        n = self._points.shape[0]
        if n == 0:
            return np.empty((0, 2), dtype=np.int64)
        reach = int(np.ceil(radius / self._cell_size))
        r_sq = radius * radius
        sizes = np.diff(self._cell_starts)
        starts = self._cell_starts[:-1]
        chunks_i: List[np.ndarray] = []
        chunks_j: List[np.ndarray] = []
        # One block per stencil offset keeps the transient cross-product
        # arrays at O(occupied cells * mean cell population^2) each.
        for off in _stencil(reach):
            g2 = self._lookup(self._keys_of(self._cell_coords + off))
            g1 = np.flatnonzero(g2 >= 0)
            if g1.size == 0:
                continue
            g2 = g2[g1]
            a, b = sizes[g1], sizes[g2]
            counts = a * b
            total = int(counts.sum())
            base = np.cumsum(counts) - counts
            block = np.repeat(np.arange(g1.size), counts)
            within = np.arange(total, dtype=np.int64) - base[block]
            i_idx = self._order[starts[g1][block] + within // b[block]]
            j_idx = self._order[starts[g2][block] + within % b[block]]
            # Each unordered pair appears once with i < j across the offset
            # and its mirror (or within the same block for the 0 offset).
            keep = i_idx < j_idx
            i_idx, j_idx = i_idx[keep], j_idx[keep]
            diff = self._points[i_idx] - self._points[j_idx]
            close = np.einsum("ij,ij->i", diff, diff) <= r_sq
            chunks_i.append(i_idx[close])
            chunks_j.append(j_idx[close])
        if not chunks_i:
            return np.empty((0, 2), dtype=np.int64)
        i_all = np.concatenate(chunks_i)
        j_all = np.concatenate(chunks_j)
        order = np.lexsort((j_all, i_all))
        return np.column_stack([i_all[order], j_all[order]])

    def neighbor_pairs(self, radius: float) -> List[Tuple[int, int]]:
        """All index pairs ``(i, j)`` with ``i < j`` within ``radius``.

        Tuple-list facade over :meth:`neighbor_pairs_array` (same order).
        """
        return [tuple(row) for row in self.neighbor_pairs_array(radius).tolist()]

    def neighbor_lists(self, radius: float) -> List[np.ndarray]:
        """Per-point arrays of neighbor indices within ``radius`` (self excluded).

        Every array is sorted ascending; built from one batched
        :meth:`neighbor_pairs_array` sweep instead of per-point queries.
        """
        n = self._points.shape[0]
        pairs = self.neighbor_pairs_array(radius)
        u = np.concatenate([pairs[:, 0], pairs[:, 1]])
        v = np.concatenate([pairs[:, 1], pairs[:, 0]])
        order = np.lexsort((v, u))
        u, v = u[order], v[order]
        counts = np.bincount(u, minlength=n)
        return np.split(v, np.cumsum(counts)[:-1]) if n else []
