"""Uniform grid index for fixed-radius neighbor queries in 3D.

Building a unit-ball graph naively costs ``O(n^2)`` distance checks.  The
generator instead bins points into a uniform grid with cell size equal to the
query radius, so each query inspects only the 27 surrounding cells.  For the
roughly uniform deployments this library simulates, construction and the full
all-pairs neighbor sweep are both ``O(n)`` expected.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.geometry.primitives import as_point, as_points

_Cell = Tuple[int, int, int]


class UniformGridIndex:
    """Spatial hash grid over a fixed set of 3D points.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of point positions.  The index keeps a copy.
    cell_size:
        Edge length of the cubic grid cells.  Queries with radius larger
        than ``cell_size`` fall back to scanning proportionally more cells
        and stay correct, just slower.
    """

    def __init__(self, points, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._points = as_points(points).copy()
        self._cell_size = float(cell_size)
        self._cells: Dict[_Cell, List[int]] = defaultdict(list)
        for idx, point in enumerate(self._points):
            self._cells[self._cell_of(point)].append(idx)

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._points.shape[0]

    def _cell_of(self, point: np.ndarray) -> _Cell:
        scaled = np.floor(point / self._cell_size).astype(int)
        return (int(scaled[0]), int(scaled[1]), int(scaled[2]))

    def _cells_in_range(self, point: np.ndarray, radius: float) -> Iterator[_Cell]:
        reach = int(np.ceil(radius / self._cell_size))
        cx, cy, cz = self._cell_of(point)
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                for dz in range(-reach, reach + 1):
                    cell = (cx + dx, cy + dy, cz + dz)
                    if cell in self._cells:
                        yield cell

    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``point`` (inclusive)."""
        point = as_point(point)
        candidates: List[int] = []
        for cell in self._cells_in_range(point, radius):
            candidates.extend(self._cells[cell])
        if not candidates:
            return np.empty(0, dtype=int)
        cand = np.asarray(candidates, dtype=int)
        diff = self._points[cand] - point
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        return cand[dist_sq <= radius * radius]

    def neighbor_pairs(self, radius: float) -> List[Tuple[int, int]]:
        """All index pairs ``(i, j)`` with ``i < j`` within ``radius``.

        A point is never paired with itself; coincident points are paired.
        """
        pairs: List[Tuple[int, int]] = []
        for i, point in enumerate(self._points):
            for j in self.query_radius(point, radius):
                if j > i:
                    pairs.append((i, int(j)))
        return pairs

    def neighbor_lists(self, radius: float) -> List[np.ndarray]:
        """Per-point arrays of neighbor indices within ``radius`` (self excluded)."""
        result: List[np.ndarray] = []
        for i, point in enumerate(self._points):
            found = self.query_radius(point, radius)
            result.append(found[found != i])
        return result
