"""Rigid alignment helpers.

Local coordinate systems produced by MDS are only defined up to rotation,
translation, and reflection.  UBF itself is invariant to all three, but the
test suite and the evaluation harness need to *compare* a recovered local
frame against the ground-truth geometry; Kabsch/Procrustes alignment provides
the canonical way to do that.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry.primitives import as_points


def kabsch_align(source, target, *, allow_reflection: bool = True) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Optimal rigid transform mapping ``source`` onto ``target``.

    Finds rotation ``R`` (optionally improper, i.e. including reflection) and
    translation ``t`` minimizing ``||source @ R.T + t - target||_F``.

    Parameters
    ----------
    source, target:
        Corresponding ``(n, 3)`` point sets, ``n >= 3``.
    allow_reflection:
        When True (default) the best transform may include a reflection,
        matching the ambiguity of MDS embeddings.

    Returns
    -------
    (aligned, R, t)
        ``aligned = source @ R.T + t``.
    """
    src = as_points(source)
    tgt = as_points(target)
    if src.shape != tgt.shape:
        raise ValueError("source and target must have matching shapes")
    if src.shape[0] < 3:
        raise ValueError("need at least 3 points to align")

    src_mean = src.mean(axis=0)
    tgt_mean = tgt.mean(axis=0)
    h = (src - src_mean).T @ (tgt - tgt_mean)
    u, _, vt = np.linalg.svd(h)
    rotation = vt.T @ u.T
    if not allow_reflection and np.linalg.det(rotation) < 0:
        vt_fixed = vt.copy()
        vt_fixed[-1, :] *= -1.0
        rotation = vt_fixed.T @ u.T
    translation = tgt_mean - rotation @ src_mean
    aligned = src @ rotation.T + translation
    return aligned, rotation, translation


def procrustes_disparity(source, target) -> float:
    """RMS residual after optimal rigid (reflection-allowed) alignment.

    Zero means the two point sets are congruent; for noisy MDS embeddings
    this measures how much local geometry was distorted, which is exactly
    the error mechanism behind mistaken/missing boundary nodes in Sec. IV.
    """
    aligned, _, _ = kabsch_align(source, target, allow_reflection=True)
    tgt = as_points(target)
    return float(np.sqrt(np.mean(np.sum((aligned - tgt) ** 2, axis=1))))


def random_rotation_matrix(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random proper rotation matrix (via QR of a Gaussian)."""
    gaussian = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(gaussian)
    q = q @ np.diag(np.sign(np.diag(r)))
    if np.linalg.det(q) < 0:
        q[:, 0] *= -1.0
    return q
