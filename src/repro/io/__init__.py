"""Serialization: networks to JSON/NPZ, meshes to OFF/OBJ/PLY, points to XYZ.

Mesh exports embed landmarks at their true positions so results can be
inspected in any standard 3D viewer (MeshLab, Blender), mirroring the
renderings of Figs. 1 and 6-10.
"""

from repro.io.meshio import export_mesh_obj, export_mesh_off, export_mesh_ply, export_points_xyz
from repro.io.serialization import (
    load_detection_result,
    load_network,
    save_detection_result,
    save_network,
)
from repro.io.svg import SvgScene, render_detection_svg

__all__ = [
    "save_network",
    "load_network",
    "save_detection_result",
    "load_detection_result",
    "export_mesh_off",
    "export_mesh_obj",
    "export_mesh_ply",
    "export_points_xyz",
    "SvgScene",
    "render_detection_svg",
]
