"""Mesh and point-cloud export to standard 3D formats."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh

PathLike = Union[str, Path]


def _mesh_geometry(mesh: TriangularMesh, graph: NetworkGraph):
    """Vertex array (landmark positions) and re-indexed triangle list."""
    index: Dict[int, int] = {v: i for i, v in enumerate(mesh.vertices)}
    vertices = np.array([graph.position(v) for v in mesh.vertices])
    faces = [
        (index[a], index[b], index[c]) for a, b, c in mesh.triangles()
    ]
    return vertices, faces


def export_mesh_off(mesh: TriangularMesh, graph: NetworkGraph, path: PathLike) -> None:
    """Write the landmark mesh as an OFF file."""
    vertices, faces = _mesh_geometry(mesh, graph)
    lines = ["OFF", f"{len(vertices)} {len(faces)} {len(mesh.edges)}"]
    for x, y, z in vertices:
        lines.append(f"{x:.6f} {y:.6f} {z:.6f}")
    for a, b, c in faces:
        lines.append(f"3 {a} {b} {c}")
    Path(path).write_text("\n".join(lines) + "\n")


def export_mesh_obj(mesh: TriangularMesh, graph: NetworkGraph, path: PathLike) -> None:
    """Write the landmark mesh as a Wavefront OBJ file (1-based indices)."""
    vertices, faces = _mesh_geometry(mesh, graph)
    lines = ["# repro boundary mesh"]
    for x, y, z in vertices:
        lines.append(f"v {x:.6f} {y:.6f} {z:.6f}")
    for a, b, c in faces:
        lines.append(f"f {a + 1} {b + 1} {c + 1}")
    Path(path).write_text("\n".join(lines) + "\n")


def export_mesh_ply(mesh: TriangularMesh, graph: NetworkGraph, path: PathLike) -> None:
    """Write the landmark mesh as an ASCII PLY file."""
    vertices, faces = _mesh_geometry(mesh, graph)
    header = [
        "ply",
        "format ascii 1.0",
        f"element vertex {len(vertices)}",
        "property float x",
        "property float y",
        "property float z",
        f"element face {len(faces)}",
        "property list uchar int vertex_indices",
        "end_header",
    ]
    body: List[str] = []
    for x, y, z in vertices:
        body.append(f"{x:.6f} {y:.6f} {z:.6f}")
    for a, b, c in faces:
        body.append(f"3 {a} {b} {c}")
    Path(path).write_text("\n".join(header + body) + "\n")


def export_points_xyz(
    graph: NetworkGraph, nodes, path: PathLike
) -> None:
    """Write selected node positions as an XYZ point cloud."""
    lines = []
    for node in sorted(int(n) for n in nodes):
        x, y, z = graph.position(node)
        lines.append(f"{x:.6f} {y:.6f} {z:.6f}")
    Path(path).write_text("\n".join(lines) + "\n")
