"""JSON serialization of networks and detection results.

The format is deliberately plain: a versioned JSON document with node
positions, adjacency, ground-truth flags, and metadata.  Everything needed
to re-run detection deterministically on another machine.

:func:`write_atomic` (tmp file + ``os.replace``) is the crash-safe write
primitive every artifact writer should use; it is implemented in
:mod:`repro.observability.export` (the bottom layer of the import DAG, so
the trace exporter and the evaluation layer can share it) and re-exported
here as its public home.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.pipeline import BoundaryDetectionResult
from repro.network.generator import DeploymentConfig, Network
from repro.network.graph import NetworkGraph
from repro.observability.export import write_atomic

__all__ = [
    "FORMAT_VERSION",
    "load_detection_result",
    "load_network",
    "save_detection_result",
    "save_network",
    "write_atomic",
]

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_network(network: Network, path: PathLike) -> None:
    """Write a network (positions, adjacency, truth labels) to JSON."""
    graph = network.graph
    doc = {
        "format_version": FORMAT_VERSION,
        "scenario": network.scenario,
        "scale": network.scale,
        "radio_range": graph.radio_range,
        "positions": graph.positions.tolist(),
        "adjacency": [graph.neighbors(i).tolist() for i in range(graph.n_nodes)],
        "truth_boundary": network.truth_boundary.astype(int).tolist(),
        "config": (
            {
                "n_surface": network.config.n_surface,
                "n_interior": network.config.n_interior,
                "target_degree": network.config.target_degree,
                "seed": network.config.seed,
                "quasi_udg_alpha": network.config.quasi_udg_alpha,
            }
            if network.config is not None
            else None
        ),
    }
    write_atomic(path, json.dumps(doc))


def load_network(path: PathLike) -> Network:
    """Read a network previously written by :func:`save_network`."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported network format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    graph = NetworkGraph(
        np.asarray(doc["positions"], dtype=float),
        radio_range=float(doc["radio_range"]),
        adjacency=doc["adjacency"],
    )
    config = None
    if doc.get("config"):
        config = DeploymentConfig(
            n_surface=doc["config"]["n_surface"],
            n_interior=doc["config"]["n_interior"],
            target_degree=doc["config"]["target_degree"],
            seed=doc["config"]["seed"],
            quasi_udg_alpha=doc["config"].get("quasi_udg_alpha"),
        )
    return Network(
        graph=graph,
        truth_boundary=np.asarray(doc["truth_boundary"], dtype=bool),
        scenario=doc.get("scenario", "loaded"),
        scale=float(doc.get("scale", 1.0)),
        config=config,
    )


def save_detection_result(result: BoundaryDetectionResult, path: PathLike) -> None:
    """Write a detection result (candidate/boundary sets, groups) to JSON."""
    doc = {
        "format_version": FORMAT_VERSION,
        "candidates": sorted(result.candidates),
        "boundary": sorted(result.boundary),
        "groups": [list(g) for g in result.groups],
        "localization_used": result.localization_used,
    }
    write_atomic(path, json.dumps(doc))


def load_detection_result(path: PathLike) -> BoundaryDetectionResult:
    """Read a detection result written by :func:`save_detection_result`.

    Per-node UBF outcomes are not persisted; the loaded result carries the
    sets and groups only.
    """
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return BoundaryDetectionResult(
        candidates=set(doc["candidates"]),
        boundary=set(doc["boundary"]),
        groups=[list(g) for g in doc["groups"]],
        ubf_outcomes=[],
        localization_used=doc.get("localization_used", "unknown"),
    )
