"""SVG rendering of networks, boundary nodes, and meshes.

Produces the visual counterparts of the paper's figures (network model /
boundary nodes / triangular mesh) without any plotting dependency: plain
SVG text, orthographic projection with a configurable view rotation,
painter's-algorithm depth ordering.

Typical use::

    from repro.io.svg import SvgScene
    scene = SvgScene(graph.positions)
    scene.add_nodes(range(graph.n_nodes), radius=1.2, fill="#bbbbbb")
    scene.add_nodes(result.boundary, radius=2.0, fill="#cc3333")
    scene.add_mesh(mesh, graph, stroke="#2255cc")
    scene.write("boundary.svg")
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh

PathLike = Union[str, Path]


def _rotation(yaw: float, pitch: float) -> np.ndarray:
    """View rotation: yaw about z, then pitch about x."""
    cy, sy = np.cos(yaw), np.sin(yaw)
    cp, sp = np.cos(pitch), np.sin(pitch)
    rz = np.array([[cy, -sy, 0.0], [sy, cy, 0.0], [0.0, 0.0, 1.0]])
    rx = np.array([[1.0, 0.0, 0.0], [0.0, cp, -sp], [0.0, sp, cp]])
    return rx @ rz


class SvgScene:
    """Accumulates drawing primitives over a projected 3D point set.

    Parameters
    ----------
    positions:
        ``(n, 3)`` world positions; all drawing refers to these by index.
    size:
        Output image side length in pixels (square canvas).
    yaw, pitch:
        View rotation in radians before orthographic projection onto the
        xy-plane (the default gives a mildly tilted three-quarter view).
    margin:
        Canvas fraction left blank around the drawing.
    """

    def __init__(
        self,
        positions,
        *,
        size: int = 640,
        yaw: float = 0.6,
        pitch: float = -1.0,
        margin: float = 0.06,
    ):
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        self._size = int(size)
        rotated = pts @ _rotation(yaw, pitch).T
        self._depth = rotated[:, 2].copy()
        flat = rotated[:, :2]
        lo = flat.min(axis=0) if len(flat) else np.zeros(2)
        hi = flat.max(axis=0) if len(flat) else np.ones(2)
        span = float(max(hi[0] - lo[0], hi[1] - lo[1], 1e-9))
        usable = size * (1.0 - 2.0 * margin)
        self._scale = usable / span
        self._offset = np.array([size * margin, size * margin]) - lo * self._scale
        self._projected = flat * self._scale + self._offset
        # Flip y: SVG's y axis points down.
        self._projected[:, 1] = size - self._projected[:, 1]
        self._elements: List[Tuple[float, str]] = []

    def _point(self, node: int) -> Tuple[float, float]:
        x, y = self._projected[int(node)]
        return float(x), float(y)

    # ------------------------------------------------------------------
    # Primitives (each records its mean depth for painter's ordering)
    # ------------------------------------------------------------------

    def add_nodes(
        self,
        nodes: Iterable[int],
        *,
        radius: float = 1.5,
        fill: str = "#555555",
        opacity: float = 1.0,
    ) -> None:
        """Draw a set of nodes as filled circles."""
        for node in nodes:
            x, y = self._point(node)
            depth = float(self._depth[int(node)])
            self._elements.append(
                (
                    depth,
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" '
                    f'fill="{fill}" fill-opacity="{opacity}"/>',
                )
            )

    def add_edges(
        self,
        edges: Iterable[Tuple[int, int]],
        *,
        stroke: str = "#999999",
        width: float = 0.5,
        opacity: float = 0.6,
    ) -> None:
        """Draw node-pair segments (e.g. graph edges, route hops)."""
        for u, v in edges:
            x1, y1 = self._point(u)
            x2, y2 = self._point(v)
            depth = float((self._depth[int(u)] + self._depth[int(v)]) / 2.0)
            self._elements.append(
                (
                    depth,
                    f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                    f'y2="{y2:.1f}" stroke="{stroke}" '
                    f'stroke-width="{width}" stroke-opacity="{opacity}"/>',
                )
            )

    def add_mesh(
        self,
        mesh: TriangularMesh,
        graph: Optional[NetworkGraph] = None,
        *,
        stroke: str = "#2255cc",
        fill: str = "#88aadd",
        fill_opacity: float = 0.25,
        width: float = 1.0,
    ) -> None:
        """Draw a landmark mesh: filled triangles plus edge strokes.

        ``graph`` is accepted for signature symmetry with the exporters;
        positions always come from the scene's own point set, which must
        contain the mesh's vertex IDs.
        """
        for a, b, c in mesh.triangles():
            pts = [self._point(n) for n in (a, b, c)]
            depth = float(np.mean([self._depth[int(n)] for n in (a, b, c)]))
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
            self._elements.append(
                (
                    depth,
                    f'<polygon points="{path}" fill="{fill}" '
                    f'fill-opacity="{fill_opacity}" stroke="{stroke}" '
                    f'stroke-width="{width}"/>',
                )
            )

    def add_route(
        self,
        route: List[int],
        *,
        stroke: str = "#cc7700",
        width: float = 2.0,
    ) -> None:
        """Highlight a node walk (e.g. a routing result)."""
        self.add_edges(
            list(zip(route, route[1:])), stroke=stroke, width=width, opacity=1.0
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_svg(self) -> str:
        """Render the scene to an SVG document string."""
        body = "\n".join(
            element for _, element in sorted(self._elements, key=lambda e: e[0])
        )
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self._size}" height="{self._size}" '
            f'viewBox="0 0 {self._size} {self._size}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def write(self, path: PathLike) -> None:
        """Write the SVG document to ``path``."""
        Path(path).write_text(self.to_svg())


def render_detection_svg(
    network,
    boundary: Iterable[int],
    path: PathLike,
    *,
    mesh: Optional[TriangularMesh] = None,
) -> None:
    """One-call figure: interior cloud, boundary nodes, optional mesh."""
    graph = network.graph
    scene = SvgScene(graph.positions)
    boundary = set(int(b) for b in boundary)
    interior = [n for n in range(graph.n_nodes) if n not in boundary]
    scene.add_nodes(interior, radius=1.0, fill="#bbbbbb", opacity=0.6)
    scene.add_nodes(boundary, radius=1.8, fill="#cc3333")
    if mesh is not None:
        scene.add_mesh(mesh)
    scene.write(path)
