"""Wireless-network substrate: deployment, connectivity, ranging, localization.

This package turns a :class:`repro.shapes.Shape3D` region into the exact
simulation input the paper describes (Sec. IV-A):

* a set of nodes -- ground-truth boundary nodes sampled uniformly on the
  region's surface plus an interior cloud sampled uniformly in its volume
  (:mod:`repro.network.generator`);
* unit-ball-graph connectivity with the radio range normalized to 1
  (:mod:`repro.network.graph`);
* noisy pairwise distance measurements within one hop
  (:mod:`repro.network.measurement`);
* per-node local coordinate systems established from those measurements via
  MDS (:mod:`repro.network.localization`).
"""

from repro.network.generator import DeploymentConfig, Network, generate_network
from repro.network.graph import NetworkGraph
from repro.network.localization import (
    LocalFrame,
    build_frames,
    establish_local_frame,
    local_frames,
)
from repro.network.measurement import (
    DistanceErrorModel,
    GaussianError,
    MeasuredDistances,
    NoError,
    UniformAbsoluteError,
    UniformRelativeError,
    measure_distances,
)
from repro.network.stats import NetworkStats, compute_network_stats

__all__ = [
    "DeploymentConfig",
    "Network",
    "generate_network",
    "NetworkGraph",
    "LocalFrame",
    "build_frames",
    "establish_local_frame",
    "local_frames",
    "DistanceErrorModel",
    "NoError",
    "UniformAbsoluteError",
    "UniformRelativeError",
    "GaussianError",
    "MeasuredDistances",
    "measure_distances",
    "NetworkStats",
    "compute_network_stats",
]
