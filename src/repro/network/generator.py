"""Network deployment: from a 3D region to a connected unit-ball graph.

Follows the paper's simulation setup (Sec. IV-A):

1. sample ground-truth boundary nodes uniformly on the region's surface;
2. sample an interior cloud uniformly in its volume;
3. choose the radio range to hit a target average nodal degree
   (the paper's networks average ~18.5, ranging 5..45 per node);
4. rescale all positions so the radio range becomes exactly 1
   (Definition 1), and connect nodes within range.

If the sampled graph is not connected, the generator retries with a denser
deployment (the paper only considers well-connected networks,
Definition 3); as a last resort it keeps the giant component.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.network.graph import NetworkGraph
from repro.shapes.base import Shape3D


@dataclass(frozen=True)
class DeploymentConfig:
    """Parameters of a simulated deployment.

    Attributes
    ----------
    n_surface:
        Number of ground-truth boundary nodes sampled on the region surface.
    n_interior:
        Number of interior nodes sampled in the region volume.
    target_degree:
        Desired average nodal degree; sets the radio range via the uniform
        density estimate ``degree ~= rho * (4/3) * pi * R^3``.
    seed:
        RNG seed; the full deployment is deterministic given the seed.
    connectivity_retries:
        How many densification attempts to make if the graph comes out
        disconnected (each retry increases the target degree by 20%).
    keep_giant_component:
        After exhausting retries, keep the largest connected component
        instead of raising.
    quasi_udg_alpha:
        When set, links follow the quasi-unit-disk model with this inner
        radius (see :mod:`repro.network.radio`) instead of the pure
        unit-disk model -- Definition 1 allows "an arbitrary radio
        transmission model".
    """

    n_surface: int = 600
    n_interior: int = 1400
    target_degree: float = 18.5
    seed: int = 0
    connectivity_retries: int = 3
    keep_giant_component: bool = True
    quasi_udg_alpha: Optional[float] = None


@dataclass
class Network:
    """A deployed network plus its ground truth.

    Attributes
    ----------
    graph:
        Connectivity and positions (radio range normalized to 1).
    truth_boundary:
        Boolean array; True for nodes sampled on the region surface, the
        ground truth the evaluation compares detections against.
    scenario:
        Human-readable tag of the generating scenario.
    scale:
        Factor by which original shape coordinates were multiplied to
        normalize the radio range (positions = shape coords * scale).
    config:
        The deployment configuration that produced this network.
    """

    graph: NetworkGraph
    truth_boundary: np.ndarray
    scenario: str = "custom"
    scale: float = 1.0
    config: Optional[DeploymentConfig] = None

    @property
    def n_nodes(self) -> int:
        """Total number of nodes."""
        return self.graph.n_nodes

    @property
    def truth_boundary_set(self) -> set:
        """Ground-truth boundary node IDs as a set."""
        return set(np.flatnonzero(self.truth_boundary).tolist())

    def summary(self) -> str:
        """One-line description used by examples and the CLI."""
        degrees = self.graph.degrees()
        return (
            f"{self.scenario}: {self.n_nodes} nodes "
            f"({int(self.truth_boundary.sum())} on boundary), "
            f"avg degree {degrees.mean():.1f} "
            f"(min {degrees.min() if degrees.size else 0}, "
            f"max {degrees.max() if degrees.size else 0})"
        )


def _radio_range_for_degree(
    shape: Shape3D, n_nodes: int, target_degree: float, rng: np.random.Generator
) -> float:
    """Radio range achieving ``target_degree`` under uniform density.

    Uses the exact region volume when the shape exposes one, otherwise a
    Monte-Carlo estimate.  The classic unit-ball-graph estimate
    ``degree = rho * (4/3) pi R^3`` ignores boundary truncation, so real
    average degrees land somewhat below the target; callers that need a
    precise degree can iterate, and the evaluation only requires "dense
    enough", matching the paper's 5..45 degree spread.
    """
    volume = getattr(shape, "volume", None)
    if volume is None:
        volume = shape.volume_estimate(rng)
    volume = float(volume)
    if volume <= 0:
        raise ValueError("shape has non-positive volume")
    density = n_nodes / volume
    return (3.0 * target_degree / (4.0 * np.pi * density)) ** (1.0 / 3.0)


def generate_network(
    shape: Shape3D,
    config: DeploymentConfig = DeploymentConfig(),
    *,
    scenario: str = "custom",
) -> Network:
    """Deploy a network in ``shape`` per the paper's simulation setup.

    Returns a :class:`Network` whose radio range is normalized to 1 and
    whose ``truth_boundary`` flags mark the surface-sampled nodes.

    Raises
    ------
    RuntimeError
        If the deployment stays disconnected after all retries and
        ``keep_giant_component`` is disabled.
    """
    attempt_config = config
    last_network: Optional[Network] = None
    for attempt in range(config.connectivity_retries + 1):
        rng = np.random.default_rng(attempt_config.seed + 7919 * attempt)
        surface_pts = shape.sample_surface(attempt_config.n_surface, rng)
        interior_pts = shape.sample_interior(attempt_config.n_interior, rng)
        positions = np.vstack([surface_pts, interior_pts])
        truth = np.zeros(positions.shape[0], dtype=bool)
        truth[: surface_pts.shape[0]] = True

        radio = _radio_range_for_degree(
            shape, positions.shape[0], attempt_config.target_degree, rng
        )
        scale = 1.0 / radio
        scaled = positions * scale
        if attempt_config.quasi_udg_alpha is not None:
            from repro.network.radio import QuasiUnitDiskModel, build_adjacency

            model = QuasiUnitDiskModel(attempt_config.quasi_udg_alpha)
            adjacency = build_adjacency(scaled, model, rng)
            graph = NetworkGraph(scaled, radio_range=1.0, adjacency=adjacency)
        else:
            graph = NetworkGraph(scaled, radio_range=1.0)
        network = Network(
            graph=graph,
            truth_boundary=truth,
            scenario=scenario,
            scale=scale,
            config=attempt_config,
        )
        if graph.is_connected():
            return network
        last_network = network
        attempt_config = replace(
            attempt_config, target_degree=attempt_config.target_degree * 1.2
        )

    if config.keep_giant_component and last_network is not None:
        return _restrict_to_giant_component(last_network)
    raise RuntimeError(
        "could not generate a connected network; increase target_degree or "
        "node counts"
    )


def _restrict_to_giant_component(network: Network) -> Network:
    """Relabel the network onto its largest connected component."""
    components = network.graph.connected_components()
    giant = max(components, key=len)
    keep = np.array(sorted(giant), dtype=int)
    positions = network.graph.positions[keep]
    truth = network.truth_boundary[keep]
    graph = NetworkGraph(positions, radio_range=network.graph.radio_range)
    return Network(
        graph=graph,
        truth_boundary=truth,
        scenario=network.scenario + "+giant",
        scale=network.scale,
        config=network.config,
    )
