"""Unit-ball-graph representation and localized graph queries.

:class:`NetworkGraph` stores node positions and the adjacency induced by a
fixed radio transmission range.  It provides exactly the query surface the
paper's algorithms need: one-hop neighborhoods, restricted BFS (hop counts
and deterministic shortest paths inside a node subset, e.g. the boundary
subgraph), and connected components of induced subgraphs.

Two equivalent adjacency representations coexist:

* the per-node list-of-arrays view (``neighbors``/``has_edge``), which the
  dict/deque BFS machinery below consumes, and
* a CSR view (:meth:`csr`: ``indptr``/``indices`` with neighbor columns
  sorted per row), which backs the vectorized bulk queries -- ``degrees``,
  ``edges``, :meth:`edge_values` (edge-aligned per-edge data, e.g. measured
  distances) and :meth:`k_hop_collections` (every node's k-hop collection
  in one multi-source sweep).  The scalar BFS entry points are kept as the
  differential oracle the vectorized sweep is property-tested against.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.primitives import as_points
from repro.geometry.spatial_index import UniformGridIndex, auto_cell_size

#: Sources swept per block in :meth:`NetworkGraph.k_hop_collections`; bounds
#: the ``block x n`` hop table to a few MB regardless of network size.  The
#: per-source results are independent, so the block size never changes them.
KHOP_BLOCK_SIZE = 1024


class NetworkGraph:
    """Immutable undirected graph over positioned nodes.

    Parameters
    ----------
    positions:
        ``(n, 3)`` node positions.
    radio_range:
        Maximum transmission range; two nodes are neighbors iff their
        Euclidean distance is at most this value.  The paper normalizes it
        to 1 (Definition 1) and so does the generator, but the class accepts
        any positive value.
    adjacency:
        Optional pre-computed adjacency (list of neighbor-index sequences).
        When omitted it is built with a uniform grid index in ``O(n)``
        expected time.
    """

    def __init__(self, positions, radio_range: float = 1.0, adjacency=None):
        self._positions = as_points(positions).copy()
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        self._radio_range = float(radio_range)
        n = self._positions.shape[0]
        if adjacency is None:
            # Build the CSR form directly from one batched neighbor-pair
            # sweep (no per-node Python loop): directed copies of every
            # pair, lexsorted by (row, column), give sorted rows in place.
            if n:
                index = UniformGridIndex(
                    self._positions, cell_size=auto_cell_size(self._radio_range)
                )
                pairs = index.neighbor_pairs_array(self._radio_range)
            else:
                pairs = np.empty((0, 2), dtype=np.int64)
            heads = np.concatenate([pairs[:, 0], pairs[:, 1]])
            tails = np.concatenate([pairs[:, 1], pairs[:, 0]])
            order = np.lexsort((tails, heads))
            self._indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(heads, minlength=n), out=self._indptr[1:])
            self._indices = tails[order]
            self._adjacency = (
                np.split(self._indices, self._indptr[1:-1]) if n else []
            )
        else:
            if len(adjacency) != n:
                raise ValueError("adjacency length must match number of nodes")
            self._adjacency = [
                np.sort(np.asarray(list(nbrs), dtype=int)) for nbrs in adjacency
            ]
            # CSR twin of the adjacency lists: row u's neighbor columns live
            # in indices[indptr[u]:indptr[u+1]], sorted ascending like the
            # lists.
            self._indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum([a.size for a in self._adjacency], out=self._indptr[1:])
            self._indices = (
                np.concatenate(self._adjacency).astype(np.int64)
                if n and self._indptr[-1]
                else np.empty(0, dtype=np.int64)
            )
        self._neighbor_sets_cache: Optional[List[Set[int]]] = None
        self._edge_array: Optional[np.ndarray] = None

    @classmethod
    def from_csr(
        cls,
        positions: np.ndarray,
        radio_range: float,
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> "NetworkGraph":
        """Rebuild a graph from a previously exported CSR adjacency.

        The inverse of :meth:`csr` (plus ``positions``/``radio_range``):
        per-row neighbor columns must already be sorted ascending, exactly
        as :meth:`csr` emits them.  Unlike the constructor, nothing is
        re-derived or copied -- ``positions`` and ``indices`` are adopted
        as-is (read-only shared-memory buffers included), and the per-node
        adjacency list holds views into ``indices``.  This is the
        zero-copy rehydration path workers use for shared-memory payloads.
        """
        self = cls.__new__(cls)
        pos = as_points(positions)
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        self._positions = pos
        self._radio_range = float(radio_range)
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        n = pos.shape[0]
        if self._indptr.shape != (n + 1,) or self._indptr[-1] != self._indices.size:
            raise ValueError("indptr does not describe indices")
        self._adjacency = (
            np.split(self._indices, self._indptr[1:-1]) if n else []
        )
        self._neighbor_sets_cache = None
        self._edge_array = None
        return self

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._positions.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._positions.shape[0]

    @property
    def positions(self) -> np.ndarray:
        """Node positions as a read-only ``(n, 3)`` view."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def radio_range(self) -> float:
        """The transmission range defining adjacency."""
        return self._radio_range

    def position(self, node: int) -> np.ndarray:
        """Position of one node."""
        return self._positions[node].copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of the node's one-hop neighbors."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        """Number of one-hop neighbors."""
        return int(self._adjacency[node].size)

    def degrees(self) -> np.ndarray:
        """Array of all node degrees (from the CSR row extents)."""
        return np.diff(self._indptr).astype(int)

    @property
    def _neighbor_sets(self) -> List[Set[int]]:
        """Per-node neighbor sets, materialized on first membership query.

        Building 100k+ Python sets costs seconds and most bulk callers
        (generation, UBF, localization sweeps) never ask ``has_edge``, so
        the hash-set twin of the CSR adjacency is created lazily.
        """
        if self._neighbor_sets_cache is None:
            self._neighbor_sets_cache = [
                set(map(int, a)) for a in self._adjacency
            ]
        return self._neighbor_sets_cache

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are one-hop neighbors."""
        return v in self._neighbor_sets[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All edges as ``(u, v)`` tuples with ``u < v``.

        Backed by the vectorized :meth:`edge_array`; iteration order is the
        historical one (ascending ``u``, then ascending ``v``).
        """
        return (tuple(row) for row in self.edge_array().tolist())

    def edge_array(self) -> np.ndarray:
        """All edges as a read-only ``(E, 2)`` array with ``u < v`` per row.

        Rows are ordered by ascending ``u`` then ``v`` -- exactly the order
        :meth:`edges` yields.  Built once from the CSR view and cached.
        """
        if self._edge_array is None:
            heads = np.repeat(np.arange(self.n_nodes), np.diff(self._indptr))
            mask = heads < self._indices
            arr = np.column_stack([heads[mask], self._indices[mask]])
            arr.flags.writeable = False
            self._edge_array = arr
        return self._edge_array

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (half the CSR directed-entry count)."""
        return int(self._indices.size) // 2

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The CSR adjacency view as read-only ``(indptr, indices)``.

        ``indices[indptr[u]:indptr[u+1]]`` are ``u``'s neighbors, sorted
        ascending; both arrays are views of the graph's internal storage.
        """
        indptr = self._indptr.view()
        indptr.flags.writeable = False
        indices = self._indices.view()
        indices.flags.writeable = False
        return indptr, indices

    def edge_values(self, get) -> np.ndarray:
        """Per-directed-edge values aligned with the CSR ``indices`` array.

        ``get(u, v) -> float`` is queried once per directed CSR entry (so
        symmetric sources, e.g. measured distances, appear on both
        directions of every edge).  The result lets bulk consumers replace
        per-pair lookups with fancy indexing: the value for the edge stored
        at CSR position ``p`` (row ``u``, column ``indices[p]``) is simply
        ``values[p]``.
        """
        heads = np.repeat(np.arange(self.n_nodes), np.diff(self._indptr))
        return np.fromiter(
            (get(int(u), int(v)) for u, v in zip(heads, self._indices)),
            dtype=float,
            count=self._indices.size,
        )

    def distance(self, u: int, v: int) -> float:
        """True Euclidean distance between two nodes."""
        return float(np.linalg.norm(self._positions[u] - self._positions[v]))

    # ------------------------------------------------------------------
    # BFS machinery (full graph or induced subgraph)
    # ------------------------------------------------------------------

    def bfs_hops(
        self,
        sources: Iterable[int],
        *,
        within: Optional[Set[int]] = None,
        max_hops: Optional[int] = None,
    ) -> Dict[int, int]:
        """Hop distance from the nearest source to every reachable node.

        Parameters
        ----------
        sources:
            Starting nodes (hop 0).
        within:
            When given, BFS runs on the subgraph induced by this node set;
            sources outside it are ignored.
        max_hops:
            Stop expanding beyond this hop count.

        Returns
        -------
        dict
            ``node -> hops`` for every node reached.
        """
        hops: Dict[int, int] = {}
        queue: deque = deque()
        for s in sorted(set(int(s) for s in sources)):
            if within is not None and s not in within:
                continue
            hops[s] = 0
            queue.append(s)
        while queue:
            u = queue.popleft()
            if max_hops is not None and hops[u] >= max_hops:
                continue
            for v in self._adjacency[u]:
                v = int(v)
                if v in hops:
                    continue
                if within is not None and v not in within:
                    continue
                hops[v] = hops[u] + 1
                queue.append(v)
        return hops

    def k_hop_collections(
        self,
        hops: int,
        *,
        sources: Optional[Sequence[int]] = None,
        block_size: int = KHOP_BLOCK_SIZE,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Every source's ``hops``-hop collection in one vectorized sweep.

        Semantically equivalent to ``bfs_hops([s], max_hops=hops)`` run for
        each source independently (the dict/deque implementation above is
        kept as the differential oracle), but all sources advance frontier
        by frontier together: each hop expands every frontier entry through
        the CSR adjacency with one gather instead of per-node Python loops.

        Parameters
        ----------
        hops:
            Collection radius; ``0`` yields just the sources themselves.
        sources:
            Source node IDs (all nodes when None).  Results are per-source
            independent, so any subset returns exactly what the full sweep
            would -- the shard driver relies on this.
        block_size:
            Sources processed per internal block (memory bound only; the
            results never depend on it).

        Returns
        -------
        list of ``(nodes, hop_counts)`` pairs, one per source in input
        order: ``nodes`` is ascending and includes the source itself (hop
        0); ``hop_counts[k]`` is the hop distance of ``nodes[k]``.
        """
        if hops < 0:
            raise ValueError("hops must be non-negative")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        n = self.n_nodes
        src_all = (
            np.arange(n, dtype=np.int64)
            if sources is None
            else np.asarray([int(s) for s in sources], dtype=np.int64)
        )
        if src_all.size and (src_all.min() < 0 or src_all.max() >= n):
            raise ValueError("source ids must lie in [0, n_nodes)")
        degrees = np.diff(self._indptr)
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for start in range(0, src_all.size, block_size):
            srcs = src_all[start : start + block_size]
            b = srcs.size
            hop_of = np.full((b, n), -1, dtype=np.int32)
            hop_of[np.arange(b), srcs] = 0
            frontier_row = np.arange(b)
            frontier_node = srcs
            for h in range(1, hops + 1):
                counts = degrees[frontier_node]
                total = int(counts.sum())
                if total == 0:
                    break
                # Gather the CSR rows of every frontier node in one shot.
                starts = self._indptr[frontier_node]
                ends = np.cumsum(counts)
                offsets = np.arange(total) - np.repeat(ends - counts, counts)
                expanded_dst = self._indices[np.repeat(starts, counts) + offsets]
                expanded_row = np.repeat(frontier_row, counts)
                fresh = hop_of[expanded_row, expanded_dst] < 0
                # In-batch duplicates both write the same h: harmless.
                hop_of[expanded_row[fresh], expanded_dst[fresh]] = h
                frontier_row, frontier_node = np.nonzero(hop_of == h)
                if frontier_row.size == 0:
                    break
            for r in range(b):
                nodes = np.nonzero(hop_of[r] >= 0)[0]
                results.append((nodes, hop_of[r, nodes].astype(int)))
        return results

    def shortest_path(
        self,
        source: int,
        target: int,
        *,
        within: Optional[Set[int]] = None,
    ) -> Optional[List[int]]:
        """Deterministic shortest hop path from ``source`` to ``target``.

        Ties are broken by preferring the lowest-ID parent at every BFS
        layer, so repeated runs -- and the distributed implementation in
        :mod:`repro.runtime` -- produce the identical path.  Returns None
        when ``target`` is unreachable (inside ``within`` if given).
        """
        if within is not None and (source not in within or target not in within):
            return None
        if source == target:
            return [source]
        parent: Dict[int, int] = {source: -1}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            # Neighbors are pre-sorted, so the first discoverer of any node
            # is its lowest-ID parent at the shallowest BFS depth.
            for v in self._adjacency[u]:
                v = int(v)
                if v in parent:
                    continue
                if within is not None and v not in within:
                    continue
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(v)
        return None

    def connected_components(
        self, *, within: Optional[Set[int]] = None
    ) -> List[List[int]]:
        """Connected components (each sorted) of the graph or a node subset.

        Components are returned sorted by their smallest member, matching
        the deterministic min-ID grouping of the distributed protocol.
        """
        if within is None:
            nodes: Sequence[int] = range(self.n_nodes)
            member = None
        else:
            nodes = sorted(within)
            member = within
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in nodes:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            queue: deque = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adjacency[u]:
                    v = int(v)
                    if v in seen:
                        continue
                    if member is not None and v not in member:
                        continue
                    seen.add(v)
                    comp.append(v)
                    queue.append(v)
            components.append(sorted(comp))
        return components

    def is_connected(self) -> bool:
        """Whether the whole graph is a single connected component."""
        if self.n_nodes == 0:
            return True
        reached = self.bfs_hops([0])
        return len(reached) == self.n_nodes

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def induced_adjacency(self, nodes: Set[int]) -> Dict[int, List[int]]:
        """Adjacency dict of the subgraph induced by ``nodes``."""
        return {
            u: [int(v) for v in self._adjacency[u] if int(v) in nodes]
            for u in sorted(nodes)
        }

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (positions in the ``pos`` attr)."""
        import networkx as nx

        g = nx.Graph()
        for i in range(self.n_nodes):
            g.add_node(i, pos=tuple(self._positions[i]))
        g.add_edges_from(self.edges())
        return g
