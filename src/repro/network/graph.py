"""Unit-ball-graph representation and localized graph queries.

:class:`NetworkGraph` stores node positions and the adjacency induced by a
fixed radio transmission range.  It provides exactly the query surface the
paper's algorithms need: one-hop neighborhoods, restricted BFS (hop counts
and deterministic shortest paths inside a node subset, e.g. the boundary
subgraph), and connected components of induced subgraphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.primitives import as_points
from repro.geometry.spatial_index import UniformGridIndex


class NetworkGraph:
    """Immutable undirected graph over positioned nodes.

    Parameters
    ----------
    positions:
        ``(n, 3)`` node positions.
    radio_range:
        Maximum transmission range; two nodes are neighbors iff their
        Euclidean distance is at most this value.  The paper normalizes it
        to 1 (Definition 1) and so does the generator, but the class accepts
        any positive value.
    adjacency:
        Optional pre-computed adjacency (list of neighbor-index sequences).
        When omitted it is built with a uniform grid index in ``O(n)``
        expected time.
    """

    def __init__(self, positions, radio_range: float = 1.0, adjacency=None):
        self._positions = as_points(positions).copy()
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        self._radio_range = float(radio_range)
        n = self._positions.shape[0]
        if adjacency is None:
            if n:
                index = UniformGridIndex(self._positions, cell_size=self._radio_range)
                neighbor_lists = index.neighbor_lists(self._radio_range)
            else:
                neighbor_lists = []
            self._adjacency = [np.sort(nbrs).astype(int) for nbrs in neighbor_lists]
        else:
            if len(adjacency) != n:
                raise ValueError("adjacency length must match number of nodes")
            self._adjacency = [
                np.sort(np.asarray(list(nbrs), dtype=int)) for nbrs in adjacency
            ]
        self._neighbor_sets: List[Set[int]] = [set(map(int, a)) for a in self._adjacency]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._positions.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._positions.shape[0]

    @property
    def positions(self) -> np.ndarray:
        """Node positions as a read-only ``(n, 3)`` view."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def radio_range(self) -> float:
        """The transmission range defining adjacency."""
        return self._radio_range

    def position(self, node: int) -> np.ndarray:
        """Position of one node."""
        return self._positions[node].copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of the node's one-hop neighbors."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        """Number of one-hop neighbors."""
        return int(self._adjacency[node].size)

    def degrees(self) -> np.ndarray:
        """Array of all node degrees."""
        return np.array([a.size for a in self._adjacency], dtype=int)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are one-hop neighbors."""
        return v in self._neighbor_sets[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All edges as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adjacency):
            for v in nbrs:
                if v > u:
                    yield (u, int(v))

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(sum(a.size for a in self._adjacency)) // 2

    def distance(self, u: int, v: int) -> float:
        """True Euclidean distance between two nodes."""
        return float(np.linalg.norm(self._positions[u] - self._positions[v]))

    # ------------------------------------------------------------------
    # BFS machinery (full graph or induced subgraph)
    # ------------------------------------------------------------------

    def bfs_hops(
        self,
        sources: Iterable[int],
        *,
        within: Optional[Set[int]] = None,
        max_hops: Optional[int] = None,
    ) -> Dict[int, int]:
        """Hop distance from the nearest source to every reachable node.

        Parameters
        ----------
        sources:
            Starting nodes (hop 0).
        within:
            When given, BFS runs on the subgraph induced by this node set;
            sources outside it are ignored.
        max_hops:
            Stop expanding beyond this hop count.

        Returns
        -------
        dict
            ``node -> hops`` for every node reached.
        """
        hops: Dict[int, int] = {}
        queue: deque = deque()
        for s in sorted(set(int(s) for s in sources)):
            if within is not None and s not in within:
                continue
            hops[s] = 0
            queue.append(s)
        while queue:
            u = queue.popleft()
            if max_hops is not None and hops[u] >= max_hops:
                continue
            for v in self._adjacency[u]:
                v = int(v)
                if v in hops:
                    continue
                if within is not None and v not in within:
                    continue
                hops[v] = hops[u] + 1
                queue.append(v)
        return hops

    def shortest_path(
        self,
        source: int,
        target: int,
        *,
        within: Optional[Set[int]] = None,
    ) -> Optional[List[int]]:
        """Deterministic shortest hop path from ``source`` to ``target``.

        Ties are broken by preferring the lowest-ID parent at every BFS
        layer, so repeated runs -- and the distributed implementation in
        :mod:`repro.runtime` -- produce the identical path.  Returns None
        when ``target`` is unreachable (inside ``within`` if given).
        """
        if within is not None and (source not in within or target not in within):
            return None
        if source == target:
            return [source]
        parent: Dict[int, int] = {source: -1}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            # Neighbors are pre-sorted, so the first discoverer of any node
            # is its lowest-ID parent at the shallowest BFS depth.
            for v in self._adjacency[u]:
                v = int(v)
                if v in parent:
                    continue
                if within is not None and v not in within:
                    continue
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(v)
        return None

    def connected_components(
        self, *, within: Optional[Set[int]] = None
    ) -> List[List[int]]:
        """Connected components (each sorted) of the graph or a node subset.

        Components are returned sorted by their smallest member, matching
        the deterministic min-ID grouping of the distributed protocol.
        """
        if within is None:
            nodes: Sequence[int] = range(self.n_nodes)
            member = None
        else:
            nodes = sorted(within)
            member = within
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in nodes:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            queue: deque = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adjacency[u]:
                    v = int(v)
                    if v in seen:
                        continue
                    if member is not None and v not in member:
                        continue
                    seen.add(v)
                    comp.append(v)
                    queue.append(v)
            components.append(sorted(comp))
        return components

    def is_connected(self) -> bool:
        """Whether the whole graph is a single connected component."""
        if self.n_nodes == 0:
            return True
        reached = self.bfs_hops([0])
        return len(reached) == self.n_nodes

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def induced_adjacency(self, nodes: Set[int]) -> Dict[int, List[int]]:
        """Adjacency dict of the subgraph induced by ``nodes``."""
        return {
            u: [int(v) for v in self._adjacency[u] if int(v) in nodes]
            for u in sorted(nodes)
        }

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (positions in the ``pos`` attr)."""
        import networkx as nx

        g = nx.Graph()
        for i in range(self.n_nodes):
            g.add_node(i, pos=tuple(self._positions[i]))
        g.add_edges_from(self.edges())
        return g
