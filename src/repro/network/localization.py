"""Per-node local coordinate systems from local distance measurements.

Step (I) of Algorithm 1: each node collects the measured distances among
the nodes of its local collection neighborhood, completes the missing pairs
via local shortest paths, and embeds the collection with classical MDS into
a private 3D frame.  Only *relative* geometry matters to UBF, so no global
alignment is attempted -- exactly the paper's "local coordinates system
(without global alignment) is sufficient".

Collection radius
-----------------
Candidate balls of radius ``r`` touching a node reach up to ``2r`` away
from it, and the paper's Lemma 1 and Theorem 1 explicitly reason about the
nodes "within 2r".  A node therefore needs (approximate) positions for its
*2-hop* collection to run the emptiness test the analysis describes; the
improved-MDS localization the paper adopts ([31], MDS-MAP-style) builds
exactly such multi-hop local maps.  The default collection radius here is
2 hops; a 1-hop mode (Algorithm 1's most literal reading) is available and
benchmarked as an ablation -- it floods the interior with false positives
because each ball's far side is invisible to the check.

Engines
-------
:func:`build_frames` constructs every node's frame through one of three
engines with *observably identical* results:

``pernode``
    The oracle: one BFS, one O(m^2) Python-loop matrix assembly, and one
    scalar MDS chain per node (:func:`establish_local_frame` in a loop).
``batch`` (default)
    One :meth:`~repro.network.graph.NetworkGraph.k_hop_collections` sweep
    for every node's collection, partial matrices assembled by fancy
    indexing the CSR edge arrays, and frames of equal size stacked into
    ``(B, m, m)`` batches for the batched MDS chain in
    :mod:`repro.geometry.mds`.
``sparse``
    The performance engine: same collection sweep and same-size grouping
    as ``batch``, but the MDS chain exploits sparsity end to end --
    shortest-path completion runs ``scipy.sparse.csgraph.dijkstra`` over
    per-frame CSR blocks for large frames (and a cache-blocked dense
    relaxation below :data:`SPARSE_DIJKSTRA_MIN_MEMBERS`, where dense
    arithmetic is empirically faster), classical MDS solves only the top
    three eigenpairs (MRRR subset driver) instead of the full spectrum,
    and SMACOF iterates over the measured *edge list* rather than dense
    ``(m, m)`` weight matrices.  Assembly, completion, centering, and
    refinement use the optional native kernels from
    :mod:`repro.geometry.native` when a C compiler is available, with
    numpy fallbacks (:func:`~repro.geometry.mds.torgerson_gram_batch`,
    :func:`~repro.geometry.mds.smacof_refine_batch`) behind the same
    contract otherwise.

The engine contract (enforced by the differential tests): member lists,
one-hop counts, and SMACOF iteration counts agree *exactly*; coordinates
agree within :data:`repro.geometry.mds.SMACOF_BATCH_COORD_TOL` (the batch
and sparse chains restructure SMACOF's float arithmetic -- Gram-identity
distances, algebraic stress expansion, edge-list updates -- which
perturbs results at the ~1e-14..1e-10 level while taking the identical
number of majorization steps).  The classical-MDS seed handed to SMACOF
is *bit-identical* across engines -- every engine centers through
``torgerson_gram_batch`` (or its native twin) and eigensolves through
the ``syevr`` subset driver -- because on frames with near-noise-floor
measured distances the majorization amplifies a last-ulp seed difference
by several orders of magnitude, past the contract tolerance.  Frames
smaller than
:data:`SCALAR_FALLBACK_MEMBERS` are delegated to the scalar MDS kernel
*inside* the batch and sparse engines: near-isolated collections produce
rank-deficient systems whose majorization trajectory is sensitive at the
last-ulp level, batching amortizes nothing over their O(1) work, and the
delegation makes them bit-identical to the oracle by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.mds import (
    UNREACHABLE_LOCAL_DISTANCE,
    classical_mds_from_gram_stack,
    complete_distance_matrix_batch,
    complete_distance_matrix_sparse,
    local_mds_embedding,
    local_mds_embedding_batch,
    smacof_refine_batch,
    torgerson_gram_batch,
)
from repro.geometry.native import load_kernels
from repro.network.graph import NetworkGraph
from repro.network.measurement import MeasuredDistances

#: Default collection radius in hops (see module docstring).
DEFAULT_COLLECTION_HOPS = 2

#: Frame-construction engines :func:`build_frames` accepts.
ENGINES = ("batch", "pernode", "sparse")

#: Default engine (see the module docstring's "Engines" section).
DEFAULT_ENGINE = "batch"

#: Upper bound on frames per MDS batch -- beyond this the per-call numpy
#: overhead is already amortized and larger stacks only cost memory.
MAX_BATCH_FRAMES = 64

#: Upper bound on ``B * m * m`` elements per batched partial-distance
#: stack, keeping the working set of one batch a few tens of megabytes
#: even for unusually large collections.
MAX_BATCH_ELEMENTS = 1 << 22

#: Collections with fewer members than this are embedded with the scalar
#: MDS kernel even under the ``batch`` engine.  Such near-isolated frames
#: yield rank-deficient stress systems whose majorization step count flips
#: under last-ulp arithmetic differences, so the only way to honor the
#: exact-iteration-count contract on them is to run the oracle's kernel --
#: which costs nothing, as batching has no overhead to amortize at O(1)
#: frame sizes.
SCALAR_FALLBACK_MEMBERS = 8

#: Frame size at which the sparse engine switches its shortest-path
#: completion from the cache-blocked dense relaxation to
#: ``scipy.sparse.csgraph.dijkstra`` over per-frame CSR blocks.  Dijkstra
#: is asymptotically cheaper (``O(m^2 log m)`` vs ``O(m^3)``) but pays
#: heap and CSR-construction overhead per source; measured on this
#: hardware the dense relaxation's contiguous SIMD arithmetic wins up to
#: roughly twice the typical 2-hop collection size, with crossover near
#: m ~ 192 (see docs/PERFORMANCE.md).
SPARSE_DIJKSTRA_MIN_MEMBERS = 192


@dataclass
class LocalFrame:
    """The local coordinate system of one node.

    Attributes
    ----------
    node:
        The owning node's ID.
    members:
        IDs in the frame: the node itself first, then its sorted one-hop
        neighbors, then the sorted remainder of the collection (nodes at
        2..h hops).
    coordinates:
        ``(len(members), 3)`` embedded positions; row ``k`` corresponds to
        ``members[k]``.  The frame is arbitrary up to rigid motion and
        reflection.
    n_one_hop:
        Number of one-hop neighbors; rows ``1 .. n_one_hop`` of
        ``coordinates`` are the pair candidates for ball construction.
    smacof_iterations:
        SMACOF refinement steps the embedding took (0 for frames that do
        not run MDS, e.g. ground-truth frames).  A deterministic
        observable of the MDS chain: both engines must agree on it
        exactly, which the differential tests pin down.
    """

    node: int
    members: List[int]
    coordinates: np.ndarray
    n_one_hop: int
    smacof_iterations: int = 0

    @property
    def origin_coordinates(self) -> np.ndarray:
        """The owning node's position inside its own frame."""
        return self.coordinates[0]

    @property
    def neighbor_coordinates(self) -> np.ndarray:
        """Positions of the one-hop neighbors (ball-pair candidates)."""
        return self.coordinates[1 : 1 + self.n_one_hop]

    @property
    def collection_coordinates(self) -> np.ndarray:
        """Positions of the full collection (all rows except the origin)."""
        return self.coordinates[1:]


def _frame_members(graph: NetworkGraph, node: int, hops: int) -> (List[int], int):
    """Ordered member list: node, 1-hop neighbors, then farther collection."""
    one_hop = [int(v) for v in graph.neighbors(node)]
    if hops <= 1:
        return [node] + one_hop, len(one_hop)
    reached = graph.bfs_hops([node], max_hops=hops)
    farther = sorted(v for v, d in reached.items() if d >= 2)
    return [node] + one_hop + farther, len(one_hop)


def _partial_distance_matrix(
    graph: NetworkGraph, measured: MeasuredDistances, members: List[int]
) -> np.ndarray:
    """Measured-distance matrix over ``members`` with inf for unmeasured pairs."""
    m = len(members)
    dist = np.full((m, m), np.inf)
    np.fill_diagonal(dist, 0.0)
    for a in range(m):
        for b in range(a + 1, m):
            u, v = members[a], members[b]
            if graph.has_edge(u, v):
                dist[a, b] = dist[b, a] = measured.get(u, v)
    return dist


def establish_local_frame(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node: int,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
) -> LocalFrame:
    """Build the MDS local frame of one node from local measurements.

    Locality: uses only the node's ``hops``-hop collection and the measured
    distances among it -- information gathered with ``hops`` beacon rounds
    in a real deployment (2 by default, matching the ``2r`` reach of the
    candidate balls).
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    partial = _partial_distance_matrix(graph, measured, members)
    info: Dict[str, int] = {}
    coords = local_mds_embedding(partial, info=info)
    return LocalFrame(
        node=node,
        members=members,
        coordinates=coords,
        n_one_hop=n_one_hop,
        smacof_iterations=info.get("smacof_iterations", 0),
    )


def build_frames(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
    engine: str = DEFAULT_ENGINE,
    nodes: Optional[Sequence[int]] = None,
) -> List[LocalFrame]:
    """MDS local frames for ``nodes`` (all nodes by default), in order.

    ``engine`` selects ``"batch"`` (default), ``"sparse"``, or the
    ``"pernode"`` oracle; all produce observably identical frames -- exact
    members and SMACOF step counts, coordinates within a documented float
    tolerance (see the module docstring).  Every node's frame still reads
    only its own ``hops``-hop collection -- the batch and sparse engines
    change how the per-node computations are *scheduled*, never what
    information they consume, so the paper's locality argument is
    untouched.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    node_ids = (
        list(range(graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    if engine == "pernode":
        return [
            establish_local_frame(graph, measured, node, hops=hops)
            for node in node_ids
        ]
    if engine == "sparse":
        return _build_frames_sparse(graph, measured, node_ids, hops)
    return _build_frames_batch(graph, measured, node_ids, hops)


def _measured_edge_values(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> np.ndarray:
    """CSR-aligned measured values, via the vectorized store fast path."""
    fast = getattr(measured, "csr_values", None)
    if fast is not None:
        return fast(indptr, indices)
    return graph.edge_values(measured.get)


def _collect_frame_metas(
    graph: NetworkGraph, node_ids: List[int], hops: int
) -> List[tuple]:
    """Per-node ``(node, members, n_one_hop)`` tuples from one BFS sweep.

    Ordered member arrays mirror :func:`_frame_members`: the node itself,
    then its one-hop neighbors ascending, then the farther collection
    ascending (``k_hop_collections`` returns nodes sorted ascending).
    """
    collections = graph.k_hop_collections(hops, sources=node_ids)
    n_sources = len(node_ids)
    counts = np.fromiter(
        (c[0].size for c in collections), dtype=np.int64, count=n_sources
    )
    # One flat pass over every collection: a stable per-segment sort moving
    # hop >= 2 members behind the one-hop ones (each segment arrives
    # node-sorted, so stability preserves the ascending order within both
    # halves), then the owning node is spliced in at each segment start.
    all_nodes = (
        np.concatenate([c[0] for c in collections]).astype(np.int64, copy=False)
        if n_sources
        else np.empty(0, dtype=np.int64)
    )
    all_hops = (
        np.concatenate([c[1] for c in collections])
        if n_sources
        else np.empty(0, dtype=np.int64)
    )
    segment = np.repeat(np.arange(n_sources, dtype=np.int64), counts)
    keep = all_hops >= 1  # collections may include the hop-0 source itself
    all_nodes = all_nodes[keep]
    all_hops = all_hops[keep]
    segment = segment[keep]
    farther_flag = all_hops >= 2
    ordered = all_nodes[np.lexsort((farther_flag, segment))]
    n_one_hop = np.bincount(
        segment, weights=all_hops == 1, minlength=n_sources
    ).astype(np.int64)

    sizes = np.bincount(segment, minlength=n_sources).astype(np.int64) + 1
    frame_ptr = np.zeros(n_sources + 1, dtype=np.int64)
    np.cumsum(sizes, out=frame_ptr[1:])
    members_flat = np.empty(int(frame_ptr[-1]), dtype=np.int64)
    starts = frame_ptr[:-1]
    members_flat[starts] = np.asarray(node_ids, dtype=np.int64)
    fill = np.ones(members_flat.size, dtype=bool)
    fill[starts] = False
    members_flat[fill] = ordered

    metas: List[tuple] = []
    for i, node in enumerate(node_ids):
        members = members_flat[frame_ptr[i] : frame_ptr[i + 1]]
        metas.append((node, members, int(n_one_hop[i])))
    return metas


def _group_by_size(metas: List[tuple]) -> Dict[int, List[int]]:
    """Frame indices grouped by member count for same-size stacking."""
    by_size: Dict[int, List[int]] = {}
    for i, (_, members, _) in enumerate(metas):
        by_size.setdefault(int(members.size), []).append(i)
    return by_size


def _assemble_partial_stack(
    metas: List[tuple],
    chunk: List[int],
    m: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_vals: np.ndarray,
    local_index: np.ndarray,
) -> np.ndarray:
    """Measured partial-distance ``(len(chunk), m, m)`` stack via CSR gather.

    ``local_index`` is a caller-owned ``(n_nodes,)`` int64 scratch filled
    with -1; it is restored to -1 before returning.
    """
    local_rows = np.arange(m, dtype=np.int64)
    partial = np.full((len(chunk), m, m), np.inf)
    partial[:, local_rows, local_rows] = 0.0
    for b, i in enumerate(chunk):
        members = metas[i][1]
        local_index[members] = local_rows
        row_starts = indptr[members]
        counts = indptr[members + 1] - row_starts
        total = int(counts.sum())
        rows = np.repeat(local_rows, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        csr_pos = np.repeat(row_starts, counts) + offsets
        cols = local_index[indices[csr_pos]]
        inside = cols >= 0
        partial[b, rows[inside], cols[inside]] = edge_vals[csr_pos[inside]]
        local_index[members] = -1
    return partial


def _build_frames_batch(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node_ids: List[int],
    hops: int,
) -> List[LocalFrame]:
    """The ``batch`` engine behind :func:`build_frames`.

    One multi-source BFS sweep yields every collection; frames are grouped
    by member count ``m`` and embedded as ``(B, m, m)`` stacks so the MDS
    chain's numpy call overhead is amortized ``B``-fold.  Partial matrices
    come from fancy-indexing the CSR edge arrays -- no per-pair
    ``has_edge``/``measured.get`` calls.
    """
    if not node_ids:
        return []
    indptr, indices = graph.csr()
    edge_vals = _measured_edge_values(graph, measured, indptr, indices)
    metas = _collect_frame_metas(graph, node_ids, hops)
    by_size = _group_by_size(metas)

    frames: List[Optional[LocalFrame]] = [None] * len(metas)
    # Scratch global->local index map, reset after each frame's gather.
    local_index = np.full(graph.n_nodes, -1, dtype=np.int64)
    for m, group in sorted(by_size.items()):
        cap = max(1, min(MAX_BATCH_FRAMES, MAX_BATCH_ELEMENTS // max(1, m * m)))
        for start in range(0, len(group), cap):
            chunk = group[start : start + cap]
            partial = _assemble_partial_stack(
                metas, chunk, m, indptr, indices, edge_vals, local_index
            )
            if m < SCALAR_FALLBACK_MEMBERS:
                # Rank-deficient tiny frames: run the oracle's kernel
                # per slice (see SCALAR_FALLBACK_MEMBERS).
                coords = np.empty((len(chunk), m, 3))
                iters = np.zeros(len(chunk), dtype=int)
                for b in range(len(chunk)):
                    info: Dict[str, int] = {}
                    coords[b] = local_mds_embedding(partial[b], info=info)
                    iters[b] = info["smacof_iterations"]
            else:
                coords, iters = local_mds_embedding_batch(partial)
            _emit_frames(frames, metas, chunk, coords, iters)
    return frames  # type: ignore[return-value]


def _build_frames_sparse(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node_ids: List[int],
    hops: int,
) -> List[LocalFrame]:
    """The ``sparse`` engine behind :func:`build_frames`.

    Same sweep/grouping as the batch engine, different MDS chain (see the
    module docstring): sparsity-aware completion, top-3 subset
    eigensolves, and edge-list SMACOF, with the hot loops running in the
    optional native kernels when available.  Per-frame computations stay
    independent -- grouping, chunk caps, and kernel availability cannot
    change any frame's result beyond the documented engine tolerance, so
    sharded runs remain partition-invariant.
    """
    if not node_ids:
        return []
    kernels = load_kernels()
    indptr, indices = graph.csr()
    edge_vals = _measured_edge_values(graph, measured, indptr, indices)
    metas = _collect_frame_metas(graph, node_ids, hops)
    by_size = _group_by_size(metas)

    frames: List[Optional[LocalFrame]] = [None] * len(metas)
    # Scratch global->local maps (int32 for the C kernel, int64 for the
    # numpy gather), reset to -1 after each frame's assembly.
    local_index64 = np.full(graph.n_nodes, -1, dtype=np.int64)
    local_index32 = (
        np.full(graph.n_nodes, -1, dtype=np.int32) if kernels is not None else None
    )
    for m, group in sorted(by_size.items()):
        cap = max(1, min(MAX_BATCH_FRAMES, MAX_BATCH_ELEMENTS // max(1, m * m)))
        diag = np.arange(m)
        for start in range(0, len(group), cap):
            chunk = group[start : start + cap]
            nb = len(chunk)

            if m < SCALAR_FALLBACK_MEMBERS:
                # Tiny rank-deficient frames: the oracle's scalar kernel,
                # exactly as in the batch engine.
                partial = _assemble_partial_stack(
                    metas, chunk, m, indptr, indices, edge_vals, local_index64
                )
                coords = np.empty((nb, m, 3))
                iters: np.ndarray = np.zeros(nb, dtype=int)
                for b in range(nb):
                    info: Dict[str, int] = {}
                    coords[b] = local_mds_embedding(partial[b], info=info)
                    iters[b] = info["smacof_iterations"]
                _emit_frames(frames, metas, chunk, coords, iters)
                continue

            frame_ptr = np.arange(nb + 1, dtype=np.int64) * m
            edge_src = edge_dst = edge_delta = edge_ptr = None
            partial = None
            if kernels is not None:
                members_cat = np.concatenate([metas[i][1] for i in chunk])
                stack = np.empty((nb, m, m))
                partial_ptr = np.arange(nb + 1, dtype=np.int64) * (m * m)
                degree_sum = int(
                    (indptr[members_cat + 1] - indptr[members_cat]).sum()
                )
                edge_cap = degree_sum // 2 + 1
                edge_src = np.empty(edge_cap, dtype=np.int32)
                edge_dst = np.empty(edge_cap, dtype=np.int32)
                edge_delta = np.empty(edge_cap, dtype=np.float64)
                edge_ptr = np.zeros(nb + 1, dtype=np.int64)
                kernels.assemble_frames(
                    members_cat, frame_ptr, indptr, indices, edge_vals,
                    stack, partial_ptr,
                    edge_src, edge_dst, edge_delta, edge_ptr, local_index32,
                )
            else:
                stack = _assemble_partial_stack(
                    metas, chunk, m, indptr, indices, edge_vals, local_index64
                )
                partial = stack

            # Shortest-path completion: Dijkstra over per-frame CSR blocks
            # for large frames, the dense relaxation below the crossover.
            if m >= SPARSE_DIJKSTRA_MIN_MEMBERS:
                completed = complete_distance_matrix_sparse(stack)
            elif kernels is not None:
                kernels.fw_complete(stack, UNREACHABLE_LOCAL_DISTANCE)
                completed = stack
            else:
                completed = complete_distance_matrix_batch(stack)

            # Torgerson centering + top-3 subset eigensolve per frame.
            if kernels is not None:
                kernels.center_gram(completed)
                gram = completed
            else:
                gram = torgerson_gram_batch(completed)
            coords = classical_mds_from_gram_stack(gram)

            # Edge-list SMACOF against the measured distances only.
            steps = None
            if kernels is not None:
                steps = kernels.smacof_refine(
                    coords.reshape(-1, 3), frame_ptr,
                    edge_src, edge_dst, edge_delta, edge_ptr,
                    iterations=30, tol=1e-6,
                    max_members=m, max_edges=int(np.diff(edge_ptr).max()),
                )
            if steps is None:
                if partial is None:
                    # Native refinement declined (rank-deficient weight
                    # Laplacian) or kernels are absent: rebuild the dense
                    # measured matrices from the edge lists for the numpy
                    # batch refinement.
                    n_edges = int(edge_ptr[-1])
                    partial = np.full((nb, m, m), np.inf)
                    partial[:, diag, diag] = 0.0
                    frame_of = np.repeat(np.arange(nb), np.diff(edge_ptr))
                    src = edge_src[:n_edges]
                    dst = edge_dst[:n_edges]
                    val = edge_delta[:n_edges]
                    partial[frame_of, src, dst] = val
                    partial[frame_of, dst, src] = val
                mask = np.isfinite(partial)
                weights = mask.astype(float)
                weights[:, diag, diag] = 0.0
                coords, steps = smacof_refine_batch(
                    coords, np.where(mask, partial, 0.0), weights, iterations=30
                )
            _emit_frames(frames, metas, chunk, coords, steps)
    return frames  # type: ignore[return-value]


def _emit_frames(
    frames: List[Optional[LocalFrame]],
    metas: List[tuple],
    chunk: List[int],
    coords: np.ndarray,
    iters: np.ndarray,
) -> None:
    """Materialize one chunk's ``LocalFrame`` objects into ``frames``."""
    for b, i in enumerate(chunk):
        node, members, n_one_hop = metas[i]
        frames[i] = LocalFrame(
            node=node,
            members=members.tolist(),
            coordinates=coords[b].copy(),
            n_one_hop=n_one_hop,
            smacof_iterations=int(iters[b]),
        )


def local_frames(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
) -> Iterator[LocalFrame]:
    """Local frames for every node (generator, in node-ID order)."""
    for node in range(graph.n_nodes):
        yield establish_local_frame(graph, measured, node, hops=hops)


def true_local_frame(
    graph: NetworkGraph, node: int, *, hops: int = DEFAULT_COLLECTION_HOPS
) -> LocalFrame:
    """Local frame built from ground-truth positions (no measurement step).

    Used when nodes are assumed to know their coordinates, the case where
    the paper says step (I) "can be skipped".
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    coords = graph.positions[np.asarray(members, dtype=int)]
    return LocalFrame(
        node=node,
        members=members,
        coordinates=np.array(coords),
        n_one_hop=n_one_hop,
    )


def frame_distance_residual(graph: NetworkGraph, frame: LocalFrame) -> float:
    """RMS error between frame-implied and true pairwise distances.

    A diagnostic of localization quality: 0 for perfect ranging, growing
    with measurement error.  This is the deformation mechanism that turns
    boundary nodes into interior ones and vice versa (Sec. IV-B).
    """
    members = np.asarray(frame.members, dtype=int)
    true_pts = graph.positions[members]
    est_pts = np.asarray(frame.coordinates, dtype=float)
    m = len(members)
    if m < 2:
        return 0.0
    upper = np.triu_indices(m, k=1)
    true_d = np.linalg.norm(true_pts[:, None, :] - true_pts[None, :, :], axis=-1)
    est_d = np.linalg.norm(est_pts[:, None, :] - est_pts[None, :, :], axis=-1)
    diffs = est_d[upper] - true_d[upper]
    return float(np.sqrt(np.mean(np.square(diffs))))
