"""Per-node local coordinate systems from local distance measurements.

Step (I) of Algorithm 1: each node collects the measured distances among
the nodes of its local collection neighborhood, completes the missing pairs
via local shortest paths, and embeds the collection with classical MDS into
a private 3D frame.  Only *relative* geometry matters to UBF, so no global
alignment is attempted -- exactly the paper's "local coordinates system
(without global alignment) is sufficient".

Collection radius
-----------------
Candidate balls of radius ``r`` touching a node reach up to ``2r`` away
from it, and the paper's Lemma 1 and Theorem 1 explicitly reason about the
nodes "within 2r".  A node therefore needs (approximate) positions for its
*2-hop* collection to run the emptiness test the analysis describes; the
improved-MDS localization the paper adopts ([31], MDS-MAP-style) builds
exactly such multi-hop local maps.  The default collection radius here is
2 hops; a 1-hop mode (Algorithm 1's most literal reading) is available and
benchmarked as an ablation -- it floods the interior with false positives
because each ball's far side is invisible to the check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.geometry.mds import local_mds_embedding
from repro.network.graph import NetworkGraph
from repro.network.measurement import MeasuredDistances

#: Default collection radius in hops (see module docstring).
DEFAULT_COLLECTION_HOPS = 2


@dataclass
class LocalFrame:
    """The local coordinate system of one node.

    Attributes
    ----------
    node:
        The owning node's ID.
    members:
        IDs in the frame: the node itself first, then its sorted one-hop
        neighbors, then the sorted remainder of the collection (nodes at
        2..h hops).
    coordinates:
        ``(len(members), 3)`` embedded positions; row ``k`` corresponds to
        ``members[k]``.  The frame is arbitrary up to rigid motion and
        reflection.
    n_one_hop:
        Number of one-hop neighbors; rows ``1 .. n_one_hop`` of
        ``coordinates`` are the pair candidates for ball construction.
    """

    node: int
    members: List[int]
    coordinates: np.ndarray
    n_one_hop: int

    @property
    def origin_coordinates(self) -> np.ndarray:
        """The owning node's position inside its own frame."""
        return self.coordinates[0]

    @property
    def neighbor_coordinates(self) -> np.ndarray:
        """Positions of the one-hop neighbors (ball-pair candidates)."""
        return self.coordinates[1 : 1 + self.n_one_hop]

    @property
    def collection_coordinates(self) -> np.ndarray:
        """Positions of the full collection (all rows except the origin)."""
        return self.coordinates[1:]


def _frame_members(graph: NetworkGraph, node: int, hops: int) -> (List[int], int):
    """Ordered member list: node, 1-hop neighbors, then farther collection."""
    one_hop = [int(v) for v in graph.neighbors(node)]
    if hops <= 1:
        return [node] + one_hop, len(one_hop)
    reached = graph.bfs_hops([node], max_hops=hops)
    farther = sorted(v for v, d in reached.items() if d >= 2)
    return [node] + one_hop + farther, len(one_hop)


def _partial_distance_matrix(
    graph: NetworkGraph, measured: MeasuredDistances, members: List[int]
) -> np.ndarray:
    """Measured-distance matrix over ``members`` with inf for unmeasured pairs."""
    m = len(members)
    dist = np.full((m, m), np.inf)
    np.fill_diagonal(dist, 0.0)
    for a in range(m):
        for b in range(a + 1, m):
            u, v = members[a], members[b]
            if graph.has_edge(u, v):
                dist[a, b] = dist[b, a] = measured.get(u, v)
    return dist


def establish_local_frame(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node: int,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
) -> LocalFrame:
    """Build the MDS local frame of one node from local measurements.

    Locality: uses only the node's ``hops``-hop collection and the measured
    distances among it -- information gathered with ``hops`` beacon rounds
    in a real deployment (2 by default, matching the ``2r`` reach of the
    candidate balls).
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    partial = _partial_distance_matrix(graph, measured, members)
    coords = local_mds_embedding(partial)
    return LocalFrame(
        node=node, members=members, coordinates=coords, n_one_hop=n_one_hop
    )


def local_frames(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
) -> Iterator[LocalFrame]:
    """Local frames for every node (generator, in node-ID order)."""
    for node in range(graph.n_nodes):
        yield establish_local_frame(graph, measured, node, hops=hops)


def true_local_frame(
    graph: NetworkGraph, node: int, *, hops: int = DEFAULT_COLLECTION_HOPS
) -> LocalFrame:
    """Local frame built from ground-truth positions (no measurement step).

    Used when nodes are assumed to know their coordinates, the case where
    the paper says step (I) "can be skipped".
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    coords = graph.positions[np.asarray(members, dtype=int)]
    return LocalFrame(
        node=node,
        members=members,
        coordinates=np.array(coords),
        n_one_hop=n_one_hop,
    )


def frame_distance_residual(graph: NetworkGraph, frame: LocalFrame) -> float:
    """RMS error between frame-implied and true pairwise distances.

    A diagnostic of localization quality: 0 for perfect ranging, growing
    with measurement error.  This is the deformation mechanism that turns
    boundary nodes into interior ones and vice versa (Sec. IV-B).
    """
    members = np.asarray(frame.members, dtype=int)
    true_pts = graph.positions[members]
    est_pts = frame.coordinates
    diffs = []
    m = len(members)
    for a in range(m):
        for b in range(a + 1, m):
            true_d = float(np.linalg.norm(true_pts[a] - true_pts[b]))
            est_d = float(np.linalg.norm(est_pts[a] - est_pts[b]))
            diffs.append(est_d - true_d)
    if not diffs:
        return 0.0
    return float(np.sqrt(np.mean(np.square(diffs))))
