"""Per-node local coordinate systems from local distance measurements.

Step (I) of Algorithm 1: each node collects the measured distances among
the nodes of its local collection neighborhood, completes the missing pairs
via local shortest paths, and embeds the collection with classical MDS into
a private 3D frame.  Only *relative* geometry matters to UBF, so no global
alignment is attempted -- exactly the paper's "local coordinates system
(without global alignment) is sufficient".

Collection radius
-----------------
Candidate balls of radius ``r`` touching a node reach up to ``2r`` away
from it, and the paper's Lemma 1 and Theorem 1 explicitly reason about the
nodes "within 2r".  A node therefore needs (approximate) positions for its
*2-hop* collection to run the emptiness test the analysis describes; the
improved-MDS localization the paper adopts ([31], MDS-MAP-style) builds
exactly such multi-hop local maps.  The default collection radius here is
2 hops; a 1-hop mode (Algorithm 1's most literal reading) is available and
benchmarked as an ablation -- it floods the interior with false positives
because each ball's far side is invisible to the check.

Engines
-------
:func:`build_frames` constructs every node's frame through one of two
engines with *observably identical* results:

``pernode``
    The oracle: one BFS, one O(m^2) Python-loop matrix assembly, and one
    scalar MDS chain per node (:func:`establish_local_frame` in a loop).
``batch`` (default)
    One :meth:`~repro.network.graph.NetworkGraph.k_hop_collections` sweep
    for every node's collection, partial matrices assembled by fancy
    indexing the CSR edge arrays, and frames of equal size stacked into
    ``(B, m, m)`` batches for the batched MDS chain in
    :mod:`repro.geometry.mds`.

The engine contract (enforced by the differential tests): member lists,
one-hop counts, and SMACOF iteration counts agree *exactly*; coordinates
agree within :data:`repro.geometry.mds.SMACOF_BATCH_COORD_TOL` (the batch
SMACOF restructures its arithmetic -- Gram-identity distances, algebraic
stress expansion -- which perturbs results at the 1e-12 level while
taking the identical number of majorization steps).  Frames smaller than
:data:`SCALAR_FALLBACK_MEMBERS` are delegated to the scalar MDS kernel
*inside* the batch engine: near-isolated collections produce
rank-deficient systems whose majorization trajectory is sensitive at the
last-ulp level, batching amortizes nothing over their O(1) work, and the
delegation makes them bit-identical to the oracle by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.mds import local_mds_embedding, local_mds_embedding_batch
from repro.network.graph import NetworkGraph
from repro.network.measurement import MeasuredDistances

#: Default collection radius in hops (see module docstring).
DEFAULT_COLLECTION_HOPS = 2

#: Frame-construction engines :func:`build_frames` accepts.
ENGINES = ("batch", "pernode")

#: Default engine (see the module docstring's "Engines" section).
DEFAULT_ENGINE = "batch"

#: Upper bound on frames per MDS batch -- beyond this the per-call numpy
#: overhead is already amortized and larger stacks only cost memory.
MAX_BATCH_FRAMES = 64

#: Upper bound on ``B * m * m`` elements per batched partial-distance
#: stack, keeping the working set of one batch a few tens of megabytes
#: even for unusually large collections.
MAX_BATCH_ELEMENTS = 1 << 22

#: Collections with fewer members than this are embedded with the scalar
#: MDS kernel even under the ``batch`` engine.  Such near-isolated frames
#: yield rank-deficient stress systems whose majorization step count flips
#: under last-ulp arithmetic differences, so the only way to honor the
#: exact-iteration-count contract on them is to run the oracle's kernel --
#: which costs nothing, as batching has no overhead to amortize at O(1)
#: frame sizes.
SCALAR_FALLBACK_MEMBERS = 8


@dataclass
class LocalFrame:
    """The local coordinate system of one node.

    Attributes
    ----------
    node:
        The owning node's ID.
    members:
        IDs in the frame: the node itself first, then its sorted one-hop
        neighbors, then the sorted remainder of the collection (nodes at
        2..h hops).
    coordinates:
        ``(len(members), 3)`` embedded positions; row ``k`` corresponds to
        ``members[k]``.  The frame is arbitrary up to rigid motion and
        reflection.
    n_one_hop:
        Number of one-hop neighbors; rows ``1 .. n_one_hop`` of
        ``coordinates`` are the pair candidates for ball construction.
    smacof_iterations:
        SMACOF refinement steps the embedding took (0 for frames that do
        not run MDS, e.g. ground-truth frames).  A deterministic
        observable of the MDS chain: both engines must agree on it
        exactly, which the differential tests pin down.
    """

    node: int
    members: List[int]
    coordinates: np.ndarray
    n_one_hop: int
    smacof_iterations: int = 0

    @property
    def origin_coordinates(self) -> np.ndarray:
        """The owning node's position inside its own frame."""
        return self.coordinates[0]

    @property
    def neighbor_coordinates(self) -> np.ndarray:
        """Positions of the one-hop neighbors (ball-pair candidates)."""
        return self.coordinates[1 : 1 + self.n_one_hop]

    @property
    def collection_coordinates(self) -> np.ndarray:
        """Positions of the full collection (all rows except the origin)."""
        return self.coordinates[1:]


def _frame_members(graph: NetworkGraph, node: int, hops: int) -> (List[int], int):
    """Ordered member list: node, 1-hop neighbors, then farther collection."""
    one_hop = [int(v) for v in graph.neighbors(node)]
    if hops <= 1:
        return [node] + one_hop, len(one_hop)
    reached = graph.bfs_hops([node], max_hops=hops)
    farther = sorted(v for v, d in reached.items() if d >= 2)
    return [node] + one_hop + farther, len(one_hop)


def _partial_distance_matrix(
    graph: NetworkGraph, measured: MeasuredDistances, members: List[int]
) -> np.ndarray:
    """Measured-distance matrix over ``members`` with inf for unmeasured pairs."""
    m = len(members)
    dist = np.full((m, m), np.inf)
    np.fill_diagonal(dist, 0.0)
    for a in range(m):
        for b in range(a + 1, m):
            u, v = members[a], members[b]
            if graph.has_edge(u, v):
                dist[a, b] = dist[b, a] = measured.get(u, v)
    return dist


def establish_local_frame(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node: int,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
) -> LocalFrame:
    """Build the MDS local frame of one node from local measurements.

    Locality: uses only the node's ``hops``-hop collection and the measured
    distances among it -- information gathered with ``hops`` beacon rounds
    in a real deployment (2 by default, matching the ``2r`` reach of the
    candidate balls).
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    partial = _partial_distance_matrix(graph, measured, members)
    info: Dict[str, int] = {}
    coords = local_mds_embedding(partial, info=info)
    return LocalFrame(
        node=node,
        members=members,
        coordinates=coords,
        n_one_hop=n_one_hop,
        smacof_iterations=info.get("smacof_iterations", 0),
    )


def build_frames(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
    engine: str = DEFAULT_ENGINE,
    nodes: Optional[Sequence[int]] = None,
) -> List[LocalFrame]:
    """MDS local frames for ``nodes`` (all nodes by default), in order.

    ``engine`` selects ``"batch"`` (default) or the ``"pernode"`` oracle;
    both produce observably identical frames -- exact members and SMACOF
    step counts, coordinates within a documented float tolerance (see the
    module docstring).  Every
    node's frame still reads only its own ``hops``-hop collection -- the
    batch engine changes how the per-node computations are *scheduled*,
    never what information they consume, so the paper's locality argument
    is untouched.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    node_ids = (
        list(range(graph.n_nodes)) if nodes is None else [int(n) for n in nodes]
    )
    if engine == "pernode":
        return [
            establish_local_frame(graph, measured, node, hops=hops)
            for node in node_ids
        ]
    return _build_frames_batch(graph, measured, node_ids, hops)


def _build_frames_batch(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node_ids: List[int],
    hops: int,
) -> List[LocalFrame]:
    """The ``batch`` engine behind :func:`build_frames`.

    One multi-source BFS sweep yields every collection; frames are grouped
    by member count ``m`` and embedded as ``(B, m, m)`` stacks so the MDS
    chain's numpy call overhead is amortized ``B``-fold.  Partial matrices
    come from fancy-indexing the CSR edge arrays -- no per-pair
    ``has_edge``/``measured.get`` calls.
    """
    if not node_ids:
        return []
    indptr, indices = graph.csr()
    edge_vals = graph.edge_values(measured.get)
    collections = graph.k_hop_collections(hops, sources=node_ids)

    # Ordered member arrays, mirroring _frame_members: the node itself,
    # then its one-hop neighbors ascending, then the farther collection
    # ascending (k_hop_collections returns nodes sorted ascending).
    metas: List[tuple] = []
    for node, (coll_nodes, coll_hops) in zip(node_ids, collections):
        one_hop = coll_nodes[coll_hops == 1]
        farther = coll_nodes[coll_hops >= 2]
        members = np.concatenate((np.array([node], dtype=np.int64), one_hop, farther))
        metas.append((node, members, int(one_hop.size)))

    by_size: Dict[int, List[int]] = {}
    for i, (_, members, _) in enumerate(metas):
        by_size.setdefault(int(members.size), []).append(i)

    frames: List[Optional[LocalFrame]] = [None] * len(metas)
    # Scratch global->local index map, reset after each frame's gather.
    local_index = np.full(graph.n_nodes, -1, dtype=np.int64)
    for m, group in sorted(by_size.items()):
        cap = max(1, min(MAX_BATCH_FRAMES, MAX_BATCH_ELEMENTS // max(1, m * m)))
        local_rows = np.arange(m, dtype=np.int64)
        for start in range(0, len(group), cap):
            chunk = group[start : start + cap]
            partial = np.full((len(chunk), m, m), np.inf)
            partial[:, local_rows, local_rows] = 0.0
            for b, i in enumerate(chunk):
                members = metas[i][1]
                local_index[members] = local_rows
                row_starts = indptr[members]
                counts = indptr[members + 1] - row_starts
                total = int(counts.sum())
                rows = np.repeat(local_rows, counts)
                offsets = np.arange(total, dtype=np.int64) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                csr_pos = np.repeat(row_starts, counts) + offsets
                cols = local_index[indices[csr_pos]]
                inside = cols >= 0
                partial[b, rows[inside], cols[inside]] = edge_vals[csr_pos[inside]]
                local_index[members] = -1
            if m < SCALAR_FALLBACK_MEMBERS:
                # Rank-deficient tiny frames: run the oracle's kernel
                # per slice (see SCALAR_FALLBACK_MEMBERS).
                coords = np.empty((len(chunk), m, 3))
                iters = np.zeros(len(chunk), dtype=int)
                for b in range(len(chunk)):
                    info: Dict[str, int] = {}
                    coords[b] = local_mds_embedding(partial[b], info=info)
                    iters[b] = info["smacof_iterations"]
            else:
                coords, iters = local_mds_embedding_batch(partial)
            for b, i in enumerate(chunk):
                node, members, n_one_hop = metas[i]
                frames[i] = LocalFrame(
                    node=node,
                    members=[int(x) for x in members],
                    coordinates=coords[b].copy(),
                    n_one_hop=n_one_hop,
                    smacof_iterations=int(iters[b]),
                )
    return frames  # type: ignore[return-value]


def local_frames(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    *,
    hops: int = DEFAULT_COLLECTION_HOPS,
) -> Iterator[LocalFrame]:
    """Local frames for every node (generator, in node-ID order)."""
    for node in range(graph.n_nodes):
        yield establish_local_frame(graph, measured, node, hops=hops)


def true_local_frame(
    graph: NetworkGraph, node: int, *, hops: int = DEFAULT_COLLECTION_HOPS
) -> LocalFrame:
    """Local frame built from ground-truth positions (no measurement step).

    Used when nodes are assumed to know their coordinates, the case where
    the paper says step (I) "can be skipped".
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    coords = graph.positions[np.asarray(members, dtype=int)]
    return LocalFrame(
        node=node,
        members=members,
        coordinates=np.array(coords),
        n_one_hop=n_one_hop,
    )


def frame_distance_residual(graph: NetworkGraph, frame: LocalFrame) -> float:
    """RMS error between frame-implied and true pairwise distances.

    A diagnostic of localization quality: 0 for perfect ranging, growing
    with measurement error.  This is the deformation mechanism that turns
    boundary nodes into interior ones and vice versa (Sec. IV-B).
    """
    members = np.asarray(frame.members, dtype=int)
    true_pts = graph.positions[members]
    est_pts = np.asarray(frame.coordinates, dtype=float)
    m = len(members)
    if m < 2:
        return 0.0
    upper = np.triu_indices(m, k=1)
    true_d = np.linalg.norm(true_pts[:, None, :] - true_pts[None, :, :], axis=-1)
    est_d = np.linalg.norm(est_pts[:, None, :] - est_pts[None, :, :], axis=-1)
    diffs = est_d[upper] - true_d[upper]
    return float(np.sqrt(np.mean(np.square(diffs))))
