"""Distance measurement with synthetic ranging errors.

The paper introduces "a wide range of random errors, from 0 to 100% of the
radio transmission radius, in the distance measurement" (Sec. IV-A); with
the range normalized to 1, an error level ``e`` perturbs each measured
distance by a uniform draw from ``[-e, e]``.  That uniform-absolute model is
the default here; uniform-relative and Gaussian variants are provided for
sensitivity studies.

Measurements are generated **once per edge**: both endpoints observe the
same measured value, as a real two-way ranging exchange would agree on, and
repeated queries return the same value (determinism requirement).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.network.graph import NetworkGraph

#: Floor applied to measured distances; ranging cannot report a
#: non-positive distance between distinct nodes.
MIN_MEASURED_DISTANCE = 1e-6


class DistanceErrorModel(ABC):
    """Strategy that perturbs a vector of true distances."""

    @abstractmethod
    def perturb(self, true_distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return measured distances for ``true_distances``."""

    def describe(self) -> str:
        """Human-readable tag used in reports."""
        return type(self).__name__


@dataclass(frozen=True)
class NoError(DistanceErrorModel):
    """Perfect ranging; measured distance equals true distance."""

    def perturb(self, true_distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(true_distances, dtype=float).copy()

    def describe(self) -> str:
        return "no-error"


@dataclass(frozen=True)
class UniformAbsoluteError(DistanceErrorModel):
    """Additive uniform error in ``[-level, level]`` radio-range units.

    This is the paper's sweep axis: ``level = 0.3`` corresponds to the "30%
    distance measurement error" point of Figs. 1 and 11.
    """

    level: float

    def __post_init__(self):
        if self.level < 0:
            raise ValueError("error level must be non-negative")

    def perturb(self, true_distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        true = np.asarray(true_distances, dtype=float)
        noise = rng.uniform(-self.level, self.level, size=true.shape)
        return np.maximum(true + noise, MIN_MEASURED_DISTANCE)

    def describe(self) -> str:
        return f"uniform-absolute({self.level:.0%})"


@dataclass(frozen=True)
class UniformRelativeError(DistanceErrorModel):
    """Multiplicative uniform error: ``d' = d * (1 + U(-level, level))``."""

    level: float

    def __post_init__(self):
        if self.level < 0:
            raise ValueError("error level must be non-negative")

    def perturb(self, true_distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        true = np.asarray(true_distances, dtype=float)
        factor = 1.0 + rng.uniform(-self.level, self.level, size=true.shape)
        return np.maximum(true * factor, MIN_MEASURED_DISTANCE)

    def describe(self) -> str:
        return f"uniform-relative({self.level:.0%})"


@dataclass(frozen=True)
class GaussianError(DistanceErrorModel):
    """Additive zero-mean Gaussian error with standard deviation ``sigma``."""

    sigma: float

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def perturb(self, true_distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        true = np.asarray(true_distances, dtype=float)
        noise = rng.normal(0.0, self.sigma, size=true.shape) if self.sigma else 0.0
        return np.maximum(true + noise, MIN_MEASURED_DISTANCE)

    def describe(self) -> str:
        return f"gaussian(sigma={self.sigma:.3f})"


class MeasuredDistances:
    """Symmetric store of per-edge measured distances.

    Indexable by node pair in either order; missing pairs (non-edges) raise
    ``KeyError`` -- nodes can only range against their one-hop neighbors.
    """

    def __init__(self, values: Dict[Tuple[int, int], float]):
        self._values = values
        self._sorted_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def get(self, u: int, v: int) -> float:
        """Measured distance between neighbors ``u`` and ``v``."""
        return self._values[self._key(u, v)]

    def csr_values(self, indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Per-directed-CSR-entry measured values, vectorized.

        The bulk twin of ``graph.edge_values(self.get)``: the value for
        the edge stored at CSR position ``p`` (row ``u``, column
        ``indices[p]``) is ``result[p]``, with no per-entry dict lookup.
        Pairs are encoded as ``min * n + max`` and resolved with one
        ``searchsorted`` against a sorted snapshot of the measured pairs,
        built once and cached on the instance.  Raises ``KeyError`` when
        the CSR contains an unmeasured pair, mirroring :meth:`get`.
        """
        n = int(indptr.size) - 1
        cache = self._sorted_cache
        if cache is None or cache[0] != n:
            if self._values:
                pairs = np.array(list(self._values), dtype=np.int64)
                keys = pairs[:, 0] * n + pairs[:, 1]
                vals = np.fromiter(
                    self._values.values(), dtype=float, count=len(self._values)
                )
                order = np.argsort(keys)
                keys = keys[order]
                vals = vals[order]
            else:
                keys = np.empty(0, dtype=np.int64)
                vals = np.empty(0, dtype=float)
            cache = (n, keys, vals)
            self._sorted_cache = cache
        _, keys, vals = cache
        heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        cols = indices.astype(np.int64, copy=False)
        encoded = np.minimum(heads, cols) * n + np.maximum(heads, cols)
        pos = np.searchsorted(keys, encoded)
        if encoded.size and (
            pos.max(initial=0) >= keys.size
            or not np.array_equal(keys[np.minimum(pos, keys.size - 1)], encoded)
        ):
            raise KeyError("CSR adjacency contains an unmeasured pair")
        return vals[pos]

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        u, v = pair
        return self._key(u, v) in self._values

    def __len__(self) -> int:
        return len(self._values)

    def items(self):
        """Iterate ``((u, v), distance)`` with ``u < v``."""
        return self._values.items()


def measure_distances(
    graph: NetworkGraph,
    model: DistanceErrorModel,
    rng: np.random.Generator,
) -> MeasuredDistances:
    """Measure every edge of ``graph`` once under ``model``.

    Returns a :class:`MeasuredDistances` usable by the localization step.
    """
    edges = list(graph.edges())
    if not edges:
        return MeasuredDistances({})
    true = np.array([graph.distance(u, v) for u, v in edges])
    measured = model.perturb(true, rng)
    return MeasuredDistances(
        {edge: float(value) for edge, value in zip(edges, measured)}
    )
