"""Radio link models.

Definition 1 of the paper assumes only "an arbitrary radio transmission
model with a maximum radio transmission range of 1".  The generator
defaults to the unit-disk model (link iff distance <= 1), and also ships
the standard quasi-unit-disk model (quasi-UDG): links are certain up to
``alpha``, impossible beyond 1, and exist with a distance-interpolated
probability in between -- the usual abstraction for real radios' gray
zone.  Link decisions are symmetric (one draw per pair) and deterministic
given the RNG seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.geometry.spatial_index import UniformGridIndex, auto_cell_size


class LinkModel(ABC):
    """Decides which candidate node pairs form links."""

    #: Maximum distance (in radio-range units) at which a link can exist.
    max_range: float = 1.0

    @abstractmethod
    def link_mask(
        self, distances: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean mask of which pair distances become links."""

    def describe(self) -> str:
        """Human-readable tag for reports."""
        return type(self).__name__


@dataclass(frozen=True)
class UnitDiskModel(LinkModel):
    """Deterministic unit-disk connectivity: link iff distance <= 1."""

    def link_mask(self, distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(distances) <= 1.0

    def describe(self) -> str:
        return "unit-disk"


@dataclass(frozen=True)
class QuasiUnitDiskModel(LinkModel):
    """Quasi-UDG: certain links below ``alpha``, linear gray zone to 1.

    Parameters
    ----------
    alpha:
        Inner radius in ``(0, 1]``; pairs closer than this always link.
        ``alpha = 1`` degenerates to the unit-disk model.
    """

    alpha: float = 0.75

    def __post_init__(self):
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def link_mask(self, distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        d = np.asarray(distances, dtype=float)
        if self.alpha >= 1.0:
            return d <= 1.0
        probability = np.clip((1.0 - d) / (1.0 - self.alpha), 0.0, 1.0)
        probability[d <= self.alpha] = 1.0
        return rng.uniform(size=d.shape) < probability

    def describe(self) -> str:
        return f"quasi-udg(alpha={self.alpha})"


def build_adjacency(
    positions: np.ndarray,
    model: LinkModel,
    rng: np.random.Generator,
) -> List[List[int]]:
    """Adjacency lists under a link model (one symmetric draw per pair)."""
    n = positions.shape[0]
    adjacency: List[List[int]] = [[] for _ in range(n)]
    if n == 0:
        return adjacency
    index = UniformGridIndex(positions, cell_size=auto_cell_size(model.max_range))
    pairs = index.neighbor_pairs_array(model.max_range)
    if not pairs.size:
        return adjacency
    dists = np.linalg.norm(positions[pairs[:, 0]] - positions[pairs[:, 1]], axis=1)
    mask = model.link_mask(dists, rng)
    for u, v in pairs[mask].tolist():
        adjacency[u].append(v)
        adjacency[v].append(u)
    return adjacency
