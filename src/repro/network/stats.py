"""Descriptive statistics of generated networks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.generator import Network


@dataclass(frozen=True)
class NetworkStats:
    """Summary statistics of a deployed network.

    Mirrors the figures the paper quotes for its simulated networks
    (e.g. "4210 nodes with an average nodal degree of 18.8").
    """

    n_nodes: int
    n_edges: int
    n_truth_boundary: int
    avg_degree: float
    min_degree: int
    max_degree: int
    connected: bool
    avg_edge_length: float

    def as_row(self) -> str:
        """Single formatted report line."""
        return (
            f"nodes={self.n_nodes} edges={self.n_edges} "
            f"boundary={self.n_truth_boundary} "
            f"degree(avg/min/max)={self.avg_degree:.1f}/{self.min_degree}/"
            f"{self.max_degree} connected={self.connected} "
            f"edge_len={self.avg_edge_length:.3f}"
        )


def compute_network_stats(network: Network) -> NetworkStats:
    """Compute :class:`NetworkStats` for a network."""
    graph = network.graph
    degrees = graph.degrees()
    edge_lengths = [graph.distance(u, v) for u, v in graph.edges()]
    return NetworkStats(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        n_truth_boundary=int(network.truth_boundary.sum()),
        avg_degree=float(degrees.mean()) if degrees.size else 0.0,
        min_degree=int(degrees.min()) if degrees.size else 0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        connected=graph.is_connected(),
        avg_edge_length=float(np.mean(edge_lengths)) if edge_lengths else 0.0,
    )
