"""Trilateration-based local coordinates: the classic alternative to MDS.

The paper notes "multiple schemes [27]-[31] are available to create a
local coordinates system" and adopts improved MDS [31].  This module
implements the other classic family -- incremental trilateration (in the
spirit of [27]): seed a coordinate frame from three/four mutually ranging
nodes, then place every further node by least-squares multilateration
from at least four already-placed ranging partners.

Compared with MDS, trilateration is cheaper per node but propagates
placement errors incrementally, so it degrades faster under ranging noise
-- `benchmarks/bench_ablation_localization.py` quantifies the difference
on the full detection pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.network.graph import NetworkGraph
from repro.network.localization import LocalFrame, _frame_members
from repro.network.measurement import MeasuredDistances

#: Minimum anchors required to multilaterate a 3D position.
MIN_ANCHORS = 4


def _measured(graph: NetworkGraph, measured: MeasuredDistances, u: int, v: int) -> Optional[float]:
    """Measured distance if the pair can range, else None."""
    if graph.has_edge(u, v):
        return measured.get(u, v)
    return None


def _multilaterate(anchors: np.ndarray, ranges: np.ndarray) -> Optional[np.ndarray]:
    """Least-squares position from anchor points and measured ranges.

    Linearizes by subtracting the first sphere equation from the rest;
    needs at least four non-degenerate anchors.  Returns None when the
    linear system is rank-deficient (near-coplanar anchors).
    """
    if anchors.shape[0] < MIN_ANCHORS:
        return None
    p0 = anchors[0]
    r0 = ranges[0]
    a = 2.0 * (anchors[1:] - p0)
    b = (
        np.einsum("ij,ij->i", anchors[1:], anchors[1:])
        - float(np.dot(p0, p0))
        - ranges[1:] ** 2
        + r0 ** 2
    )
    solution, residuals, rank, _ = np.linalg.lstsq(a, b, rcond=None)
    if rank < 3:
        return None
    return solution


def _seed_frame(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node: int,
    members: List[int],
) -> Optional[Dict[int, np.ndarray]]:
    """Place the first four nodes: origin, x-axis, xy-plane, +z halfspace."""
    placed: Dict[int, np.ndarray] = {node: np.zeros(3)}

    # Second node: the node's *farthest* measured neighbor, on the x-axis.
    # A long baseline keeps the seed stable under ranging noise; choosing
    # the nearest neighbor would latch onto the most-corrupted (clamped)
    # measurement and blow up the frame.
    candidates = [
        (m, _measured(graph, measured, node, m))
        for m in members
        if m != node
    ]
    candidates = [(m, d) for m, d in candidates if d is not None]
    if not candidates:
        return None
    j, d_ij = max(candidates, key=lambda t: (t[1], -t[0]))
    if d_ij < 1e-6:
        return None
    placed[j] = np.array([d_ij, 0.0, 0.0])

    # Third node: ranges to both placed nodes, non-collinear.
    third = None
    for m in members:
        if m in placed:
            continue
        d_im = _measured(graph, measured, node, m)
        d_jm = _measured(graph, measured, j, m)
        if d_im is None or d_jm is None:
            continue
        x = (d_im ** 2 - d_jm ** 2 + d_ij ** 2) / (2.0 * d_ij)
        y_sq = d_im ** 2 - x ** 2
        if y_sq <= 1e-9:
            continue
        placed[m] = np.array([x, np.sqrt(y_sq), 0.0])
        third = m
        break
    if third is None:
        return None

    # Fourth node: ranges to all three, placed in the +z halfspace.
    for m in members:
        if m in placed:
            continue
        dists = [
            _measured(graph, measured, anchor, m) for anchor in (node, j, third)
        ]
        if any(d is None for d in dists):
            continue
        d_i, d_j, d_k = dists
        x = (d_i ** 2 - d_j ** 2 + d_ij ** 2) / (2.0 * d_ij)
        pk = placed[third]
        if abs(pk[1]) < 1e-12:
            continue
        y = (d_i ** 2 - d_k ** 2 + float(np.dot(pk, pk)) - 2.0 * x * pk[0]) / (
            2.0 * pk[1]
        )
        z_sq = d_i ** 2 - x ** 2 - y ** 2
        if z_sq <= 1e-9:
            continue
        placed[m] = np.array([x, y, np.sqrt(z_sq)])
        return placed
    return None


def trilateration_local_frame(
    graph: NetworkGraph,
    measured: MeasuredDistances,
    node: int,
    *,
    hops: int = 2,
    max_sweeps: int = 8,
) -> LocalFrame:
    """Local frame by incremental multilateration.

    Nodes of the collection that cannot be placed (too few ranging
    partners among the already-placed set) are dropped from the frame --
    UBF then simply knows less, mirroring a real deployment where an
    unlocalizable neighbor contributes nothing.

    Falls back to the degenerate single-point frame when even the seed
    tetrahedron cannot be formed (isolated or near-collinear
    neighborhoods).
    """
    members, n_one_hop = _frame_members(graph, node, hops)
    one_hop = set(members[1 : 1 + n_one_hop])

    placed = _seed_frame(graph, measured, node, members)
    if placed is None:
        coords = np.zeros((1, 3))
        return LocalFrame(node=node, members=[node], coordinates=coords, n_one_hop=0)

    remaining = [m for m in members if m not in placed]
    for _ in range(max_sweeps):
        progress = False
        still_remaining = []
        for m in remaining:
            anchor_ids = [
                a for a in placed if _measured(graph, measured, a, m) is not None
            ]
            if len(anchor_ids) >= MIN_ANCHORS:
                anchors = np.array([placed[a] for a in anchor_ids])
                ranges = np.array(
                    [_measured(graph, measured, a, m) for a in anchor_ids]
                )
                position = _multilaterate(anchors, ranges)
                if position is not None:
                    placed[m] = position
                    progress = True
                    continue
            still_remaining.append(m)
        remaining = still_remaining
        if not progress or not remaining:
            break

    ordered = [node]
    ordered.extend(m for m in members if m in placed and m != node and m in one_hop)
    placed_one_hop = len(ordered) - 1
    ordered.extend(
        m for m in members if m in placed and m != node and m not in one_hop
    )
    coords = np.array([placed[m] for m in ordered])
    return LocalFrame(
        node=node,
        members=ordered,
        coordinates=coords,
        n_one_hop=placed_one_hop,
    )
