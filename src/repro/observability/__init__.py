"""Structured tracing, metrics, and profiling hooks for the pipeline.

The package is dependency-free (stdlib only) and sits *below* every other
``repro`` layer in the import DAG, so any stage -- the geometry kernels,
the detection pipeline, the surface builder, the message simulator, the
evaluation drivers -- can emit spans and metrics without creating an
upward or lateral edge (see ``repro.analysis.rules.layering``).

Three pieces:

* :mod:`repro.observability.tracer` -- nested stage spans (wall time,
  counters, config snapshots) behind a :class:`Tracer`, with a shared
  no-op :data:`NULL_TRACER` so instrumented hot paths pay essentially
  nothing when tracing is disabled.
* :mod:`repro.observability.metrics` -- a :class:`MetricsRegistry` of
  named counters / gauges / histograms that absorbs the ad-hoc
  observables scattered through the pipeline result objects.
* :mod:`repro.observability.export` -- JSONL trace export, schema
  validation, and round-trip parsing, so traces are machine-parseable
  CI artifacts (see ``docs/OBSERVABILITY.md``).
"""

from repro.observability.export import (
    TRACE_FORMAT_VERSION,
    load_trace,
    parse_trace,
    render_trace_tree,
    trace_lines,
    validate_trace_lines,
    write_trace,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_campaign_report,
    record_simulation,
    record_surface_build,
    record_ubf_outcomes,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TickClock,
    Tracer,
    config_snapshot,
    ensure_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TickClock",
    "TRACE_FORMAT_VERSION",
    "Tracer",
    "config_snapshot",
    "ensure_tracer",
    "load_trace",
    "parse_trace",
    "record_campaign_report",
    "record_simulation",
    "record_surface_build",
    "record_ubf_outcomes",
    "render_trace_tree",
    "trace_lines",
    "validate_trace_lines",
    "write_trace",
]
