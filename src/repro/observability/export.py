"""JSONL trace export, schema validation, and round-trip parsing.

A trace file is newline-delimited JSON:

* line 1 -- the trace header::

      {"kind": "trace", "format_version": 1}

* every further line -- one span, in depth-first (pre-order) walk of the
  span forest, so a parent always precedes its children::

      {"kind": "span", "span_id": 1, "parent_id": null, "name": "detect",
       "start": ..., "end": ..., "duration": ..., "attrs": {...},
       "events": [...]}

``span_id`` is the 1-based position of the span line in the file and
``parent_id`` refers to an earlier span (``null`` for roots) -- both are
assigned at export time from the walk, so identical span forests always
serialize to identical bytes (keys are sorted, floats use ``repr``).
That determinism is load-bearing: the parallel-merge tests compare whole
trace files byte-for-byte across worker counts.

:func:`validate_trace_lines` is the schema check CI runs on trace
artifacts; :func:`parse_trace` rebuilds the span forest, and
``trace_lines(parse_trace(lines)) == lines`` round-trips exactly.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.observability.tracer import Span

TRACE_FORMAT_VERSION = 1


def write_atomic(path, text: str, encoding: str = "utf-8") -> Path:
    """Crash-safe text write: unique tmp file in the target's directory,
    then an atomic ``os.replace``.

    A reader never observes a truncated file -- it sees either the old
    content or the new content, and a crash mid-write leaves the
    destination untouched.  The helper lives here (the bottom layer of the
    import DAG) so every artifact writer -- trace export below,
    ``repro.io.serialization`` (which re-exports it as the public home),
    and the bench/robustness/service layers -- can share one
    implementation without upward imports.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path

#: Required span-record keys and the types each must carry.
_SPAN_FIELD_TYPES: Dict[str, Union[type, Tuple[type, ...]]] = {
    "kind": str,
    "span_id": int,
    "parent_id": (int, type(None)),
    "name": str,
    "start": (int, float),
    "end": (int, float),
    "duration": (int, float),
    "attrs": dict,
    "events": list,
}


def _dump(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(", ", ": "))


def trace_lines(roots: Sequence[Span]) -> List[str]:
    """Serialize a span forest to JSONL lines (header first, DFS order)."""
    lines = [_dump({"kind": "trace", "format_version": TRACE_FORMAT_VERSION})]
    next_id = 1
    stack = [(span, None) for span in reversed(list(roots))]
    while stack:
        span, parent_id = stack.pop()
        span_id = next_id
        next_id += 1
        end = span.end if span.end is not None else span.start
        lines.append(
            _dump(
                {
                    "kind": "span",
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": end,
                    "duration": end - span.start,
                    "attrs": span.attrs,
                    "events": span.events,
                }
            )
        )
        for child in reversed(span.children):
            stack.append((child, span_id))
    return lines


def write_trace(roots: Sequence[Span], path) -> Path:
    """Write a span forest as a JSONL trace file; returns the path.

    The write is atomic (:func:`write_atomic`): a crash mid-export never
    leaves a truncated trace for the schema gate to choke on.
    """
    return write_atomic(path, "\n".join(trace_lines(roots)) + "\n")


def validate_trace_lines(lines: Iterable[str]) -> List[str]:
    """Schema-check JSONL trace lines; returns findings (empty when valid)."""
    errors: List[str] = []
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            if lineno == 1:
                errors.append("line 1: empty line where the trace header should be")
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        if not isinstance(doc, dict):
            errors.append(f"line {lineno}: expected a JSON object")
            continue
        records.append(doc)

    if errors:
        return errors
    if not records:
        return ["empty trace: missing header line"]

    header, spans = records[0], records[1:]
    if header.get("kind") != "trace":
        errors.append(f"line 1: header 'kind' must be 'trace', got {header.get('kind')!r}")
    if header.get("format_version") != TRACE_FORMAT_VERSION:
        errors.append(
            f"line 1: unsupported format_version {header.get('format_version')!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )

    seen_ids = set()
    for offset, doc in enumerate(spans):
        lineno = offset + 2
        expected_id = offset + 1
        for key, types in _SPAN_FIELD_TYPES.items():
            if key not in doc:
                errors.append(f"line {lineno}: span missing required key {key!r}")
            elif not isinstance(doc[key], types) or isinstance(doc[key], bool):
                errors.append(
                    f"line {lineno}: span key {key!r} has wrong type "
                    f"{type(doc[key]).__name__}"
                )
        if errors and errors[-1].startswith(f"line {lineno}:"):
            continue
        if doc["kind"] != "span":
            errors.append(f"line {lineno}: 'kind' must be 'span', got {doc['kind']!r}")
        if doc["span_id"] != expected_id:
            errors.append(
                f"line {lineno}: span_id {doc['span_id']} out of sequence "
                f"(expected {expected_id})"
            )
        parent = doc["parent_id"]
        if parent is not None and parent not in seen_ids:
            errors.append(
                f"line {lineno}: parent_id {parent} does not refer to an "
                "earlier span"
            )
        if not doc["name"]:
            errors.append(f"line {lineno}: span name must be non-empty")
        if doc["end"] < doc["start"]:
            errors.append(
                f"line {lineno}: span ends ({doc['end']}) before it starts "
                f"({doc['start']})"
            )
        if abs(doc["duration"] - (doc["end"] - doc["start"])) > 1e-9:
            errors.append(f"line {lineno}: duration does not equal end - start")
        for event in doc["events"]:
            if not isinstance(event, dict) or "name" not in event:
                errors.append(
                    f"line {lineno}: events must be objects with a 'name' key"
                )
                break
        seen_ids.add(doc["span_id"])
    return errors


def parse_trace(lines: Iterable[str]) -> List[Span]:
    """Rebuild the span forest from JSONL lines (assumed schema-valid)."""
    roots: List[Span] = []
    by_id: Dict[int, Span] = {}
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("kind") != "span":
            continue
        span = Span(doc["name"], doc["start"])
        span.end = doc["end"]
        span.attrs = dict(doc["attrs"])
        span.events = list(doc["events"])
        by_id[doc["span_id"]] = span
        parent = doc.get("parent_id")
        if parent is None:
            roots.append(span)
        elif parent in by_id:
            by_id[parent].children.append(span)
        else:
            raise ValueError(f"line {lineno}: unknown parent_id {parent}")
    return roots


def load_trace(path) -> List[Span]:
    """Read and parse a JSONL trace file after validating its schema."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    errors = validate_trace_lines(lines)
    if errors:
        raise ValueError(
            f"invalid trace file {path}: " + "; ".join(errors[:5])
            + (f" (+{len(errors) - 5} more)" if len(errors) > 5 else "")
        )
    return parse_trace(lines)


def _format_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    shown = []
    for key in list(attrs)[:limit]:
        value = attrs[key]
        if isinstance(value, float):
            shown.append(f"{key}={value:.4g}")
        elif isinstance(value, (dict, list)):
            shown.append(f"{key}=...")
        else:
            shown.append(f"{key}={value}")
    if len(attrs) > limit:
        shown.append(f"(+{len(attrs) - limit})")
    return " ".join(shown)


def render_trace_tree(roots: Sequence[Span]) -> str:
    """ASCII rendering of a span forest (the ``trace`` subcommand's view)."""
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = _format_attrs(span.attrs)
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{indent}{span.name}  {span.duration:.6f}s{suffix}")
        for event in span.events:
            lines.append(f"{indent}  ! {event.get('name', '?')}")
        for child in span.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
