"""Named counters, gauges, and histograms for pipeline observables.

The detection and surface pipelines already *compute* most of their
interesting observables -- ``UBFNodeOutcome`` carries Theorem-1 work
counters, ``SimulationResult`` counts rounds/messages/timers, and
``SurfaceBuildRecord`` keeps the per-step mesh artifacts -- but each keeps
them in its own ad-hoc shape.  A :class:`MetricsRegistry` gives them one
queryable home with a deterministic, JSON-ready snapshot.

The ``record_*`` absorbers are deliberately duck-typed: this package sits
below every pipeline layer in the import DAG, so it reads the result
objects through their attributes instead of importing their classes
(which would be an upward edge under LAY002).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing count (work done, items seen)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (sizes, fractions, settings)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Distribution of observed values with a summary snapshot.

    Values are kept (the pipeline's cardinalities are small -- nodes,
    groups, shards), so the summary can report exact order statistics via
    the nearest-rank rule without any numeric dependency.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[Number] = []

    def observe(self, value: Number) -> None:
        self.values.append(value)

    def observe_many(self, values: Iterable[Number]) -> None:
        self.values.extend(values)

    @staticmethod
    def _nearest_rank(ordered: List[Number], q: float) -> Number:
        index = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
        return ordered[index]

    def summary(self) -> Dict[str, Number]:
        """count/sum/min/max/mean/p50/p95 of everything observed so far."""
        if not self.values:
            return {"count": 0, "sum": 0, "min": 0, "max": 0, "mean": 0.0,
                    "p50": 0, "p95": 0}
        ordered = sorted(self.values)
        total = sum(ordered)
        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": self._nearest_rank(ordered, 0.50),
            "p95": self._nearest_rank(ordered, 0.95),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics in one flat namespace.

    Asking for an existing name with a different metric kind is an error:
    a silent type swap would corrupt whatever the first writer recorded.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic (name-sorted) JSON-ready snapshot of every metric."""
        snapshot: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                snapshot["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                snapshot["gauges"][name] = metric.value
            else:
                snapshot["histograms"][name] = metric.summary()
        return snapshot


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes, or ``None``.

    Reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` -- a process-wide
    high-water mark, reported in KiB on Linux and bytes on macOS.  Returns
    ``None`` where the ``resource`` module is unavailable (Windows), so
    callers can skip recording instead of writing platform-shaped zeros.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-dependent
        return int(peak)
    return int(peak) * 1024


def record_peak_rss(registry: MetricsRegistry, stage: str) -> Optional[int]:
    """Record peak RSS so far under the gauge ``rss.<stage>.peak_bytes``.

    ``ru_maxrss`` never decreases, so a value recorded right after a stage
    means "the high-water mark up to and including this stage" -- a cheap,
    allocation-free way to see which pipeline stage first pushed memory to
    its peak.  Returns the recorded value, or ``None`` (and records
    nothing) where the platform cannot report it.
    """
    value = peak_rss_bytes()
    if value is None:  # pragma: no cover - non-POSIX platform
        return None
    registry.gauge(f"rss.{stage}.peak_bytes").set(value)
    return value


def record_ubf_outcomes(registry: MetricsRegistry, outcomes: Iterable[Any]) -> None:
    """Absorb ``UBFNodeOutcome``-shaped records (duck-typed) into metrics.

    Expects objects with ``is_candidate``, ``balls_tested``,
    ``points_checked``, and ``neighborhood_size`` attributes.
    """
    candidates = registry.counter("ubf.candidates")
    balls = registry.counter("ubf.balls_tested")
    checks = registry.counter("ubf.points_checked")
    nodes = registry.counter("ubf.nodes_tested")
    degree = registry.histogram("ubf.neighborhood_size")
    for outcome in outcomes:
        nodes.inc()
        if outcome.is_candidate:
            candidates.inc()
        balls.inc(outcome.balls_tested)
        checks.inc(outcome.points_checked)
        degree.observe(outcome.neighborhood_size)


def record_simulation(registry: MetricsRegistry, result: Any, prefix: str = "sim") -> None:
    """Absorb a ``SimulationResult``-shaped record (duck-typed) into metrics.

    Expects ``rounds``, ``messages_sent``, ``messages_dropped``,
    ``messages_duplicated``, ``timers_fired``, and ``quiesced`` attributes.
    """
    registry.counter(f"{prefix}.runs").inc()
    registry.counter(f"{prefix}.messages_sent").inc(result.messages_sent)
    registry.counter(f"{prefix}.messages_dropped").inc(result.messages_dropped)
    registry.counter(f"{prefix}.messages_duplicated").inc(result.messages_duplicated)
    registry.counter(f"{prefix}.timers_fired").inc(result.timers_fired)
    if not result.quiesced:
        registry.counter(f"{prefix}.non_quiescent_runs").inc()
    registry.histogram(f"{prefix}.rounds").observe(result.rounds)


def record_surface_build(registry: MetricsRegistry, record: Any) -> None:
    """Absorb a ``SurfaceBuildRecord``-shaped object (duck-typed) into metrics.

    Expects ``landmarks``, ``cdg_edges``, ``cdm_edges``, ``cdm_rejected``
    and a ``mesh`` with ``edge_face_counts()``.
    """
    registry.counter("surface.meshes_built").inc()
    registry.histogram("surface.landmarks").observe(len(record.landmarks))
    registry.counter("surface.cdg_edges").inc(len(record.cdg_edges))
    registry.counter("surface.cdm_edges").inc(len(record.cdm_edges))
    registry.counter("surface.cdm_rejected").inc(len(record.cdm_rejected))
    counts = record.mesh.edge_face_counts()
    if counts:
        two_faced = sum(1 for c in counts.values() if c == 2) / len(counts)
        registry.histogram("surface.two_faced_fraction").observe(two_faced)


def record_campaign_report(registry: MetricsRegistry, report: Any) -> None:
    """Absorb a campaign-run report (duck-typed) into ``campaign.*`` metrics.

    Expects ``n_cells``, ``submitted``, ``reused``, ``cache_hits``,
    ``executed``, ``done`` and ``dead`` counts (see
    ``repro.service.campaign.CampaignReport``).
    """
    registry.counter("campaign.runs").inc()
    registry.counter("campaign.cells.total").inc(report.n_cells)
    registry.counter("campaign.cells.submitted").inc(report.submitted)
    registry.counter("campaign.cells.reused").inc(report.reused)
    registry.counter("campaign.cells.cache_hits").inc(report.cache_hits)
    registry.counter("campaign.cells.executed").inc(report.executed)
    registry.counter("campaign.cells.done").inc(report.done)
    registry.counter("campaign.cells.dead").inc(report.dead)
