"""Nested stage spans with a no-op default.

A :class:`Span` is one timed region of pipeline work (a stage, a shard, a
per-group mesh attempt) carrying attributes (counters, config snapshots,
decision outcomes) and point-in-time events.  A :class:`Tracer` maintains
the open-span stack so ``with tracer.span(...)`` calls nest naturally, and
keeps every finished root span for export.

Two deliberate design points:

* **Disabled tracing is (almost) free.**  Instrumented code takes an
  optional ``tracer`` argument and defaults to the shared
  :data:`NULL_TRACER`, whose ``span`` method returns one reusable no-op
  context manager -- no ``Span`` objects, no clock reads, no string
  formatting.  Code that would *compute* extra observables just to record
  them must guard on ``tracer.enabled``.
* **Deterministic traces are testable traces.**  All wall-clock reads go
  through an injectable ``clock`` callable (default
  :func:`time.perf_counter`).  Tests inject :class:`TickClock` to make
  span timings -- and therefore whole exported traces -- byte-for-byte
  reproducible; the parallel shard driver gives every shard a *fresh*
  clock from ``shard_clock`` so per-shard spans do not depend on how
  shards were packed onto worker processes.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional


class TickClock:
    """Deterministic clock: every read returns the previous read plus one.

    Injected by tests (``Tracer(clock=TickClock(), shard_clock=TickClock)``)
    to make exported traces byte-identical across runs and across worker
    counts.  Picklable by reference, so the class itself can travel to
    worker processes as a per-shard clock factory.
    """

    def __init__(self) -> None:
        self._ticks = 0

    def __call__(self) -> float:
        self._ticks += 1
        return float(self._ticks)


def config_snapshot(value: Any) -> Any:
    """JSON-ready snapshot of a config object (dataclasses become dicts).

    Dataclass instances are unwrapped recursively; other non-primitive
    leaves (e.g. error-model instances) fall back to ``repr`` so the
    snapshot never fails and never drags object graphs into a trace.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: config_snapshot(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): config_snapshot(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [config_snapshot(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Span:
    """One timed, attributed region of work; nests via ``children``."""

    __slots__ = ("name", "start", "end", "attrs", "events", "children")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Elapsed clock units (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, key: str, value: Any) -> None:
        """Record one attribute (counters, decisions, identifiers)."""
        self.attrs[key] = value

    def set_many(self, mapping: Dict[str, Any]) -> None:
        """Record several attributes at once."""
        self.attrs.update(mapping)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append({"name": name, **attrs})

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (picklable, JSON-ready) including children."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "attrs": dict(self.attrs),
            "events": list(self.events),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        span = cls(str(doc["name"]), float(doc["start"]))
        span.end = float(doc["end"])
        span.attrs = dict(doc.get("attrs", {}))
        span.events = list(doc.get("events", []))
        span.children = [cls.from_dict(c) for c in doc.get("children", [])]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration:.6g}, "
            f"children={len(self.children)})"
        )


class _ActiveSpan:
    """Context manager pairing one span with the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.set("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collecting tracer: records nested spans for later export.

    Parameters
    ----------
    clock:
        Zero-argument callable returning a monotonically increasing float;
        defaults to :func:`time.perf_counter`.
    shard_clock:
        Optional zero-argument factory producing a *fresh* clock.  Parallel
        drivers use it to time each shard independently of how shards are
        distributed across processes (None means shards use
        ``time.perf_counter``).  Must be picklable (a module-level class or
        function) to reach worker processes.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        shard_clock: Optional[Callable[[], Callable[[], float]]] = None,
    ):
        self.clock: Callable[[], float] = clock if clock is not None else time.perf_counter
        self.shard_clock = shard_clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a nested span: ``with tracer.span("ubf", n_nodes=n) as sp``."""
        span = Span(name, self.clock())
        if attrs:
            span.attrs.update(attrs)
        return _ActiveSpan(self, span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs: Any) -> None:
        """Record an event on the innermost open span (dropped when none)."""
        if self._stack:
            self._stack[-1].event(name, **attrs)

    def attach(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Graft pre-built span dicts (e.g. from worker processes).

        The spans become children of the innermost open span, or roots when
        no span is open; input order is preserved, which is what makes the
        parallel merge deterministic.
        """
        spans = [Span.from_dict(doc) for doc in span_dicts]
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(spans)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span stack corrupted: closing {span.name!r} "
                f"but {popped.name!r} was innermost"
            )


class _NullSpan:
    """Inert span: accepts writes, records nothing."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    children: List[Any] = []
    start = 0.0
    end = 0.0
    duration = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def set_many(self, mapping: Dict[str, Any]) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


class _NullSpanContext:
    """Reusable no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every call is a no-op returning shared singletons.

    ``span`` hands back one preallocated context manager, so an
    instrumented stage adds only an attribute lookup and a call per span
    when tracing is off -- the "pay ~nothing when disabled" contract the
    bench baselines hold the pipeline to.
    """

    enabled = False
    shard_clock = None
    roots: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    @property
    def current(self) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def attach(self, span_dicts: List[Dict[str, Any]]) -> None:
        pass


#: Shared no-op tracer; the default for every instrumented code path.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[Any]) -> Any:
    """Normalize an optional tracer argument to a usable tracer object."""
    return tracer if tracer is not None else NULL_TRACER
