"""Distributed runtime: message-level realizations of the localized steps.

The reference implementations in :mod:`repro.core` and
:mod:`repro.surface` compute, centrally, the *fixed points* of localized
protocols.  This package provides the protocols themselves on a round-based
synchronous message-passing simulator, demonstrating that every step runs
with one-hop communication only:

* :class:`repro.runtime.protocols.TTLFloodProtocol` -- the IFF flood
  (Sec. II-B): boundary candidates flood with a TTL, count distinct
  originators heard.
* :class:`repro.runtime.protocols.MinLabelProtocol` -- boundary grouping by
  min-ID label propagation (connected components).
* :class:`repro.runtime.protocols.VoronoiCellProtocol` -- Step I's
  closest-landmark association with (distance, ID) tie-breaking.
* :func:`repro.runtime.protocols.distributed_landmark_election` -- the
  k-hop maximal-independent-set election, phased over flood rounds.

``tests/integration/test_runtime_equivalence.py`` pins each protocol's
outcome to its centralized counterpart.

The runtime also owns the failure story: :mod:`repro.runtime.faults`
declares seeded fault models (:class:`~repro.runtime.faults.FaultPlan`:
uniform/per-link/burst loss, duplication, bounded delay, crash schedules)
that :class:`~repro.runtime.simulator.Simulator` injects, and
:class:`~repro.runtime.protocols.ReliableProtocol` adds per-hop
dedup + ack/retransmit under a bounded
:class:`~repro.runtime.protocols.RetryPolicy`.  See ``docs/ROBUSTNESS.md``.
"""

from repro.runtime.faults import (
    CrashSpec,
    DelaySpec,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    sample_crashes,
)
from repro.runtime.message import Message
from repro.runtime.protocols import (
    MinLabelProtocol,
    ReliableProtocol,
    ReliableStats,
    RetryPolicy,
    TTLFloodProtocol,
    VoronoiCellProtocol,
    distributed_landmark_election,
    reliable_stats,
    run_grouping_distributed,
    run_iff_distributed,
)
from repro.runtime.simulator import (
    NodeContext,
    NonQuiescentTermination,
    Protocol,
    SimulationResult,
    Simulator,
)

__all__ = [
    "Message",
    "Simulator",
    "SimulationResult",
    "Protocol",
    "NodeContext",
    "NonQuiescentTermination",
    "TTLFloodProtocol",
    "MinLabelProtocol",
    "VoronoiCellProtocol",
    "distributed_landmark_election",
    "run_iff_distributed",
    "run_grouping_distributed",
    "FaultPlan",
    "FaultInjector",
    "GilbertElliott",
    "DelaySpec",
    "CrashSpec",
    "sample_crashes",
    "ReliableProtocol",
    "ReliableStats",
    "RetryPolicy",
    "reliable_stats",
]
