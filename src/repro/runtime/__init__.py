"""Distributed runtime: message-level realizations of the localized steps.

The reference implementations in :mod:`repro.core` and
:mod:`repro.surface` compute, centrally, the *fixed points* of localized
protocols.  This package provides the protocols themselves on a round-based
synchronous message-passing simulator, demonstrating that every step runs
with one-hop communication only:

* :class:`repro.runtime.protocols.TTLFloodProtocol` -- the IFF flood
  (Sec. II-B): boundary candidates flood with a TTL, count distinct
  originators heard.
* :class:`repro.runtime.protocols.MinLabelProtocol` -- boundary grouping by
  min-ID label propagation (connected components).
* :class:`repro.runtime.protocols.VoronoiCellProtocol` -- Step I's
  closest-landmark association with (distance, ID) tie-breaking.
* :func:`repro.runtime.protocols.distributed_landmark_election` -- the
  k-hop maximal-independent-set election, phased over flood rounds.

``tests/integration/test_runtime_equivalence.py`` pins each protocol's
outcome to its centralized counterpart.
"""

from repro.runtime.message import Message
from repro.runtime.protocols import (
    MinLabelProtocol,
    TTLFloodProtocol,
    VoronoiCellProtocol,
    distributed_landmark_election,
)
from repro.runtime.simulator import NodeContext, Protocol, SimulationResult, Simulator

__all__ = [
    "Message",
    "Simulator",
    "SimulationResult",
    "Protocol",
    "NodeContext",
    "TTLFloodProtocol",
    "MinLabelProtocol",
    "VoronoiCellProtocol",
    "distributed_landmark_election",
]
