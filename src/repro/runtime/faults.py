"""Composable, seeded fault models for the message-passing simulator.

The paper's algorithms (UBF candidacy, IFF's TTL-bounded flood, min-label
grouping) target lossy wireless networks, so the simulator must be able to
misbehave on demand.  This module provides a declarative :class:`FaultPlan`
-- what can go wrong -- and a stateful :class:`FaultInjector` -- the seeded
realization of one run.  The plan is an immutable value object; all
randomness lives in the injector's ``np.random.Generator``, so an identical
plan plus an identical seed reproduces the exact same delivery schedule.

Supported fault classes, freely composable in one plan:

* **uniform loss** -- independent per-message drop probability;
* **per-link loss** -- directed ``(sender, recipient)`` overrides, which
  also model *asymmetric* links (lossy one way, clean the other);
* **burst loss** -- a two-state Gilbert-Elliott channel per directed link:
  a link flips between a good and a bad state each round and applies the
  state's loss rate, producing correlated loss bursts;
* **duplication** -- a delivered message arrives twice in the same round;
* **bounded delay** -- a message is deferred by up to ``max_delay`` extra
  rounds, which reorders it relative to later traffic;
* **crash/recover schedules** -- a node is down for ``[crash_round,
  recover_round)``: it receives nothing, fires no timers, and (because all
  protocol actions are message- or timer-driven) sends nothing.

The semantics of each decision are made at *delivery attempt* time, in a
fixed order (crash, loss, duplication, delay), so the RNG draw sequence is
a deterministic function of the protocol's message trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.message import Message


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov (Gilbert-Elliott) burst-loss channel parameters.

    Each directed link holds a good/bad state that transitions once per
    round; messages traversing the link are dropped with the current
    state's loss rate.  The defaults give rare (~5%/round) transitions
    into a bad state that drops 80% of traffic and clears quickly.
    """

    p_bad: float = 0.05
    p_recover: float = 0.5
    loss_good: float = 0.0
    loss_bad: float = 0.8

    def __post_init__(self):
        for name in ("p_bad", "p_recover", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class DelaySpec:
    """Bounded random extra delivery delay (causes reordering).

    With probability ``rate`` a message is deferred by a uniform integer
    in ``[1, max_delay]`` extra rounds.  Delayed messages are merged with
    the normally scheduled traffic of their new delivery round, so they
    can arrive after messages sent later -- exactly the reordering a
    protocol must tolerate.
    """

    rate: float = 0.0
    max_delay: int = 1

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("delay rate must be in [0, 1]")
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1")


@dataclass(frozen=True)
class CrashSpec:
    """One node-down interval: ``[crash_round, recover_round)``.

    ``recover_round=None`` means the node never comes back.  A node
    crashed at round 0 never even runs ``on_start``.
    """

    node: int
    crash_round: int = 0
    recover_round: Optional[int] = None

    def __post_init__(self):
        if self.crash_round < 0:
            raise ValueError("crash_round must be non-negative")
        if self.recover_round is not None and self.recover_round <= self.crash_round:
            raise ValueError("recover_round must exceed crash_round")

    def down_at(self, round_no: int) -> bool:
        """True when the node is crashed during ``round_no``."""
        if round_no < self.crash_round:
            return False
        return self.recover_round is None or round_no < self.recover_round


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of everything that may go wrong in one run.

    Attributes
    ----------
    loss_rate:
        Baseline independent per-message drop probability.
    link_loss:
        Directed ``(sender, recipient) -> loss`` overrides; a link present
        here ignores ``loss_rate`` (use a 0.0 entry for a clean direction
        of an otherwise lossy network -- that is how asymmetry is spelled).
    burst:
        Optional Gilbert-Elliott burst-loss channel applied per directed
        link *on top of* the uniform/per-link loss.
    duplicate_rate:
        Probability that a delivered message arrives twice.
    delay:
        Optional bounded-delay model (see :class:`DelaySpec`).
    crashes:
        Node crash/recover schedule, one :class:`CrashSpec` per interval.
    """

    loss_rate: float = 0.0
    link_loss: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    burst: Optional[GilbertElliott] = None
    duplicate_rate: float = 0.0
    delay: Optional[DelaySpec] = None
    crashes: Tuple[CrashSpec, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        for link, rate in self.link_loss.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"link_loss[{link}] must be in [0, 1]")
        # Normalize to a tuple so plans stay hashable-by-content and a
        # caller-held list cannot mutate the plan after construction.
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def is_ideal(self) -> bool:
        """True when the plan injects no faults at all."""
        return (
            self.loss_rate == 0.0  # lint: allow[FLT009] -- exact zero is the "no faults configured" sentinel, never a computed value
            and not self.link_loss
            and self.burst is None
            and self.duplicate_rate == 0.0  # lint: allow[FLT009] -- exact zero is the "no faults configured" sentinel, never a computed value
            and self.delay is None
            and not self.crashes
        )

    @staticmethod
    def ideal() -> "FaultPlan":
        """The no-fault plan (perfect synchronous delivery)."""
        return FaultPlan()

    @staticmethod
    def uniform_loss(rate: float) -> "FaultPlan":
        """Back-compat shim for the old single ``loss_rate`` float."""
        return FaultPlan(loss_rate=rate)


def sample_crashes(
    nodes: Iterable[int],
    fraction: float,
    rng: np.random.Generator,
    *,
    crash_round: int = 1,
    recover_round: Optional[int] = None,
) -> Tuple[CrashSpec, ...]:
    """Crash a seeded random fraction of ``nodes`` at ``crash_round``.

    The default ``crash_round=1`` lets victims run ``on_start`` (their
    round-0 sends are already in flight) and then fail -- the classic
    mid-protocol crash.  Returns specs sorted by node ID so the draw is
    order-independent of the input iterable.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    pool = sorted(int(n) for n in nodes)
    n_crash = int(round(fraction * len(pool)))
    if n_crash == 0:
        return ()
    victims = rng.choice(len(pool), size=n_crash, replace=False)
    return tuple(
        CrashSpec(pool[i], crash_round=crash_round, recover_round=recover_round)
        for i in sorted(int(v) for v in victims)
    )


class _LinkChannel:
    """Per-directed-link Gilbert-Elliott state, advanced lazily by round."""

    __slots__ = ("state_bad", "last_round")

    def __init__(self):
        self.state_bad = False
        self.last_round = 0

    def loss_at(
        self, round_no: int, model: GilbertElliott, rng: np.random.Generator
    ) -> float:
        """Current-state loss rate, advancing the chain to ``round_no``."""
        while self.last_round < round_no:
            self.last_round += 1
            flip = self.p_flip(model)
            if rng.uniform() < flip:
                self.state_bad = not self.state_bad
        return model.loss_bad if self.state_bad else model.loss_good

    def p_flip(self, model: GilbertElliott) -> float:
        return model.p_recover if self.state_bad else model.p_bad


class FaultInjector:
    """Seeded runtime realization of a :class:`FaultPlan` for one run.

    The simulator feeds each round's traffic through :meth:`deliveries`,
    which returns the messages actually arriving that round (delayed
    arrivals from earlier rounds included) plus drop/duplicate counts.
    Crash state is exposed via :meth:`is_down` so the simulator can also
    skip ``on_start``/timer callbacks at crashed nodes.
    """

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        self.plan = plan
        self._rng = rng
        self._delayed: Dict[int, List[Message]] = {}
        self._channels: Dict[Tuple[int, int], _LinkChannel] = {}
        self._crashed: Dict[int, List[CrashSpec]] = {}
        for spec in plan.crashes:
            self._crashed.setdefault(int(spec.node), []).append(spec)
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0

    def is_down(self, node: int, round_no: int) -> bool:
        """True when ``node`` is crashed during ``round_no``."""
        return any(s.down_at(round_no) for s in self._crashed.get(node, ()))

    def has_pending(self) -> bool:
        """True while delayed messages are still buffered for the future."""
        return bool(self._delayed)

    def deliveries(self, inbox: Sequence[Message], round_no: int) -> List[Message]:
        """Messages arriving at ``round_no`` after fault processing.

        Applies, per message and in order: recipient-crash drop, loss
        (uniform / per-link / burst), duplication, and delay.  Delayed
        messages are buffered internally and returned merged -- ahead of
        the round's fresh traffic -- once their delivery round comes up.
        Drop/duplicate/delay counts accumulate on the injector.
        """
        delivered: List[Message] = []
        # Delayed messages already survived loss/duplication when first
        # processed; at their due round only the crash check re-applies
        # (the recipient may have gone down while the message was in flight).
        for msg in self._delayed.pop(round_no, []):
            if self.is_down(msg.recipient, round_no):
                self.messages_dropped += 1
                continue
            delivered.append(msg)
        for msg in inbox:
            if self.is_down(msg.recipient, round_no):
                self.messages_dropped += 1
                continue
            if self._rng.uniform() < self._loss_for(msg, round_no):
                self.messages_dropped += 1
                continue
            copies = 1
            if (
                self.plan.duplicate_rate > 0.0
                and self._rng.uniform() < self.plan.duplicate_rate
            ):
                copies = 2
                self.messages_duplicated += 1
            delay = self.plan.delay
            if delay is not None and self._rng.uniform() < delay.rate:
                extra = int(self._rng.integers(1, delay.max_delay + 1))
                self.messages_delayed += 1
                bucket = self._delayed.setdefault(round_no + extra, [])
                bucket.extend([msg] * copies)
                continue
            delivered.extend([msg] * copies)
        return delivered

    def _loss_for(self, msg: Message, round_no: int) -> float:
        link = (msg.sender, msg.recipient)
        base = self.plan.link_loss.get(link, self.plan.loss_rate)
        if self.plan.burst is None:
            return base
        channel = self._channels.get(link)
        if channel is None:
            channel = self._channels[link] = _LinkChannel()
        burst = channel.loss_at(round_no, self.plan.burst, self._rng)
        # Independent drop chances compose: survive both to get through.
        return 1.0 - (1.0 - base) * (1.0 - burst)
