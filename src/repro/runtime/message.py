"""Message record for the synchronous simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """A one-hop message in flight.

    Attributes
    ----------
    sender:
        Originating node ID.
    recipient:
        Destination node ID (always a one-hop neighbor of the sender).
    payload:
        Arbitrary protocol data.  Payloads should be small immutable
        values (tuples, ints) -- the simulator counts every message, and
        the per-protocol payload sizes are part of the cost story.
    round_sent:
        The round in which the message was emitted; it is delivered at
        ``round_sent + 1``.
    """

    sender: int
    recipient: int
    payload: Any
    round_sent: int
