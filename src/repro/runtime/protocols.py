"""Message-level protocols for the paper's localized building blocks.

Besides the paper's protocols (TTL flood, min-label grouping, Voronoi
cells, landmark election) this module provides *reliable-delivery
primitives* for lossy channels: :class:`ReliableProtocol` wraps any inner
protocol with per-link idempotent dedup plus ack/retransmit under a
bounded :class:`RetryPolicy`, and :func:`reliable_stats` aggregates the
retry-budget observables from a finished run.  The ``run_*_distributed``
drivers accept an optional :class:`repro.runtime.faults.FaultPlan` and
retry policy so every phase can be exercised under injected faults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.runtime.faults import FaultPlan
from repro.runtime.simulator import NodeContext, Protocol, SimulationResult, Simulator


class TTLFloodProtocol(Protocol):
    """IFF's local flood (Sec. II-B).

    Every participant originates one flooding packet with TTL ``ttl``;
    packets are re-broadcast with a decremented TTL whenever a node hears
    a given originator with *more* residual TTL than any earlier copy.  On
    quiescence each node's ``state["heard"]`` holds the set of distinct
    originators it received (itself included), i.e. exactly the
    participants within ``ttl`` hops in the participant-induced subgraph
    -- the count IFF compares against ``theta``.

    Tracking the best residual TTL per originator (``state["ttls"]``)
    instead of a first-arrival-wins bit makes the outcome a monotone fixed
    point, independent of message ordering: under synchronous lossless
    delivery the first copy always carries the maximal TTL so behaviour
    (and message counts) are unchanged, while under fault-injected delay
    or retransmission a late shortest-path copy still extends the flood
    instead of being swallowed by an earlier long-path arrival.
    """

    def __init__(self, ttl: int):
        if ttl < 1:
            raise ValueError("ttl must be at least 1")
        self.ttl = ttl

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["heard"] = {ctx.node}
        ctx.state["ttls"] = {ctx.node: self.ttl}
        ctx.broadcast((ctx.node, self.ttl))

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        origin, ttl = payload
        ttls: Dict[int, int] = ctx.state["ttls"]
        if ttls.get(origin, 0) >= ttl:
            return
        ttls[origin] = ttl
        ctx.state["heard"].add(origin)
        if ttl > 1:
            ctx.broadcast((origin, ttl - 1))


class MinLabelProtocol(Protocol):
    """Boundary grouping by min-ID label propagation.

    Each participant starts with its own ID as label and adopts (and
    re-broadcasts) any smaller label it hears.  On quiescence
    ``state["label"]`` is the smallest node ID of the participant's
    connected component -- nodes sharing a label share a boundary.
    """

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["label"] = ctx.node
        ctx.broadcast(ctx.node)

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        label = int(payload)
        if label < ctx.state["label"]:
            ctx.state["label"] = label
            ctx.broadcast(label)


class VoronoiCellProtocol(Protocol):
    """Step I's closest-landmark association (combinatorial Voronoi cells).

    Landmarks start with label ``(0, self)``; every node adopts the
    lexicographically smallest ``(hops, landmark)`` it can prove, which is
    exactly "closest landmark, smallest ID as tiebreaker".  On quiescence
    ``state["cell"]`` holds the owning landmark (None for unreachable
    nodes, which cannot happen inside one connected group).
    """

    def __init__(self, landmarks: Iterable[int]):
        self.landmarks = set(int(l) for l in landmarks)

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.node in self.landmarks:
            ctx.state["best"] = (0, ctx.node)
            ctx.broadcast((0, ctx.node))
        else:
            ctx.state["best"] = None

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        dist, landmark = payload
        candidate = (dist + 1, landmark)
        best = ctx.state["best"]
        if best is None or candidate < best:
            ctx.state["best"] = candidate
            ctx.broadcast(candidate)

    def on_finish(self, ctx: NodeContext) -> None:
        best = ctx.state["best"]
        ctx.state["cell"] = best[1] if best is not None else None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded ack/retransmit parameters for :class:`ReliableProtocol`.

    Attributes
    ----------
    max_retries:
        Retransmissions allowed per (destination, message) after the
        initial send; the total transmission budget is ``max_retries + 1``.
        At per-attempt loss ``p`` the residual failure probability is
        ``p ** (max_retries + 1)`` (1e-6 at 10% loss with the default 5).
    rto:
        Base retransmission timeout in rounds.  The synchronous round-trip
        is exactly 2 rounds (data out, ack back), so the default never
        retransmits a message whose ack is still legitimately in flight.
    rto_backoff:
        Multiplicative backoff applied per retransmission of the *same*
        message: the r-th retransmission waits ``rto * rto_backoff**r``
        rounds (rounded up), capped at ``rto_cap``.  The default 1.0 keeps
        the legacy fixed-RTO behaviour.  Backoff spaces retries out on
        persistently bad links, trading latency for less retry traffic.
    rto_cap:
        Upper bound (in rounds) on any backed-off timeout; ignored when
        ``rto_backoff`` is 1.0.
    """

    max_retries: int = 5
    rto: int = 2
    rto_backoff: float = 1.0
    rto_cap: int = 64

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.rto < 1:
            raise ValueError("rto must be at least 1 round")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be at least 1.0")
        if self.rto_cap < self.rto:
            raise ValueError("rto_cap must be at least rto")

    def timeout_for(self, retries_used: int) -> int:
        """Rounds to wait before the next retransmission of one message.

        ``retries_used`` is how many retransmissions the message has
        already consumed (0 before the first one).
        """
        if self.rto_backoff == 1.0:  # lint: allow[FLT009] -- 1.0 is the exact config sentinel for "no backoff", not a computed float
            return self.rto
        scaled = self.rto * self.rto_backoff**retries_used
        return min(self.rto_cap, int(math.ceil(scaled)))


@dataclass(frozen=True)
class ReliableStats:
    """Aggregate retry-budget observables of one reliable run."""

    retransmissions: int
    gave_up: int
    duplicates_suppressed: int
    acks_sent: int


#: Reserved key in ``ctx.state`` for the reliable layer's bookkeeping.
RELIABLE_STATE_KEY = "_reliable"

_DATA = "data"
_ACK = "ack"


class _ReliableContext:
    """The :class:`NodeContext` facade handed to the inner protocol.

    Reads (``node``, ``neighbors``, ``state``) pass through; ``send`` and
    ``broadcast`` are rerouted through the reliable channel so the inner
    protocol stays oblivious to sequencing, acks, and retransmissions.
    """

    __slots__ = ("_ctx", "_proto")

    def __init__(self, ctx: NodeContext, proto: "ReliableProtocol"):
        self._ctx = ctx
        self._proto = proto

    @property
    def node(self) -> int:
        return self._ctx.node

    @property
    def neighbors(self) -> List[int]:
        return self._ctx.neighbors

    @property
    def state(self) -> Dict[str, Any]:
        return self._ctx.state

    def send(self, to: int, payload: Any) -> None:
        self._proto._reliable_send(self._ctx, to, payload)

    def broadcast(self, payload: Any) -> None:
        for nbr in self._ctx.neighbors:
            self._proto._reliable_send(self._ctx, nbr, payload)

    def set_timer(self, delay: int) -> None:
        self._ctx.set_timer(delay)


class ReliableProtocol(Protocol):
    """Loss tolerance for any inner protocol: dedup + ack/retransmit.

    Every application message is wrapped as ``(data, seq, payload)`` and
    acknowledged per hop with ``(ack, seq)``.  The sender retransmits an
    unacknowledged message every ``rto`` rounds up to ``max_retries``
    times; the receiver deduplicates by ``(sender, seq)`` so retransmits
    and channel-duplicated copies deliver exactly once to the inner
    protocol.  A message whose every transmission is lost is abandoned
    after the budget (counted in ``gave_up``) -- delivery is *reliable up
    to the retry budget*, not guaranteed.

    Per-node bookkeeping lives in ``ctx.state["_reliable"]``; the inner
    protocol keeps using its own keys in the same state dict.
    """

    def __init__(self, inner: Protocol, policy: Optional[RetryPolicy] = None):
        self.inner = inner
        # Per-instance default: a module-level shared default instance
        # would let one protocol's policy alias another's (harmless today
        # because RetryPolicy is frozen, but a refactor away from a bug).
        self.policy = policy if policy is not None else RetryPolicy()

    def _rel(self, ctx: NodeContext) -> Dict[str, Any]:
        return ctx.state[RELIABLE_STATE_KEY]

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state[RELIABLE_STATE_KEY] = {
            "next_seq": 0,
            # (to, seq) -> [payload, retries_used, last_sent_round]
            "pending": {},
            "seen": set(),
            "retransmissions": 0,
            "gave_up": 0,
            "duplicates_suppressed": 0,
            "acks_sent": 0,
        }
        self.inner.on_start(_ReliableContext(ctx, self))

    def _reliable_send(self, ctx: NodeContext, to: int, payload: Any) -> None:
        rel = self._rel(ctx)
        seq = rel["next_seq"]
        rel["next_seq"] = seq + 1
        rel["pending"][(to, seq)] = [payload, 0, ctx._round]
        ctx.send(to, (_DATA, seq, payload))
        ctx.set_timer(self.policy.timeout_for(0))

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        rel = self._rel(ctx)
        kind, seq = payload[0], payload[1]
        if kind == _ACK:
            rel["pending"].pop((sender, seq), None)
            return
        # Data: always re-ack (the previous ack may have been lost), but
        # deliver to the inner protocol at most once per (sender, seq).
        ctx.send(sender, (_ACK, seq))
        rel["acks_sent"] += 1
        key = (sender, seq)
        if key in rel["seen"]:
            rel["duplicates_suppressed"] += 1
            return
        rel["seen"].add(key)
        self.inner.on_message(_ReliableContext(ctx, self), sender, payload[2])

    def on_timer(self, ctx: NodeContext) -> None:
        rel = self._rel(ctx)
        pending = rel["pending"]
        now = ctx._round
        min_due: Optional[int] = None
        for key in list(pending):
            entry = pending[key]
            timeout = self.policy.timeout_for(entry[1])
            if now - entry[2] < timeout:
                due = entry[2] + timeout - now
                min_due = due if min_due is None else min(min_due, due)
                continue
            if entry[1] >= self.policy.max_retries:
                del pending[key]
                rel["gave_up"] += 1
                continue
            entry[1] += 1
            entry[2] = now
            rel["retransmissions"] += 1
            ctx.send(key[0], (_DATA, key[1], entry[0]))
            due = self.policy.timeout_for(entry[1])
            min_due = due if min_due is None else min(min_due, due)
        if pending:
            if self.policy.rto_backoff == 1.0:  # lint: allow[FLT009] -- exact config sentinel for the legacy fixed-RTO cadence
                # Legacy fixed cadence, kept bit-for-bit so pinned
                # robustness baselines are unaffected by the backoff knob.
                ctx.set_timer(self.policy.rto)
            else:
                ctx.set_timer(max(1, min_due if min_due is not None else self.policy.rto))

    def on_finish(self, ctx: NodeContext) -> None:
        self.inner.on_finish(_ReliableContext(ctx, self))


def reliable_stats(result: SimulationResult) -> ReliableStats:
    """Sum the per-node retry-budget observables of a reliable run."""
    totals = {
        "retransmissions": 0,
        "gave_up": 0,
        "duplicates_suppressed": 0,
        "acks_sent": 0,
    }
    for state in result.states.values():
        rel = state.get(RELIABLE_STATE_KEY)
        if rel is None:
            continue
        for field_name in totals:
            totals[field_name] += rel[field_name]
    return ReliableStats(**totals)


def _maybe_reliable(
    protocol: Protocol, retry_policy: Optional[RetryPolicy]
) -> Protocol:
    return (
        protocol
        if retry_policy is None
        else ReliableProtocol(protocol, retry_policy)
    )


class _BoundedFloodProtocol(Protocol):
    """Internal: flood (origin, hops) up to a hop bound from given sources.

    Used by the phased landmark election: after quiescence every node's
    ``state["dist"]`` maps each source within the bound to its hop
    distance.
    """

    def __init__(self, sources: Set[int], max_hops: int):
        self.sources = sources
        self.max_hops = max_hops

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["dist"] = {}
        if ctx.node in self.sources:
            ctx.state["dist"][ctx.node] = 0
            if self.max_hops >= 1:
                ctx.broadcast((ctx.node, 1))

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        origin, hops = payload
        dist: Dict[int, int] = ctx.state["dist"]
        if origin in dist and dist[origin] <= hops:
            return
        dist[origin] = hops
        if hops < self.max_hops:
            ctx.broadcast((origin, hops + 1))


def distributed_landmark_election(
    graph: NetworkGraph,
    group: Iterable[int],
    k: int,
    *,
    max_phases: int = 10_000,
) -> Tuple[List[int], int]:
    """Phased k-hop MIS election over the boundary subgraph.

    In each phase every *undecided* node floods its ID ``k - 1`` hops
    through the group; a node that hears no smaller undecided ID within
    ``k - 1`` hops declares itself a landmark, and every undecided node
    within ``k - 1`` hops of a new landmark becomes a decided non-landmark.
    Phases repeat until all nodes are decided.  The result equals the
    sequential greedy election of
    :func:`repro.surface.landmarks.elect_landmarks`.

    Returns
    -------
    (landmarks, messages)
        Sorted landmark IDs and the total message count across phases.
    """
    members = set(int(g) for g in group)
    undecided: Set[int] = set(members)
    landmarks: Set[int] = set()
    total_messages = 0
    for _ in range(max_phases):
        if not undecided:
            break
        protocol = _BoundedFloodProtocol(set(undecided), max_hops=k - 1)
        result = Simulator(graph, participants=members).run(protocol)
        total_messages += result.messages_sent
        new_landmarks = set()
        for node in undecided:
            dist = result.states[node]["dist"]
            heard_smaller = any(
                other < node for other in dist if other in undecided and other != node
            )
            if not heard_smaller:
                new_landmarks.add(node)
        landmarks.update(new_landmarks)
        # Suppress every undecided node within k-1 hops of a new landmark.
        suppressed = set()
        for node in undecided:
            dist = result.states[node]["dist"]
            if node in new_landmarks:
                suppressed.add(node)
            elif any(lm in dist for lm in new_landmarks):  # lint: allow[DET007] -- any() over membership tests is commutative; order cannot change the verdict
                suppressed.add(node)
        undecided -= suppressed
    return sorted(landmarks), total_messages


def run_iff_distributed(
    graph: NetworkGraph,
    candidates: Iterable[int],
    theta: int,
    ttl: int,
    *,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    rng: Optional[np.random.Generator] = None,
    max_rounds: int = 10_000,
) -> Tuple[Set[int], SimulationResult]:
    """IFF as an actual protocol run (message-level Sec. II-B).

    With a ``fault_plan`` the flood runs over the faulty channel; with a
    ``retry_policy`` each hop additionally runs the
    :class:`ReliableProtocol` ack/retransmit wrapper.  Nodes that never
    ran (crashed from round 0) have no heard-set and cannot survive the
    ``theta`` filter.  Returns the surviving candidate set plus the raw
    simulation result (for message accounting).
    """
    candidate_set = set(int(c) for c in candidates)
    sim = Simulator(
        graph, participants=candidate_set, fault_plan=fault_plan, rng=rng
    )
    result = sim.run(_maybe_reliable(TTLFloodProtocol(ttl), retry_policy),
                     max_rounds=max_rounds)
    survivors = {
        node
        for node, state in result.states.items()
        if len(state.get("heard", ())) >= theta
    }
    return survivors, result


def run_grouping_distributed(
    graph: NetworkGraph,
    boundary: Iterable[int],
    *,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    rng: Optional[np.random.Generator] = None,
    max_rounds: int = 10_000,
) -> Tuple[Dict[int, int], SimulationResult]:
    """Grouping as min-label propagation; returns node -> group label.

    Accepts the same fault/retry knobs as :func:`run_iff_distributed`.
    Nodes that never ran (crashed from round 0) carry no label and are
    omitted from the returned mapping.
    """
    boundary_set = set(int(b) for b in boundary)
    sim = Simulator(
        graph, participants=boundary_set, fault_plan=fault_plan, rng=rng
    )
    result = sim.run(_maybe_reliable(MinLabelProtocol(), retry_policy),
                     max_rounds=max_rounds)
    labels = {
        node: state["label"]
        for node, state in result.states.items()
        if "label" in state
    }
    return labels, result


def run_voronoi_distributed(
    graph: NetworkGraph,
    group: Iterable[int],
    landmarks: Iterable[int],
) -> Tuple[Dict[int, Optional[int]], SimulationResult]:
    """Voronoi cells as a protocol run; returns node -> landmark."""
    members = set(int(g) for g in group)
    sim = Simulator(graph, participants=members)
    result = sim.run(VoronoiCellProtocol(landmarks))
    cells = {node: state["cell"] for node, state in result.states.items()}
    return cells, result
