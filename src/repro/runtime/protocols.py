"""Message-level protocols for the paper's localized building blocks."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.runtime.simulator import NodeContext, Protocol, SimulationResult, Simulator


class TTLFloodProtocol(Protocol):
    """IFF's local flood (Sec. II-B).

    Every participant originates one flooding packet with TTL ``ttl``;
    packets are re-broadcast with a decremented TTL the first time a node
    hears a given originator.  On quiescence each node's ``state["heard"]``
    holds the set of distinct originators it received (itself included),
    i.e. exactly the participants within ``ttl`` hops in the participant-
    induced subgraph -- the count IFF compares against ``theta``.
    """

    def __init__(self, ttl: int):
        if ttl < 1:
            raise ValueError("ttl must be at least 1")
        self.ttl = ttl

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["heard"] = {ctx.node}
        ctx.broadcast((ctx.node, self.ttl))

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        origin, ttl = payload
        heard: Set[int] = ctx.state["heard"]
        if origin in heard:
            return
        heard.add(origin)
        if ttl > 1:
            ctx.broadcast((origin, ttl - 1))


class MinLabelProtocol(Protocol):
    """Boundary grouping by min-ID label propagation.

    Each participant starts with its own ID as label and adopts (and
    re-broadcasts) any smaller label it hears.  On quiescence
    ``state["label"]`` is the smallest node ID of the participant's
    connected component -- nodes sharing a label share a boundary.
    """

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["label"] = ctx.node
        ctx.broadcast(ctx.node)

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        label = int(payload)
        if label < ctx.state["label"]:
            ctx.state["label"] = label
            ctx.broadcast(label)


class VoronoiCellProtocol(Protocol):
    """Step I's closest-landmark association (combinatorial Voronoi cells).

    Landmarks start with label ``(0, self)``; every node adopts the
    lexicographically smallest ``(hops, landmark)`` it can prove, which is
    exactly "closest landmark, smallest ID as tiebreaker".  On quiescence
    ``state["cell"]`` holds the owning landmark (None for unreachable
    nodes, which cannot happen inside one connected group).
    """

    def __init__(self, landmarks: Iterable[int]):
        self.landmarks = set(int(l) for l in landmarks)

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.node in self.landmarks:
            ctx.state["best"] = (0, ctx.node)
            ctx.broadcast((0, ctx.node))
        else:
            ctx.state["best"] = None

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        dist, landmark = payload
        candidate = (dist + 1, landmark)
        best = ctx.state["best"]
        if best is None or candidate < best:
            ctx.state["best"] = candidate
            ctx.broadcast(candidate)

    def on_finish(self, ctx: NodeContext) -> None:
        best = ctx.state["best"]
        ctx.state["cell"] = best[1] if best is not None else None


class _BoundedFloodProtocol(Protocol):
    """Internal: flood (origin, hops) up to a hop bound from given sources.

    Used by the phased landmark election: after quiescence every node's
    ``state["dist"]`` maps each source within the bound to its hop
    distance.
    """

    def __init__(self, sources: Set[int], max_hops: int):
        self.sources = sources
        self.max_hops = max_hops

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["dist"] = {}
        if ctx.node in self.sources:
            ctx.state["dist"][ctx.node] = 0
            if self.max_hops >= 1:
                ctx.broadcast((ctx.node, 1))

    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        origin, hops = payload
        dist: Dict[int, int] = ctx.state["dist"]
        if origin in dist and dist[origin] <= hops:
            return
        dist[origin] = hops
        if hops < self.max_hops:
            ctx.broadcast((origin, hops + 1))


def distributed_landmark_election(
    graph: NetworkGraph,
    group: Iterable[int],
    k: int,
    *,
    max_phases: int = 10_000,
) -> Tuple[List[int], int]:
    """Phased k-hop MIS election over the boundary subgraph.

    In each phase every *undecided* node floods its ID ``k - 1`` hops
    through the group; a node that hears no smaller undecided ID within
    ``k - 1`` hops declares itself a landmark, and every undecided node
    within ``k - 1`` hops of a new landmark becomes a decided non-landmark.
    Phases repeat until all nodes are decided.  The result equals the
    sequential greedy election of
    :func:`repro.surface.landmarks.elect_landmarks`.

    Returns
    -------
    (landmarks, messages)
        Sorted landmark IDs and the total message count across phases.
    """
    members = set(int(g) for g in group)
    undecided: Set[int] = set(members)
    landmarks: Set[int] = set()
    total_messages = 0
    for _ in range(max_phases):
        if not undecided:
            break
        protocol = _BoundedFloodProtocol(set(undecided), max_hops=k - 1)
        result = Simulator(graph, participants=members).run(protocol)
        total_messages += result.messages_sent
        new_landmarks = set()
        for node in undecided:
            dist = result.states[node]["dist"]
            heard_smaller = any(
                other < node for other in dist if other in undecided and other != node
            )
            if not heard_smaller:
                new_landmarks.add(node)
        landmarks.update(new_landmarks)
        # Suppress every undecided node within k-1 hops of a new landmark.
        suppressed = set()
        for node in undecided:
            dist = result.states[node]["dist"]
            if node in new_landmarks:
                suppressed.add(node)
            elif any(lm in dist for lm in new_landmarks):
                suppressed.add(node)
        undecided -= suppressed
    return sorted(landmarks), total_messages


def run_iff_distributed(
    graph: NetworkGraph,
    candidates: Iterable[int],
    theta: int,
    ttl: int,
) -> Tuple[Set[int], SimulationResult]:
    """IFF as an actual protocol run (message-level Sec. II-B).

    Returns the surviving candidate set plus the raw simulation result
    (for message accounting).
    """
    candidate_set = set(int(c) for c in candidates)
    sim = Simulator(graph, participants=candidate_set)
    result = sim.run(TTLFloodProtocol(ttl))
    survivors = {
        node
        for node, state in result.states.items()
        if len(state["heard"]) >= theta
    }
    return survivors, result


def run_grouping_distributed(
    graph: NetworkGraph,
    boundary: Iterable[int],
) -> Tuple[Dict[int, int], SimulationResult]:
    """Grouping as min-label propagation; returns node -> group label."""
    boundary_set = set(int(b) for b in boundary)
    sim = Simulator(graph, participants=boundary_set)
    result = sim.run(MinLabelProtocol())
    labels = {node: state["label"] for node, state in result.states.items()}
    return labels, result


def run_voronoi_distributed(
    graph: NetworkGraph,
    group: Iterable[int],
    landmarks: Iterable[int],
) -> Tuple[Dict[int, Optional[int]], SimulationResult]:
    """Voronoi cells as a protocol run; returns node -> landmark."""
    members = set(int(g) for g in group)
    sim = Simulator(graph, participants=members)
    result = sim.run(VoronoiCellProtocol(landmarks))
    cells = {node: state["cell"] for node, state in result.states.items()}
    return cells, result
