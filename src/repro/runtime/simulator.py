"""Round-based synchronous message-passing simulator.

Execution model: in round 0 every participating node runs
``Protocol.on_start``; messages emitted in round ``t`` are delivered at the
start of round ``t + 1``, when each recipient handles them one at a time
via ``Protocol.on_message``.  The simulation ends when no messages are in
flight (quiescence) or a round cap is hit.

The simulator optionally restricts participation to a node subset, in which
case messages to non-participants are silently dropped -- this models the
paper's floods that are "forwarded by other boundary nodes but not
non-boundary nodes" without the protocol code having to know.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.network.graph import NetworkGraph
from repro.runtime.message import Message


class NodeContext:
    """Per-node facilities handed to protocol callbacks.

    Attributes
    ----------
    node:
        This node's ID.
    neighbors:
        IDs of the node's participating one-hop neighbors.
    state:
        The node's private mutable state dict; protocols keep everything
        here so that a single protocol instance can serve all nodes.
    """

    def __init__(self, node: int, neighbors: List[int], outbox: List[Message]):
        self.node = node
        self.neighbors = neighbors
        self.state: Dict[str, Any] = {}
        self._outbox = outbox
        self._round = 0

    def send(self, to: int, payload: Any) -> None:
        """Queue a message to one neighbor (delivered next round)."""
        if to not in self.neighbors:
            raise ValueError(
                f"node {self.node} cannot send to non-neighbor {to}"
            )
        self._outbox.append(Message(self.node, to, payload, self._round))

    def broadcast(self, payload: Any) -> None:
        """Queue the same message to every participating neighbor."""
        for nbr in self.neighbors:
            self._outbox.append(Message(self.node, nbr, payload, self._round))


class Protocol(ABC):
    """A distributed algorithm expressed as per-node event handlers."""

    @abstractmethod
    def on_start(self, ctx: NodeContext) -> None:
        """Round-0 initialization at one node."""

    @abstractmethod
    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        """Handle one delivered message at one node."""

    def on_finish(self, ctx: NodeContext) -> None:
        """Optional post-quiescence hook at one node."""


@dataclass
class SimulationResult:
    """Outcome of one protocol run.

    Attributes
    ----------
    states:
        ``node -> final state dict``.
    rounds:
        Number of delivery rounds executed.
    messages_sent:
        Total messages queued (the localized-cost observable).
    quiesced:
        True when the run ended by quiescence rather than the round cap.
    """

    states: Dict[int, Dict[str, Any]]
    rounds: int
    messages_sent: int
    quiesced: bool


class Simulator:
    """Synchronous executor of a :class:`Protocol` over a network graph.

    Parameters
    ----------
    graph:
        Connectivity; messages travel along its edges only.
    participants:
        Node subset running the protocol (default: all nodes).  Messages
        addressed to non-participants are dropped on delivery.
    loss_rate:
        Independent per-message drop probability in ``[0, 1]`` -- failure
        injection for robustness tests.  Dropped messages still count in
        ``messages_sent`` (the sender paid for them).
    rng:
        Randomness source for message loss; required semantics only when
        ``loss_rate > 0`` (defaults to a fresh seed-0 generator).
    """

    def __init__(
        self,
        graph: NetworkGraph,
        participants: Optional[Iterable[int]] = None,
        *,
        loss_rate: float = 0.0,
        rng=None,
    ):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self.graph = graph
        self.loss_rate = float(loss_rate)
        self._rng = rng
        if participants is None:
            self._participants: Set[int] = set(range(graph.n_nodes))
        else:
            self._participants = set(int(p) for p in participants)

    def run(self, protocol: Protocol, *, max_rounds: int = 10_000) -> SimulationResult:
        """Execute ``protocol`` to quiescence (or the round cap)."""
        outbox: List[Message] = []
        contexts: Dict[int, NodeContext] = {}
        for node in sorted(self._participants):
            neighbor_ids = [
                int(v)
                for v in self.graph.neighbors(node)
                if int(v) in self._participants
            ]
            contexts[node] = NodeContext(node, neighbor_ids, outbox)

        messages_sent = 0
        for node in sorted(contexts):
            protocol.on_start(contexts[node])
        rounds = 0
        quiesced = False
        while rounds < max_rounds:
            if not outbox:
                quiesced = True
                break
            inbox = outbox
            messages_sent += len(inbox)
            outbox = []
            rounds += 1
            for ctx in contexts.values():
                ctx._outbox = outbox
                ctx._round = rounds
            if self.loss_rate > 0.0:
                if self._rng is None:
                    import numpy as np

                    self._rng = np.random.default_rng(0)
                keep = self._rng.uniform(size=len(inbox)) >= self.loss_rate
                inbox = [m for m, k in zip(inbox, keep) if k]
            # Deterministic delivery order: by (recipient, sender, queue pos).
            for msg in sorted(
                inbox, key=lambda m: (m.recipient, m.sender)
            ):
                ctx = contexts.get(msg.recipient)
                if ctx is None:
                    continue
                protocol.on_message(ctx, msg.sender, msg.payload)
        else:
            quiesced = not outbox

        for node in sorted(contexts):
            protocol.on_finish(contexts[node])
        return SimulationResult(
            states={node: ctx.state for node, ctx in contexts.items()},
            rounds=rounds,
            messages_sent=messages_sent,
            quiesced=quiesced,
        )
