"""Round-based synchronous message-passing simulator.

Execution model: in round 0 every participating node runs
``Protocol.on_start``; messages emitted in round ``t`` are delivered at the
start of round ``t + 1``, when each recipient handles them one at a time
via ``Protocol.on_message``.  After deliveries, timers scheduled for the
round fire via ``Protocol.on_timer``.  The simulation ends when nothing is
left in flight -- no queued messages, no pending timers, no fault-delayed
messages (quiescence) -- or a round cap is hit, in which case a
:class:`NonQuiescentTermination` warning is emitted.

The simulator optionally restricts participation to a node subset, in which
case messages to non-participants are silently dropped -- this models the
paper's floods that are "forwarded by other boundary nodes but not
non-boundary nodes" without the protocol code having to know.

Failure injection is declarative: pass a :class:`repro.runtime.faults.FaultPlan`
(message loss, burst loss, duplication, delay/reordering, asymmetric links,
node crash schedules) and a seeded generator; identical plan + seed yields
an identical :class:`SimulationResult`.  The legacy ``loss_rate`` float is
kept as a shim for uniform loss.
"""

from __future__ import annotations

import heapq
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.network.graph import NetworkGraph
from repro.observability.tracer import ensure_tracer
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.message import Message


class NonQuiescentTermination(RuntimeWarning):
    """The round cap was hit with messages or timers still pending."""


class NodeContext:
    """Per-node facilities handed to protocol callbacks.

    Attributes
    ----------
    node:
        This node's ID.
    neighbors:
        IDs of the node's participating one-hop neighbors.
    state:
        The node's private mutable state dict; protocols keep everything
        here so that a single protocol instance can serve all nodes.
    """

    def __init__(self, node: int, neighbors: List[int], outbox: List[Message]):
        self.node = node
        self.neighbors = neighbors
        self.state: Dict[str, Any] = {}
        self._outbox = outbox
        self._round = 0
        self._timers: List[Tuple[int, int, int]] = []
        self._timer_seq = 0

    def send(self, to: int, payload: Any) -> None:
        """Queue a message to one neighbor (delivered next round)."""
        if to not in self.neighbors:
            raise ValueError(
                f"node {self.node} cannot send to non-neighbor {to}"
            )
        self._outbox.append(Message(self.node, to, payload, self._round))

    def broadcast(self, payload: Any) -> None:
        """Queue the same message to every participating neighbor."""
        for nbr in self.neighbors:
            self._outbox.append(Message(self.node, nbr, payload, self._round))

    def set_timer(self, delay: int) -> None:
        """Schedule ``on_timer`` at this node ``delay`` rounds from now.

        Timers keep the simulation alive: quiescence requires the timer
        queue to drain, so a protocol waiting on a retransmission timeout
        is never cut off early.  Timers cannot be cancelled -- a protocol
        with nothing left to do simply returns from ``on_timer`` without
        sending, and the run quiesces once the queue empties.
        """
        if delay < 1:
            raise ValueError("timer delay must be at least 1 round")
        self._timer_seq += 1
        heapq.heappush(
            self._timers, (self._round + delay, self._timer_seq, self.node)
        )


class Protocol(ABC):
    """A distributed algorithm expressed as per-node event handlers."""

    @abstractmethod
    def on_start(self, ctx: NodeContext) -> None:
        """Round-0 initialization at one node."""

    @abstractmethod
    def on_message(self, ctx: NodeContext, sender: int, payload: Any) -> None:
        """Handle one delivered message at one node."""

    def on_timer(self, ctx: NodeContext) -> None:
        """Handle one expired timer at one node (see ``set_timer``)."""

    def on_finish(self, ctx: NodeContext) -> None:
        """Optional post-quiescence hook at one node."""


@dataclass
class SimulationResult:
    """Outcome of one protocol run.

    Attributes
    ----------
    states:
        ``node -> final state dict``.
    rounds:
        Number of delivery rounds executed.
    messages_sent:
        Total messages queued (the localized-cost observable).
    quiesced:
        True when the run ended by quiescence rather than the round cap.
    messages_dropped:
        Messages removed by the fault model (loss, burst loss, crashes of
        the recipient).  Drops of messages addressed to non-participants
        are a modeling device, not a fault, and are not counted here.
    messages_duplicated:
        Extra copies injected by the duplication fault.
    timers_fired:
        ``on_timer`` callbacks executed (retry-machinery observable).
    """

    states: Dict[int, Dict[str, Any]]
    rounds: int
    messages_sent: int
    quiesced: bool
    messages_dropped: int = 0
    messages_duplicated: int = 0
    timers_fired: int = 0


class Simulator:
    """Synchronous executor of a :class:`Protocol` over a network graph.

    Parameters
    ----------
    graph:
        Connectivity; messages travel along its edges only.
    participants:
        Node subset running the protocol (default: all nodes).  Messages
        addressed to non-participants are dropped on delivery.
    loss_rate:
        Back-compat shim: an independent per-message drop probability in
        ``[0, 1]``, equivalent to ``fault_plan=FaultPlan(loss_rate=...)``.
        Mutually exclusive with ``fault_plan``.
    fault_plan:
        Declarative fault model (loss, bursts, duplication, delay,
        asymmetric links, crash schedules); see
        :class:`repro.runtime.faults.FaultPlan`.  Dropped messages still
        count in ``messages_sent`` (the sender paid for them).
    rng:
        Randomness source for fault injection; defaults to a seed-0
        generator so runs are reproducible out of the box.  Pass a fresh
        seeded generator per run to replay a specific schedule.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        participants: Optional[Iterable[int]] = None,
        *,
        loss_rate: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if fault_plan is not None and loss_rate > 0.0:
            raise ValueError("pass either loss_rate (legacy) or fault_plan, not both")
        self.graph = graph
        self.loss_rate = float(loss_rate)
        if fault_plan is None and loss_rate > 0.0:
            fault_plan = FaultPlan.uniform_loss(loss_rate)
        self.fault_plan = fault_plan
        self._rng = rng if rng is not None else np.random.default_rng(0)
        if participants is None:
            self._participants: Set[int] = set(range(graph.n_nodes))
        else:
            self._participants = set(int(p) for p in participants)

    def run(
        self,
        protocol: Protocol,
        *,
        max_rounds: int = 10_000,
        tracer=None,
    ) -> SimulationResult:
        """Execute ``protocol`` to quiescence (or the round cap).

        ``tracer`` (optional :class:`repro.observability.Tracer`) wraps the
        run in a ``simulator.run`` span recording the protocol name,
        participant count, and the round/message/timer counters of the
        returned :class:`SimulationResult`.
        """
        tracer = ensure_tracer(tracer)
        with tracer.span(
            "simulator.run",
            protocol=type(protocol).__name__,
            n_participants=len(self._participants),
            max_rounds=max_rounds,
            faulty=self.fault_plan is not None and not self.fault_plan.is_ideal,
        ) as span:
            result = self._run(protocol, max_rounds=max_rounds)
            if tracer.enabled:
                span.set("rounds", result.rounds)
                span.set("messages_sent", result.messages_sent)
                span.set("messages_dropped", result.messages_dropped)
                span.set("messages_duplicated", result.messages_duplicated)
                span.set("timers_fired", result.timers_fired)
                span.set("quiesced", result.quiesced)
        return result

    def _run(self, protocol: Protocol, *, max_rounds: int) -> SimulationResult:
        outbox: List[Message] = []
        contexts: Dict[int, NodeContext] = {}
        timers: List[Tuple[int, int, int]] = []
        for node in sorted(self._participants):
            neighbor_ids = [
                int(v)
                for v in self.graph.neighbors(node)
                if int(v) in self._participants
            ]
            ctx = NodeContext(node, neighbor_ids, outbox)
            ctx._timers = timers
            contexts[node] = ctx

        injector: Optional[FaultInjector] = None
        if self.fault_plan is not None and not self.fault_plan.is_ideal:
            injector = FaultInjector(self.fault_plan, self._rng)

        messages_sent = 0
        timers_fired = 0
        for node in sorted(contexts):
            if injector is not None and injector.is_down(node, 0):
                continue
            protocol.on_start(contexts[node])
        rounds = 0
        quiesced = False
        while rounds < max_rounds:
            pending_delayed = injector is not None and injector.has_pending()
            if not outbox and not timers and not pending_delayed:
                quiesced = True
                break
            inbox = outbox
            messages_sent += len(inbox)
            outbox = []
            rounds += 1
            for ctx in contexts.values():
                ctx._outbox = outbox
                ctx._round = rounds
            if injector is not None:
                inbox = injector.deliveries(inbox, rounds)
            # Deterministic delivery order: by (recipient, sender, queue
            # position) -- the index breaks ties between same-link copies.
            for _, msg in sorted(
                enumerate(inbox),
                key=lambda item: (item[1].recipient, item[1].sender, item[0]),
            ):
                ctx = contexts.get(msg.recipient)
                if ctx is None:
                    continue
                protocol.on_message(ctx, msg.sender, msg.payload)
            while timers and timers[0][0] <= rounds:
                _, _, node = heapq.heappop(timers)
                if injector is not None and injector.is_down(node, rounds):
                    continue
                timers_fired += 1
                protocol.on_timer(contexts[node])

        if not quiesced:
            # The cap may land exactly on the last productive round.
            pending_delayed = injector is not None and injector.has_pending()
            quiesced = not outbox and not timers and not pending_delayed
        if not quiesced:
            warnings.warn(
                f"simulation hit the round cap ({max_rounds}) before "
                f"quiescence: {len(outbox)} messages and {len(timers)} "
                "timers still pending",
                NonQuiescentTermination,
                stacklevel=2,
            )

        for node in sorted(contexts):
            protocol.on_finish(contexts[node])
        return SimulationResult(
            states={node: ctx.state for node, ctx in contexts.items()},
            rounds=rounds,
            messages_sent=messages_sent,
            quiesced=quiesced,
            messages_dropped=injector.messages_dropped if injector else 0,
            messages_duplicated=injector.messages_duplicated if injector else 0,
            timers_fired=timers_fired,
        )
