"""Fault-tolerant service layer: durable job queue, workers, budgets.

The layer turns the library's one-shot pipeline runs into a crash-safe
batch service: :mod:`repro.service.jobstore` is a file-backed durable
queue with a content-addressed result cache, :mod:`repro.service.worker`
is the lease-based polling worker that drives full detection runs
through it, and :mod:`repro.service.budgets` caps each attempt's wall
time and memory with a graceful-degradation ladder.  The ``repro-serve``
CLI (:mod:`repro.service.cli`) fronts all of it.  See
``docs/SERVICE.md`` for the lifecycle and determinism contracts.
"""

from repro.service.budgets import BudgetExceeded, JobBudget, enforce, peak_rss_mb
from repro.service.jobstore import (
    JOB_FORMAT_VERSION,
    JobRecord,
    JobSpec,
    JobStore,
    RetryBackoff,
)
from repro.service.worker import Worker, detector_config_for, execute_job

__all__ = [
    "JOB_FORMAT_VERSION",
    "BudgetExceeded",
    "JobBudget",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "RetryBackoff",
    "Worker",
    "detector_config_for",
    "enforce",
    "execute_job",
    "peak_rss_mb",
]
