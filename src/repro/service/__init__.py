"""Fault-tolerant service layer: durable job queue, workers, budgets.

The layer turns the library's one-shot pipeline runs into a crash-safe
batch service: :mod:`repro.service.jobstore` is a file-backed durable
queue with a content-addressed result cache, :mod:`repro.service.worker`
is the lease-based polling worker that drives full detection runs
through it, and :mod:`repro.service.budgets` caps each attempt's wall
time and memory with a graceful-degradation ladder.
:mod:`repro.service.campaign` layers the campaign manager on top --
declarative experiment sweeps whose cells are content-addressed jobs, so
campaigns are memoized and resumable for free (``repro-campaign``; see
``docs/CAMPAIGNS.md``).  The ``repro-serve`` CLI
(:mod:`repro.service.cli`) fronts the raw job store.  See
``docs/SERVICE.md`` for the lifecycle and determinism contracts.
"""

from repro.service.budgets import BudgetExceeded, JobBudget, enforce, peak_rss_mb
from repro.service.campaign import (
    CampaignIncomplete,
    CampaignReport,
    CampaignStatus,
    campaign_status,
    ensure_submitted,
    render_from_store,
    run_campaign,
)
from repro.service.jobstore import (
    JOB_FORMAT_VERSION,
    JobRecord,
    JobSpec,
    JobStore,
    RetryBackoff,
)
from repro.service.worker import Worker, detector_config_for, execute_job

__all__ = [
    "JOB_FORMAT_VERSION",
    "BudgetExceeded",
    "CampaignIncomplete",
    "CampaignReport",
    "CampaignStatus",
    "campaign_status",
    "ensure_submitted",
    "render_from_store",
    "run_campaign",
    "JobBudget",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "RetryBackoff",
    "Worker",
    "detector_config_for",
    "enforce",
    "execute_job",
    "peak_rss_mb",
]
