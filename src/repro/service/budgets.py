"""Per-job resource budgets and the graceful-degradation ladder.

A :class:`JobBudget` caps one job attempt's wall time and peak RSS.  The
enforcement contract is deliberately modest -- this is a *budget*, not a
sandbox:

* **Wall time** is enforced pre-emptively when possible: inside
  :func:`enforce` a ``SIGALRM`` interval timer interrupts the pipeline
  mid-computation and raises :class:`BudgetExceeded` (``kind
  "wall_time"``).  Signal delivery requires the main thread of the
  process (workers run jobs on their main thread, so this is the common
  case); elsewhere the breach is detected post-hoc at context exit from
  elapsed time.
* **Peak RSS** is checked post-hoc at context exit via
  ``resource.getrusage`` -- a cheap high-water-mark read, not a limit the
  kernel enforces mid-run.  Note the high-water mark is *per process and
  monotone*: once a worker process has breached, every later reading in
  that process stays above the mark.  The degradation ladder absorbs
  this: degraded attempts run unenforced.

**Degradation ladder.**  On the first breach the job is *not* failed: the
store requeues it immediately (no backoff -- the breach is a
deterministic property of the job, waiting changes nothing) flagged
``degraded``.  The degraded attempt runs a reduced pipeline (scalar
localization engine, ``workers=1``, surface construction skipped) with
budget enforcement off, and its completion is marked ``degraded`` rather
than ``failed``.  Degraded results never populate the result cache.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

try:
    import resource
except ImportError:  # non-POSIX: RSS budgets degrade to "unenforced"
    resource = None  # type: ignore[assignment]


class BudgetExceeded(RuntimeError):
    """A job attempt breached its budget.

    ``kind`` is ``"wall_time"`` or ``"peak_rss"``; ``limit`` and
    ``observed`` are in the budget's native unit (seconds / MB).
    """

    def __init__(self, kind: str, limit: float, observed: float):
        super().__init__(
            f"{kind} budget exceeded: observed {observed:.3g} > limit {limit:.3g}"
        )
        self.kind = kind
        self.limit = limit
        self.observed = observed


@dataclass(frozen=True)
class JobBudget:
    """Per-attempt resource caps; ``None`` disables a dimension."""

    wall_seconds: Optional[float] = None
    peak_rss_mb: Optional[float] = None

    def __post_init__(self):
        if self.wall_seconds is not None and self.wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if self.peak_rss_mb is not None and self.peak_rss_mb <= 0:
            raise ValueError("peak_rss_mb must be positive")

    @property
    def unlimited(self) -> bool:
        return self.wall_seconds is None and self.peak_rss_mb is None


def peak_rss_mb() -> Optional[float]:
    """Process-lifetime peak RSS in MB (None where unobservable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _alarm_usable() -> bool:
    """SIGALRM pre-emption needs the main thread (signal-module rule)."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def enforce(budget: JobBudget) -> Iterator[None]:
    """Run a job attempt under ``budget``; raises :class:`BudgetExceeded`.

    Wall breaches interrupt mid-run when SIGALRM is available (see module
    docstring), otherwise they surface at exit; RSS breaches always
    surface at exit.  The previous SIGALRM handler is restored on exit.
    """
    if budget.unlimited:
        yield
        return

    start = time.monotonic()
    use_alarm = budget.wall_seconds is not None and _alarm_usable()
    previous_handler = None
    if use_alarm:
        def _on_alarm(signum, frame):
            raise BudgetExceeded(
                "wall_time",
                budget.wall_seconds,
                time.monotonic() - start,
            )

        previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, budget.wall_seconds)
    try:
        yield
        if budget.wall_seconds is not None and not use_alarm:
            elapsed = time.monotonic() - start
            if elapsed > budget.wall_seconds:
                raise BudgetExceeded("wall_time", budget.wall_seconds, elapsed)
        if budget.peak_rss_mb is not None:
            observed = peak_rss_mb()
            if observed is not None and observed > budget.peak_rss_mb:
                raise BudgetExceeded("peak_rss", budget.peak_rss_mb, observed)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
