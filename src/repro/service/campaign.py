"""Campaign manager: memoized, resumable sweeps over the durable job store.

A campaign is a :class:`repro.evaluation.campaign.CampaignSpec` executed
through the PR-7 job service.  Each expanded cell becomes one
content-addressed :class:`repro.service.jobstore.JobSpec` (``kind`` +
``cell`` payload), which buys the campaign its two headline properties
for free:

* **Memoization** -- submit consults the store's content-hash result
  cache, so a cell whose ``(kind, params)`` already produced a result is
  born ``done`` without executing; re-running a campaign only computes
  missing cells.
* **Resumability** -- cells are matched to *existing* store jobs by cache
  key before anything is submitted.  An interrupted campaign (killed
  driver, dead worker) re-run against the same store adopts its previous
  jobs in whatever state they durably reached and just keeps draining.
  No separate manifest exists to corrupt: the job store *is* the
  campaign's progress record.

:func:`run_campaign` does submit -> drain -> render under one
``campaign.run`` span (``campaign.*`` counters land in the store's
metrics registry); :func:`campaign_status` reports done/queued/failed
counts per axis slice without executing anything.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.evaluation.campaign import (
    CampaignCell,
    CampaignSpec,
    expand,
    render_campaign_tables,
)
from repro.observability.metrics import record_campaign_report
from repro.observability.tracer import ensure_tracer
from repro.service.budgets import JobBudget
from repro.service.jobstore import (
    STATE_DEAD,
    STATE_DONE,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStore,
    RetryBackoff,
)
from repro.service.worker import Worker

__all__ = [
    "CampaignIncomplete",
    "CampaignReport",
    "CampaignStatus",
    "campaign_status",
    "cell_job_spec",
    "collect_results",
    "ensure_submitted",
    "render_from_store",
    "run_campaign",
]


class CampaignIncomplete(RuntimeError):
    """Raised when rendering is requested but some cells are not ``done``."""


def cell_job_spec(cell: CampaignCell) -> JobSpec:
    """The content-addressed job for one campaign cell.

    The detect-pipeline fields stay at their defaults; the cell's cache
    identity is exactly its ``(kind, params)`` payload.
    """
    return JobSpec(kind=cell.kind, cell=dict(cell.params))


def _existing_by_cache_key(store: JobStore) -> Dict[str, JobRecord]:
    """First job per cache key, in job-id order (the resume index)."""
    index: Dict[str, JobRecord] = {}
    for record in store.jobs():
        key = record.spec.cache_key()
        if key not in index:
            index[key] = record
    return index


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    n_cells: int
    #: Jobs newly created by this run (includes submit-time cache hits).
    submitted: int
    #: Pre-existing store jobs adopted by cache key (the resume path).
    reused: int
    #: Submitted jobs born ``done`` from the content-hash result cache.
    cache_hits: int
    #: Cells that were not terminal at submit time -- the work this run
    #: actually had to drain.  A fully memoized re-run has ``executed == 0``.
    executed: int
    done: int
    dead: int
    degraded: int
    job_ids: List[str] = field(default_factory=list)
    tables: Optional[str] = None


@dataclass
class CampaignStatus:
    """Progress snapshot: per-state counts overall and per axis slice."""

    spec: CampaignSpec
    cells: List[CampaignCell]
    #: Aligned with ``cells``; ``None`` marks a cell never yet submitted.
    records: List[Optional[JobRecord]]

    def state_of(self, position: int) -> str:
        record = self.records[position]
        return record.state if record is not None else "unsubmitted"

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for position in range(len(self.cells)):
            state = self.state_of(position)
            out[state] = out.get(state, 0) + 1
        return out

    def slice_counts(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """``axis -> value -> state -> count`` over every cell axis."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {}
        for position, cell in enumerate(self.cells):
            state = self.state_of(position)
            for axis, value in cell.axes.items():
                by_value = out.setdefault(axis, {})
                by_state = by_value.setdefault(str(value), {})
                by_state[state] = by_state.get(state, 0) + 1
        return out

    @property
    def complete(self) -> bool:
        return all(
            record is not None and record.state == STATE_DONE
            for record in self.records
        )


def campaign_status(store: JobStore, spec: CampaignSpec) -> CampaignStatus:
    """Snapshot campaign progress from the store without executing."""
    cells = expand(spec)
    index = _existing_by_cache_key(store)
    records = [index.get(cell_job_spec(cell).cache_key()) for cell in cells]
    return CampaignStatus(spec=spec, cells=cells, records=records)


def ensure_submitted(
    store: JobStore,
    spec: CampaignSpec,
    *,
    max_attempts: int = 3,
) -> Tuple[List[JobRecord], Dict[str, int]]:
    """Adopt-or-submit every cell; returns (records, submit counters).

    Existing store jobs are adopted by cache key (first job-id wins), so a
    re-run of an interrupted campaign picks up its previous jobs in place
    -- whatever durable state they reached -- instead of double-submitting.
    Only genuinely new cells hit :meth:`JobStore.submit` (where the result
    cache may still satisfy them instantly).
    """
    cells = expand(spec)
    index = _existing_by_cache_key(store)
    records: List[JobRecord] = []
    submitted = reused = cache_hits = 0
    for cell in cells:
        job_spec = cell_job_spec(cell)
        key = job_spec.cache_key()
        record = index.get(key)
        if record is None:
            record = store.submit(job_spec, max_attempts=max_attempts)
            index[key] = record
            submitted += 1
            if record.cache_hit:
                cache_hits += 1
        else:
            reused += 1
        records.append(record)
    counters = {
        "submitted": submitted,
        "reused": reused,
        "cache_hits": cache_hits,
    }
    return records, counters


def drain_campaign(
    store: JobStore,
    job_ids: List[str],
    *,
    workers: int = 1,
    lease_ttl: float = 30.0,
    poll_interval: float = 0.05,
    backoff: Optional[RetryBackoff] = None,
    budget: Optional[JobBudget] = None,
    trace_clock: str = "tick",
    worker_prefix: str = "campaign",
) -> None:
    """Run store workers until every campaign job is terminal.

    Workers exit when the queue looks idle, but a failed cell awaiting
    its retry-backoff window is *pending yet unclaimable* -- hence the
    outer loop: re-launch workers until all campaign jobs are ``done`` or
    ``dead``.  With ``workers > 1`` the passes run as threads; the
    store's file locks arbitrate claims exactly as they do for separate
    processes.
    """
    backoff = backoff if backoff is not None else RetryBackoff()
    budget = budget if budget is not None else JobBudget()
    generation = 0
    while True:
        pending = [
            job_id
            for job_id in job_ids
            if store.load(job_id).state not in TERMINAL_STATES
        ]
        if not pending:
            return
        worker_args = dict(
            lease_ttl=lease_ttl,
            poll_interval=poll_interval,
            backoff=backoff,
            budget=budget,
            trace_clock=trace_clock,
        )
        if workers <= 1:
            Worker(
                store, f"{worker_prefix}-g{generation}-w0", **worker_args
            ).run(exit_when_idle=True)
        else:
            threads = [
                threading.Thread(
                    target=Worker(
                        store, f"{worker_prefix}-g{generation}-w{i}", **worker_args
                    ).run,
                    kwargs={"exit_when_idle": True},
                )
                for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        generation += 1
        time.sleep(poll_interval)


def collect_results(
    store: JobStore, records: List[JobRecord]
) -> List[Optional[Dict[str, Any]]]:
    """Reload each record and return its result doc (``None`` if absent)."""
    return [store.load(record.job_id).result for record in records]


def render_from_store(store: JobStore, spec: CampaignSpec) -> str:
    """Render the campaign's tables from already-completed store jobs.

    Raises :class:`CampaignIncomplete` when any cell is missing or not
    ``done`` -- use :func:`run_campaign` (or more draining) first.
    """
    status = campaign_status(store, spec)
    if not status.complete:
        raise CampaignIncomplete(
            f"campaign {spec.name!r} is incomplete: {status.counts()}"
        )
    results = [record.result for record in status.records]
    return render_campaign_tables(spec, results)


def run_campaign(
    store: JobStore,
    spec: CampaignSpec,
    *,
    workers: int = 1,
    max_attempts: int = 3,
    lease_ttl: float = 30.0,
    poll_interval: float = 0.05,
    backoff: Optional[RetryBackoff] = None,
    budget: Optional[JobBudget] = None,
    trace_clock: str = "tick",
    tracer=None,
) -> CampaignReport:
    """Submit, drain, and aggregate one campaign; returns its report.

    Safe to invoke repeatedly against the same store: already-done cells
    are adopted (``executed == 0`` on a fully memoized re-run), partially
    complete campaigns resume, and the rendered tables are byte-identical
    across any interleaving of interruptions and worker counts.  Dead
    cells (attempts exhausted) leave ``tables`` unset; the counts in the
    report say so.
    """
    tracer = ensure_tracer(tracer)
    cells = expand(spec)
    with tracer.span(
        "campaign.run",
        campaign=spec.name,
        kind=spec.kind,
        spec_hash=spec.spec_hash()[:16],
        n_cells=len(cells),
        workers=workers,
    ) as run_span:
        with tracer.span("campaign.submit"):
            records, counters = ensure_submitted(
                store, spec, max_attempts=max_attempts
            )
        executed = sum(
            1 for record in records if record.state not in TERMINAL_STATES
        )
        with tracer.span("campaign.drain", n_pending=executed):
            if executed:
                drain_campaign(
                    store,
                    [record.job_id for record in records],
                    workers=workers,
                    lease_ttl=lease_ttl,
                    poll_interval=poll_interval,
                    backoff=backoff,
                    budget=budget,
                    trace_clock=trace_clock,
                )
        final = [store.load(record.job_id) for record in records]
        done = sum(1 for record in final if record.state == STATE_DONE)
        dead = sum(1 for record in final if record.state == STATE_DEAD)
        degraded = sum(1 for record in final if record.degraded)
        tables: Optional[str] = None
        if dead == 0:
            with tracer.span("campaign.render"):
                tables = render_campaign_tables(
                    spec, [record.result for record in final]
                )
        report = CampaignReport(
            spec=spec,
            n_cells=len(cells),
            submitted=counters["submitted"],
            reused=counters["reused"],
            cache_hits=counters["cache_hits"],
            executed=executed,
            done=done,
            dead=dead,
            degraded=degraded,
            job_ids=[record.job_id for record in final],
            tables=tables,
        )
        if tracer.enabled:
            run_span.set_many(
                {
                    "submitted": report.submitted,
                    "reused": report.reused,
                    "cache_hits": report.cache_hits,
                    "executed": report.executed,
                    "done": report.done,
                    "dead": report.dead,
                }
            )
    record_campaign_report(store.metrics, report)
    return report
