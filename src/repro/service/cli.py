"""``repro-serve`` -- CLI for the durable boundary-detection service.

Four subcommands over one store directory (``--root``):

* ``submit``  -- enqueue a pipeline job (deployment + detector knobs);
  a result-cache hit returns instantly with the job born ``done``.
* ``status``  -- per-state counts and a per-job table; ``--canonical``
  prints the deterministic byte-diff projection the determinism tests
  compare across worker counts.
* ``work``    -- run a polling worker (the long-lived process; start as
  many as you like against the same root).
* ``requeue`` -- operator override returning a dead job to the queue
  with a fresh retry budget.

The store is just files: every subcommand may be run from different
machines sharing the root directory, and killing a worker at any point
never loses a job (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.service.budgets import JobBudget
from repro.service.jobstore import JobSpec, JobStore, RetryBackoff
from repro.service.worker import Worker


def _add_submit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="sphere")
    parser.add_argument("--surface-nodes", type=int, default=120)
    parser.add_argument("--interior-nodes", type=int, default=200)
    parser.add_argument("--degree", type=float, default=14.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--error", type=float, default=0.0,
                        help="uniform absolute ranging error (0 = exact)")
    parser.add_argument("--epsilon", type=float, default=1e-3)
    parser.add_argument("--theta", type=int, default=20)
    parser.add_argument("--ttl", type=int, default=3)
    parser.add_argument("--localization", default="auto",
                        choices=["auto", "mds", "trilateration", "true"])
    parser.add_argument("--engine", default="batch",
                        choices=["batch", "sparse", "pernode"])
    parser.add_argument("--workers", type=int, default=1,
                        help="pipeline worker processes inside the job")
    parser.add_argument("--no-surface", action="store_true",
                        help="skip surface construction")
    parser.add_argument("--surface-k", type=int, default=4)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--test-delay", type=float, default=0.0,
                        help="operational sleep inside the job "
                             "(fault-injection tests; excluded from the "
                             "cache key)")


def _spec_from_args(args: argparse.Namespace) -> JobSpec:
    return JobSpec(
        scenario=args.scenario,
        n_surface=args.surface_nodes,
        n_interior=args.interior_nodes,
        target_degree=args.degree,
        seed=args.seed,
        error=args.error,
        epsilon=args.epsilon,
        theta=args.theta,
        ttl=args.ttl,
        localization=args.localization,
        engine=args.engine,
        workers=args.workers,
        surface=not args.no_surface,
        surface_k=args.surface_k,
        test_delay_seconds=args.test_delay,
    )


def _backoff_from_args(args: argparse.Namespace) -> RetryBackoff:
    return RetryBackoff(
        base=args.backoff_base,
        factor=args.backoff_factor,
        cap=args.backoff_cap,
        jitter=args.backoff_jitter,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    record = store.submit(_spec_from_args(args), max_attempts=args.max_attempts)
    suffix = " (cache hit)" if record.cache_hit else ""
    print(f"{record.job_id} {record.state}{suffix}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    if args.canonical:
        sys.stdout.write(store.canonical_state())
        return 0
    if args.job:
        record = store.load(args.job)
        print(json.dumps(record.as_dict(), sort_keys=True, indent=2))
        return 0
    counts = store.counts()
    print(" ".join(f"{state}={n}" for state, n in counts.items()) or "empty")
    for record in store.jobs():
        flags = []
        if record.cache_hit:
            flags.append("cache-hit")
        if record.degraded:
            flags.append("degraded")
        if record.budget_breached:
            flags.append(f"breach:{record.budget_breached}")
        flag_text = (" [" + ",".join(flags) + "]") if flags else ""
        print(
            f"  {record.job_id}  {record.state:7s} "
            f"attempts={record.attempts}/{record.max_attempts}{flag_text}"
        )
    return 0


def cmd_work(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    budget = JobBudget(
        wall_seconds=args.wall_budget, peak_rss_mb=args.rss_budget
    )
    worker = Worker(
        store,
        args.worker_id,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
        backoff=_backoff_from_args(args),
        budget=budget,
        trace_clock=args.trace_clock,
    )
    processed = worker.run(
        max_jobs=args.max_jobs,
        exit_when_idle=args.exit_when_idle,
        max_seconds=args.max_seconds,
    )
    print(f"{args.worker_id}: processed {processed} job(s)")
    return 0


def cmd_requeue(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    record = store.requeue(args.job)
    print(f"{record.job_id} {record.state}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Durable fault-tolerant job service for the "
                    "boundary-detection pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="enqueue a pipeline job")
    p_submit.add_argument("--root", required=True, help="store directory")
    _add_submit_args(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="inspect the store")
    p_status.add_argument("--root", required=True)
    p_status.add_argument("--job", help="print one job's full record")
    p_status.add_argument("--canonical", action="store_true",
                          help="print the deterministic byte-diff "
                               "projection of the store")
    p_status.set_defaults(func=cmd_status)

    p_work = sub.add_parser("work", help="run a polling worker")
    p_work.add_argument("--root", required=True)
    p_work.add_argument("--worker-id", required=True)
    p_work.add_argument("--lease-ttl", type=float, default=30.0)
    p_work.add_argument("--poll-interval", type=float, default=0.2)
    p_work.add_argument("--max-jobs", type=int, default=None)
    p_work.add_argument("--max-seconds", type=float, default=None)
    p_work.add_argument("--exit-when-idle", action="store_true")
    p_work.add_argument("--wall-budget", type=float, default=None,
                        help="per-attempt wall-time budget (seconds)")
    p_work.add_argument("--rss-budget", type=float, default=None,
                        help="per-attempt peak-RSS budget (MB)")
    p_work.add_argument("--backoff-base", type=float, default=0.5)
    p_work.add_argument("--backoff-factor", type=float, default=2.0)
    p_work.add_argument("--backoff-cap", type=float, default=30.0)
    p_work.add_argument("--backoff-jitter", type=float, default=0.1)
    p_work.add_argument("--trace-clock", default="tick",
                        choices=["tick", "wall"],
                        help="tick = deterministic byte-identical traces")
    p_work.set_defaults(func=cmd_work)

    p_requeue = sub.add_parser("requeue", help="return a dead job to the queue")
    p_requeue.add_argument("--root", required=True)
    p_requeue.add_argument("--job", required=True)
    p_requeue.set_defaults(func=cmd_requeue)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
