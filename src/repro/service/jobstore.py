"""Durable file-backed job store for the boundary-detection service.

One directory tree *is* the queue: every job is a directory holding an
atomically-rewritten ``job.json`` record, an append-only ``log.jsonl``
transition log, and ``O_CREAT | O_EXCL`` lock files that arbitrate the
only two races the design admits (two workers claiming the same queued
job; two reapers expiring the same lease).  No daemon, no database, no
in-memory state that a crash can lose: a worker that dies mid-job leaves
an expiring lease behind, and any other worker's next poll requeues the
work.

Job lifecycle::

    queued -> leased -> running -> done
                  \\          \\-> failed -> queued (backoff) | dead
                   \\-> (lease expires) -> queued (backoff) | dead

``failed`` is transient: it is logged, then immediately resolved to
``queued`` (with exponential backoff) or ``dead`` when the attempt cap is
exhausted.  Dead-lettered jobs keep the last error (type, message,
traceback) for post-mortems.

**Result cache.**  Results are keyed on the content hash of the job's
*semantic* fields (:meth:`JobSpec.cache_key` -- scenario, deployment,
detector, and seed parameters; operational knobs are excluded).
:meth:`JobStore.submit` consults the cache -- and only ``submit`` does:
a submit-time hit makes the job be born ``done`` with ``cache_hit`` set,
while claim-time checks would make the final store state depend on which
worker got there first.  Degraded results never populate the cache (they
were produced under a reduced pipeline).

**Fencing.**  Claiming a job hands the worker a fencing token -- the
record's ``(generation, attempts)`` pair.  Every outcome call
(:meth:`JobStore.mark_running`, :meth:`JobStore.complete`,
:meth:`JobStore.fail`, :meth:`JobStore.mark_degraded_retry`) re-checks
the token and the worker id against the current record and raises
:class:`StaleAttemptError` when they no longer match, and
:meth:`JobStore.heartbeat` refuses (returns ``False``) to renew a lease
the caller lost.  A worker that stalls past its lease TTL therefore
cannot overwrite the live attempt's state after the reaper hands the job
to someone else -- each lapse is processed exactly once.

**Determinism contract.**  :meth:`JobStore.canonical_state` projects the
final records onto their semantic fields only (specs, states, attempt
counts, results, error identities) with sorted keys and sorted job order.
Running the same submitted queue with any number of workers yields
byte-identical canonical state; timestamps, leases, backoff deadlines,
and worker identities are operational and excluded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.observability.export import write_atomic, write_trace
from repro.observability.metrics import MetricsRegistry

JOB_FORMAT_VERSION = 1


class StaleAttemptError(RuntimeError):
    """An outcome arrived from a worker whose claim is no longer current.

    Raised by :meth:`JobStore.mark_running`, :meth:`JobStore.complete`,
    :meth:`JobStore.fail`, and :meth:`JobStore.mark_degraded_retry` when
    the caller's fencing token -- the ``(generation, attempt)`` pair
    captured at claim time, plus its worker id -- no longer matches the
    record: the lease lapsed, the job was reaped, and (possibly) another
    worker now owns a newer attempt.  The stale worker's outcome must be
    discarded, never applied.
    """

#: Job states.  ``failed`` is transient (resolved to queued/dead in the
#: same store operation); the others are observable at rest.
STATE_QUEUED = "queued"
STATE_LEASED = "leased"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_DEAD = "dead"

#: States a claim can start from / terminal states.
CLAIMABLE_STATES = (STATE_QUEUED,)
TERMINAL_STATES = (STATE_DONE, STATE_DEAD)


@dataclass(frozen=True)
class JobSpec:
    """One boundary-detection pipeline run, fully specified.

    Every field except ``test_delay_seconds`` is *semantic*: it changes
    what the pipeline computes and therefore participates in
    :meth:`cache_key`.  ``test_delay_seconds`` is an operational test knob
    (a sleep inside the budget/lease window, used by the fault-injection
    tests to make "worker dies mid-job" and "wall budget exceeded"
    reproducible) and is excluded from the key -- a delayed run of a job
    must still hit the cache entry of its undelayed twin.

    ``kind`` selects the executor: ``"detect"`` is the full
    boundary-detection pipeline driven by the detect fields below;
    campaign cell kinds (``eval.*``, see
    :mod:`repro.evaluation.campaign`) carry their whole payload in
    ``cell`` and ignore the detect fields.  Both participate in the cache
    key, so a cell job's identity is exactly its ``(kind, cell)`` content.
    """

    kind: str = "detect"
    cell: Optional[Dict[str, Any]] = None
    scenario: str = "sphere"
    n_surface: int = 120
    n_interior: int = 200
    target_degree: float = 14.0
    seed: int = 0
    error: float = 0.0
    epsilon: float = 1e-3
    theta: int = 20
    ttl: int = 3
    localization: str = "auto"
    engine: str = "batch"
    workers: int = 1
    surface: bool = True
    surface_k: int = 4
    test_delay_seconds: float = 0.0

    #: Fields excluded from the cache key (operational, not semantic).
    OPERATIONAL_FIELDS = ("test_delay_seconds",)

    def semantic_dict(self) -> Dict[str, Any]:
        """The cache-key payload: every field that changes the result."""
        doc = dataclasses.asdict(self)
        for name in self.OPERATIONAL_FIELDS:
            doc.pop(name)
        return doc

    def cache_key(self) -> str:
        """SHA-256 over the sorted-keys JSON of the semantic fields."""
        payload = json.dumps(self.semantic_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobSpec":
        return cls(**doc)


@dataclass(frozen=True)
class RetryBackoff:
    """Exponential retry backoff with deterministic seeded jitter.

    The delay before attempt ``n`` (1-based; the first *retry* is
    attempt 2) is ``min(cap, base * factor ** (n - 2))`` scaled by a
    jitter factor drawn from a generator seeded on the job's cache key and
    the attempt number -- every (job, attempt) pair always gets the same
    delay, so retry schedules are reproducible across runs and worker
    counts (RNG003-clean: the generator is explicitly seeded).
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.base < 0:
            raise ValueError("base must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be at least 1.0")
        if self.cap < self.base:
            raise ValueError("cap must be at least base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, cache_key: str, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (attempt >= 2) of a job."""
        raw = min(self.cap, self.base * self.factor ** max(0, attempt - 2))
        if self.jitter == 0.0:  # lint: allow[FLT009] -- 0.0 is the exact config sentinel for "no jitter", not a computed float
            return raw
        rng = np.random.default_rng([int(cache_key[:8], 16), attempt, 97])
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class JobRecord:
    """The durable state of one job (the ``job.json`` document)."""

    job_id: str
    spec: JobSpec
    state: str = STATE_QUEUED
    attempts: int = 0
    max_attempts: int = 3
    #: Claim generation, bumped by each manual ``requeue``.  Lock files
    #: embed it, so a revived job's fresh attempts never collide with the
    #: consumed one-shot locks of its previous life; together with
    #: ``attempts`` it is the fencing token stale workers are checked
    #: against.  Operational (excluded from ``canonical_dict``).
    generation: int = 0
    degraded: bool = False
    budget_breached: Optional[str] = None
    cache_hit: bool = False
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    not_before: float = 0.0
    worker_id: Optional[str] = None
    created_at: float = 0.0
    updated_at: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["spec"] = self.spec.as_dict()
        doc["format_version"] = JOB_FORMAT_VERSION
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobRecord":
        doc = dict(doc)
        version = doc.pop("format_version", JOB_FORMAT_VERSION)
        if version != JOB_FORMAT_VERSION:
            raise ValueError(
                f"unsupported job format version {version!r} "
                f"(expected {JOB_FORMAT_VERSION})"
            )
        doc["spec"] = JobSpec.from_dict(doc["spec"])
        return cls(**doc)

    def canonical_dict(self) -> Dict[str, Any]:
        """Semantic projection for the byte-diff determinism contract.

        Excludes every operational field -- timestamps, lease deadlines,
        worker identity, and the error traceback (whose line numbers and
        frame text are stable, but whose embedded worker/tmp paths are
        not).
        """
        error = None
        if self.error is not None:
            error = {
                "type": self.error.get("type"),
                "message": self.error.get("message"),
            }
        return {
            "job_id": self.job_id,
            "spec": self.spec.semantic_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "degraded": self.degraded,
            "budget_breached": self.budget_breached,
            "cache_hit": self.cache_hit,
            "result": self.result,
            "error": error,
        }


class JobStore:
    """Directory-tree-backed durable job queue (see module docstring).

    Layout under ``root``::

        jobs/<job_id>/job.json        -- the record (atomic rewrite)
        jobs/<job_id>/log.jsonl       -- append-only transition log
        jobs/<job_id>/lease.json      -- current lease (worker, expiry,
                                         generation/attempt fencing token)
        jobs/<job_id>/claim-<gen>-<n>.lock  -- O_EXCL claim arbitration
        jobs/<job_id>/expire-<gen>-<n>.lock -- O_EXCL reap arbitration
        results/<cache_key>.json      -- result cache
        traces/<job_id>.trace.jsonl   -- per-job JSONL trace
        workers/<worker_id>.metrics.json -- worker metric snapshots
    """

    def __init__(
        self,
        root,
        *,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.traces_dir = self.root / "traces"
        self.workers_dir = self.root / "workers"
        for directory in (
            self.jobs_dir,
            self.results_dir,
            self.traces_dir,
            self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.clock: Callable[[], float] = clock if clock is not None else time.time
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- paths -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def trace_path(self, job_id: str) -> Path:
        return self.traces_dir / f"{job_id}.trace.jsonl"

    def _cache_path(self, cache_key: str) -> Path:
        return self.results_dir / f"{cache_key}.json"

    # -- record I/O ------------------------------------------------------

    def _write_record(self, record: JobRecord) -> None:
        record.updated_at = self.clock()
        path = self.job_dir(record.job_id) / "job.json"
        write_atomic(path, json.dumps(record.as_dict(), sort_keys=True) + "\n")

    def load(self, job_id: str) -> JobRecord:
        path = self.job_dir(job_id) / "job.json"
        return JobRecord.from_dict(json.loads(path.read_text()))

    def job_ids(self) -> List[str]:
        """All job ids, sorted (= submission order, the ids embed a seq)."""
        return [
            p.name for p in sorted(self.jobs_dir.iterdir()) if p.is_dir()
        ]

    def jobs(self) -> List[JobRecord]:
        return [self.load(job_id) for job_id in self.job_ids()]

    def _log(self, job_id: str, event: str, **fields: Any) -> None:
        doc = {"ts": self.clock(), "event": event}
        doc.update(fields)
        line = json.dumps(doc, sort_keys=True) + "\n"
        log_path = self.job_dir(job_id) / "log.jsonl"
        # O_APPEND: single-line appends from concurrent workers interleave
        # whole lines, never bytes.
        fd = os.open(str(log_path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def _try_lock(self, job_id: str, name: str) -> bool:
        """Atomically create a one-shot lock file; False if it exists."""
        path = self.job_dir(job_id) / name
        try:
            fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    @staticmethod
    def _claim_lock_name(record: JobRecord) -> str:
        """One-shot claim lock for the *next* attempt of ``record``.

        The generation prefix keeps a manually requeued job's fresh
        attempts from colliding with the consumed locks of its previous
        life (attempt counters reset on requeue; generations never do).
        """
        return f"claim-{record.generation}-{record.attempts}.lock"

    @staticmethod
    def _expire_lock_name(record: JobRecord) -> str:
        """One-shot reap lock for the *current* attempt of ``record``."""
        return f"expire-{record.generation}-{record.attempts}.lock"

    def _check_current(
        self,
        record: JobRecord,
        worker_id: str,
        attempt: Optional[int],
        generation: Optional[int],
    ) -> None:
        """Fencing check: raise unless ``worker_id`` still owns the attempt.

        ``attempt``/``generation`` are the token captured at claim time;
        ``None`` skips that comparison (store-level callers that hold no
        claim, e.g. unit tests driving transitions directly).  Refusals
        are logged as ``stale_discarded`` transition-log events.
        """
        reason = None
        if record.state not in (STATE_LEASED, STATE_RUNNING):
            reason = f"job is {record.state!r}, not leased/running"
        elif record.worker_id != worker_id:
            reason = (
                f"attempt {record.attempts} is owned by {record.worker_id!r}"
            )
        elif attempt is not None and record.attempts != attempt:
            reason = (
                f"token is for attempt {attempt}, current is {record.attempts}"
            )
        elif generation is not None and record.generation != generation:
            reason = (
                f"token is for generation {generation}, current is "
                f"{record.generation}"
            )
        if reason is not None:
            self._log(
                record.job_id,
                "stale_discarded",
                worker=worker_id,
                attempt=attempt,
                generation=generation,
                reason=reason,
            )
            raise StaleAttemptError(
                f"{record.job_id}: outcome from {worker_id!r} discarded -- "
                + reason
            )

    # -- submit ----------------------------------------------------------

    def submit(self, spec: JobSpec, *, max_attempts: int = 3) -> JobRecord:
        """Enqueue a job; a result-cache hit makes it be born ``done``.

        The cache is consulted here and *only* here: submit order is fixed
        by the caller, so whether a job is a cache hit is a deterministic
        function of the submitted sequence, independent of worker timing.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        cache_key = spec.cache_key()
        job_id = self._allocate_job_id(cache_key)
        now = self.clock()
        record = JobRecord(
            job_id=job_id,
            spec=spec,
            max_attempts=max_attempts,
            created_at=now,
        )
        cache_path = self._cache_path(cache_key)
        if cache_path.exists():
            cached = json.loads(cache_path.read_text())
            record.state = STATE_DONE
            record.cache_hit = True
            record.result = cached["result"]
            self.metrics.counter("service.cache.hits").inc()
            # A cache-hit job never reaches a worker; its trace is the
            # valid empty trace (header only, zero pipeline spans),
            # emitted by the exporter so the header tracks the trace
            # schema version.
            write_trace([], self.trace_path(job_id))
        self._write_record(record)
        self._log(
            job_id,
            "submitted",
            state=record.state,
            cache_key=cache_key,
            cache_hit=record.cache_hit,
        )
        return record

    def _allocate_job_id(self, cache_key: str) -> str:
        """Sequential job id ``j<seq>-<key prefix>``; dir creation is the
        atomic allocation (``mkdir`` fails on collision, we move to the
        next seq)."""
        seq = len(self.job_ids())
        while True:
            job_id = f"j{seq:05d}-{cache_key[:10]}"
            try:
                self.job_dir(job_id).mkdir(parents=True, exist_ok=False)
            except FileExistsError:
                seq += 1
                continue
            return job_id

    # -- claim / lease ---------------------------------------------------

    def claim_next(
        self, worker_id: str, lease_ttl: float, *, now: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Claim the first queued, due job under an expiring lease.

        Jobs are scanned in id order (= submission order).  The
        ``claim-<generation>-<attempt>.lock`` file is the arbitration
        point: of any number of workers that read the same queued record,
        exactly one wins the ``O_EXCL`` create and transitions it to
        ``leased``.
        """
        now = self.clock() if now is None else now
        for job_id in self.job_ids():
            try:
                record = self.load(job_id)
            except (OSError, ValueError, KeyError):
                continue  # partially-created or foreign dir; skip
            if record.state not in CLAIMABLE_STATES:
                continue
            if record.not_before > now:
                continue
            if not self._try_lock(job_id, self._claim_lock_name(record)):
                continue  # another worker won this attempt
            record = self.load(job_id)  # re-read under the lock
            if record.state not in CLAIMABLE_STATES:
                continue
            record.state = STATE_LEASED
            record.attempts += 1
            record.worker_id = worker_id
            self._write_record(record)
            self._write_lease(record, worker_id, now + lease_ttl)
            self._log(
                job_id,
                "leased",
                worker=worker_id,
                attempt=record.attempts,
                expires_at=now + lease_ttl,
            )
            self.metrics.counter("service.jobs.claimed").inc()
            return record
        return None

    def _write_lease(
        self, record: JobRecord, worker_id: str, expires_at: float
    ) -> None:
        write_atomic(
            self.job_dir(record.job_id) / "lease.json",
            json.dumps(
                {
                    "worker": worker_id,
                    "expires_at": expires_at,
                    "generation": record.generation,
                    "attempt": record.attempts,
                },
                sort_keys=True,
            )
            + "\n",
        )

    def mark_running(
        self,
        job_id: str,
        worker_id: str,
        *,
        attempt: Optional[int] = None,
        generation: Optional[int] = None,
    ) -> JobRecord:
        """Transition a claimed job to ``running``.

        Fenced: a worker whose claim lapsed (reaped, possibly re-leased)
        gets :class:`StaleAttemptError` instead of resurrecting the job.
        """
        record = self.load(job_id)
        self._check_current(record, worker_id, attempt, generation)
        record.state = STATE_RUNNING
        record.worker_id = worker_id
        self._write_record(record)
        self._log(job_id, "running", worker=worker_id, attempt=record.attempts)
        return record

    def heartbeat(
        self,
        job_id: str,
        worker_id: str,
        lease_ttl: float,
        *,
        attempt: Optional[int] = None,
        generation: Optional[int] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Renew the lease; a live worker never lets its lease lapse.

        Fenced: returns ``False`` (without renewing) when the caller no
        longer owns the current attempt -- a stale worker must not win
        back a lease it already lost to the reaper.
        """
        now = self.clock() if now is None else now
        record = self.load(job_id)
        try:
            self._check_current(record, worker_id, attempt, generation)
        except StaleAttemptError:
            self.metrics.counter("service.stale.heartbeats").inc()
            return False
        self._write_lease(record, worker_id, now + lease_ttl)
        return True

    def lease_of(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = self.job_dir(job_id) / "lease.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- reap ------------------------------------------------------------

    def reap_expired(
        self,
        *,
        backoff: Optional[RetryBackoff] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Requeue (or dead-letter) every job whose lease has lapsed.

        Any worker may reap; the ``expire-<generation>-<attempt>.lock``
        file guarantees each lapsed attempt is processed exactly once.
        """
        backoff = backoff if backoff is not None else RetryBackoff()
        now = self.clock() if now is None else now
        reaped: List[str] = []
        for job_id in self.job_ids():
            try:
                record = self.load(job_id)
            except (OSError, ValueError, KeyError):
                continue
            if record.state not in (STATE_LEASED, STATE_RUNNING):
                continue
            lease = self.lease_of(job_id)
            if lease is None or lease["expires_at"] > now:
                continue
            if not self._try_lock(job_id, self._expire_lock_name(record)):
                continue  # another reaper handled this lapse
            record = self.load(job_id)
            if record.state not in (STATE_LEASED, STATE_RUNNING):
                continue
            self.metrics.counter("service.lease.expired").inc()
            self._log(
                job_id,
                "lease_expired",
                worker=record.worker_id,
                attempt=record.attempts,
            )
            self._resolve_failure(
                record,
                error={
                    "type": "LeaseExpired",
                    "message": (
                        f"lease lapsed during attempt {record.attempts} "
                        f"(worker {record.worker_id})"
                    ),
                },
                backoff=backoff,
                now=now,
            )
            reaped.append(job_id)
        return reaped

    # -- completion / failure --------------------------------------------

    def complete(
        self,
        job_id: str,
        worker_id: str,
        result: Dict[str, Any],
        *,
        degraded: bool = False,
        budget_breached: Optional[str] = None,
        attempt: Optional[int] = None,
        generation: Optional[int] = None,
    ) -> JobRecord:
        """Finish a job.  Non-degraded results populate the cache.

        Fenced: a worker whose lease lapsed (job reaped, possibly already
        re-leased to a live worker) gets :class:`StaleAttemptError` and
        its result is discarded -- the live attempt owns the outcome.
        """
        record = self.load(job_id)
        self._check_current(record, worker_id, attempt, generation)
        record.state = STATE_DONE
        record.result = result
        record.degraded = degraded
        if budget_breached is not None:
            record.budget_breached = budget_breached
        record.error = None
        record.worker_id = worker_id
        self._write_record(record)
        self._log(
            job_id, "done", worker=worker_id, degraded=degraded,
            attempt=record.attempts,
        )
        if not degraded and not record.cache_hit:
            write_atomic(
                self._cache_path(record.spec.cache_key()),
                json.dumps(
                    {"result": result, "job_id": job_id}, sort_keys=True
                )
                + "\n",
            )
        self.metrics.counter("service.jobs.completed").inc()
        return record

    def fail(
        self,
        job_id: str,
        worker_id: str,
        error: Dict[str, Any],
        *,
        backoff: Optional[RetryBackoff] = None,
        now: Optional[float] = None,
        attempt: Optional[int] = None,
        generation: Optional[int] = None,
    ) -> JobRecord:
        """Record a failed attempt: requeue with backoff, or dead-letter.

        ``error`` should carry ``type``, ``message``, and (for crashes)
        ``traceback``; it is preserved verbatim on the record so
        dead-letters are debuggable from the store alone.

        Fenced like :meth:`complete`: a stale worker's failure report is
        discarded with :class:`StaleAttemptError` rather than burning a
        retry the live attempt still owns.
        """
        backoff = backoff if backoff is not None else RetryBackoff()
        now = self.clock() if now is None else now
        record = self.load(job_id)
        self._check_current(record, worker_id, attempt, generation)
        record.worker_id = worker_id
        self._log(
            job_id,
            "failed",
            worker=worker_id,
            attempt=record.attempts,
            error_type=error.get("type"),
        )
        return self._resolve_failure(record, error=error, backoff=backoff, now=now)

    def _resolve_failure(
        self,
        record: JobRecord,
        *,
        error: Dict[str, Any],
        backoff: RetryBackoff,
        now: float,
    ) -> JobRecord:
        """The transient ``failed`` state: immediately requeue or bury."""
        record.error = error
        if record.attempts >= record.max_attempts:
            record.state = STATE_DEAD
            self._write_record(record)
            self._log(
                record.job_id,
                "dead",
                attempt=record.attempts,
                error_type=error.get("type"),
            )
            self.metrics.counter("service.jobs.dead").inc()
        else:
            delay = backoff.delay(record.spec.cache_key(), record.attempts + 1)
            record.state = STATE_QUEUED
            record.not_before = now + delay
            self._write_record(record)
            self._log(
                record.job_id,
                "requeued",
                attempt=record.attempts,
                delay=delay,
            )
            self.metrics.counter("service.jobs.retried").inc()
        return record

    def mark_degraded_retry(
        self,
        job_id: str,
        worker_id: str,
        kind: str,
        *,
        attempt: Optional[int] = None,
        generation: Optional[int] = None,
    ) -> JobRecord:
        """Budget breach: requeue immediately for a degraded attempt.

        The breach is not a failure -- the job is retried at once (no
        backoff: the breach is deterministic, waiting would not help) with
        ``degraded`` set so the next attempt runs the reduced pipeline.
        Fenced like :meth:`complete`.
        """
        record = self.load(job_id)
        self._check_current(record, worker_id, attempt, generation)
        record.degraded = True
        record.budget_breached = kind
        record.state = STATE_QUEUED
        record.not_before = 0.0
        record.worker_id = worker_id
        self._write_record(record)
        self._log(
            job_id,
            "budget_breached",
            worker=worker_id,
            kind=kind,
            attempt=record.attempts,
        )
        self.metrics.counter("service.jobs.degraded").inc()
        return record

    def requeue(self, job_id: str) -> JobRecord:
        """Operator override: put a dead (or stuck) job back in the queue.

        A requeue is a fresh grant of the full retry budget *and* of the
        full pipeline: attempts, error, and degradation state all reset.
        The claim generation is bumped so the revived job's attempt
        counter (restarting at 0) never collides with the consumed
        one-shot claim/expire locks of its previous life -- and so any
        worker still holding a pre-requeue fencing token is stale.
        """
        record = self.load(job_id)
        record.state = STATE_QUEUED
        record.generation += 1
        record.attempts = 0
        record.not_before = 0.0
        record.error = None
        record.degraded = False
        record.budget_breached = None
        self._write_record(record)
        self._log(job_id, "requeued_manually", generation=record.generation)
        return record

    # -- projections -----------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for ``repro-serve status``)."""
        tally: Dict[str, int] = {}
        for record in self.jobs():
            tally[record.state] = tally.get(record.state, 0) + 1
        return dict(sorted(tally.items()))

    def all_terminal(self) -> bool:
        return all(r.state in TERMINAL_STATES for r in self.jobs())

    def canonical_state(self) -> str:
        """Deterministic byte-diff projection of the store (see module
        docstring): sorted job order, sorted keys, semantic fields only."""
        docs = [record.canonical_dict() for record in self.jobs()]
        return json.dumps(docs, sort_keys=True, indent=2) + "\n"
