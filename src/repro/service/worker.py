"""Lease-based polling worker for the boundary-detection service.

A :class:`Worker` loops: reap lapsed leases, claim the next due job,
run the full detection pipeline on it, record the outcome.  Liveness is
communicated through the lease alone -- a daemon heartbeat thread renews
it at a third of its TTL while the job runs, so a worker that is merely
*slow* keeps its claim, while one that is SIGKILLed or wedged stops
renewing and any other worker's next poll requeues the job (with
exponential backoff, up to the attempt cap, then dead-lettered with the
traceback).

Every attempt gets a fresh per-job :class:`~repro.observability.Tracer`
whose spans are exported as a JSONL trace artifact next to the store
(``traces/<job_id>.trace.jsonl``, schema-checkable with
``repro-boundary trace --validate``).  The default trace clock is the
deterministic :class:`~repro.observability.TickClock`, making per-job
traces byte-identical across runs and worker counts; pass
``trace_clock="wall"`` for real timings.

Budget breaches follow the degradation ladder of
:mod:`repro.service.budgets`: first breach requeues the job for an
immediate *degraded* attempt (scalar localization engine, one pipeline
worker, surface skipped, enforcement off).
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from typing import Any, Dict, Optional

import numpy as np

from repro.core.config import (
    DetectorConfig,
    IFFConfig,
    LocalizationConfig,
    UBFConfig,
)
from repro.core.pipeline import BoundaryDetector
from repro.evaluation.campaign import execute_cell
from repro.evaluation.metrics import evaluate_detection
from repro.network.generator import DeploymentConfig, generate_network
from repro.network.measurement import NoError, UniformAbsoluteError
from repro.observability.export import write_atomic, write_trace
from repro.observability.tracer import TickClock, Tracer
from repro.service.budgets import BudgetExceeded, JobBudget, enforce
from repro.service.jobstore import (
    JobRecord,
    JobSpec,
    JobStore,
    RetryBackoff,
    StaleAttemptError,
)
from repro.shapes.library import scenario_by_name
from repro.surface.pipeline import SurfaceBuilder, SurfaceConfig


def detector_config_for(spec: JobSpec, *, degraded: bool) -> DetectorConfig:
    """The pipeline configuration for one attempt of ``spec``.

    A degraded attempt swaps in the scalar (``pernode``) localization
    engine and a single pipeline worker; the surface stage is skipped by
    :func:`execute_job` itself.
    """
    if spec.error > 0:
        error_model = UniformAbsoluteError(spec.error)
    else:
        error_model = NoError()
    return DetectorConfig(
        ubf=UBFConfig(epsilon=spec.epsilon),
        iff=IFFConfig(theta=spec.theta, ttl=spec.ttl),
        localization_config=LocalizationConfig(
            engine="pernode" if degraded else spec.engine
        ),
        error_model=error_model,
        localization=spec.localization,
        workers=1 if degraded else spec.workers,
    )


def execute_job(
    spec: JobSpec, *, degraded: bool = False, tracer: Optional[Tracer] = None
) -> Dict[str, Any]:
    """Run the full pipeline for ``spec``; returns the job's result doc.

    The optional ``test_delay_seconds`` sleep runs *inside* the job span
    (and therefore inside the caller's budget window) so the service
    tests can deterministically provoke lease lapses and wall breaches.

    Non-``detect`` kinds are campaign evaluation cells: the whole payload
    lives in ``spec.cell`` and dispatches to
    :func:`repro.evaluation.campaign.execute_cell` (an unknown kind
    raises, which the worker surfaces as a failed attempt).
    """
    tracer = tracer if tracer is not None else Tracer(clock=TickClock())
    if spec.kind != "detect":
        with tracer.span("job", kind=spec.kind, degraded=degraded):
            if spec.test_delay_seconds > 0:
                time.sleep(spec.test_delay_seconds)
            return execute_cell(spec.kind, spec.cell, tracer=tracer)
    with tracer.span("job", scenario=spec.scenario, degraded=degraded):
        if spec.test_delay_seconds > 0:
            time.sleep(spec.test_delay_seconds)
        network = generate_network(
            scenario_by_name(spec.scenario),
            DeploymentConfig(
                n_surface=spec.n_surface,
                n_interior=spec.n_interior,
                target_degree=spec.target_degree,
                seed=spec.seed,
            ),
            scenario=spec.scenario,
        )
        detector = BoundaryDetector(detector_config_for(spec, degraded=degraded))
        detection = detector.detect(
            network, rng=np.random.default_rng(spec.seed), tracer=tracer
        )
        stats = evaluate_detection(network, detection)
        doc: Dict[str, Any] = {
            "degraded": degraded,
            "n_nodes": network.n_nodes,
            "localization_used": detection.localization_used,
            "n_candidates": len(detection.candidates),
            "n_boundary": len(detection.boundary),
            "n_groups": len(detection.groups),
            "stats": {
                "n_truth": stats.n_truth,
                "n_found": stats.n_found,
                "n_correct": stats.n_correct,
                "n_mistaken": stats.n_mistaken,
                "n_missing": stats.n_missing,
            },
        }
        if spec.surface and not degraded:
            with tracer.span("surface", k=spec.surface_k):
                meshes = SurfaceBuilder(SurfaceConfig(k=spec.surface_k)).build(
                    network.graph, detection.groups
                )
            doc["surface"] = {
                "n_meshes": len(meshes),
                "n_triangles": sum(len(m.triangles()) for m in meshes),
            }
        else:
            doc["surface"] = None
    return doc


class _Heartbeat:
    """Daemon thread renewing one job's lease until stopped.

    Carries the fencing token captured at claim time; once the store
    reports the lease lost (a fenced :meth:`JobStore.heartbeat` returning
    ``False``), renewal stops for good -- a stale worker must not win
    back a lease the reaper already handed to someone else.
    """

    def __init__(self, store: JobStore, record: JobRecord, worker_id: str,
                 lease_ttl: float):
        self._store = store
        self._job_id = record.job_id
        self._attempt = record.attempts
        self._generation = record.generation
        self._worker_id = worker_id
        self._lease_ttl = lease_ttl
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(0.05, self._lease_ttl / 3.0)
        while not self._stop.wait(interval):
            try:
                renewed = self._store.heartbeat(
                    self._job_id,
                    self._worker_id,
                    self._lease_ttl,
                    attempt=self._attempt,
                    generation=self._generation,
                )
            except OSError:
                # A torn-down store (test teardown) must not crash the
                # daemon; the lease simply stops being renewed.
                return
            if not renewed:
                return  # lease lost; the live attempt owns it now

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class Worker:
    """One polling worker process (see module docstring)."""

    def __init__(
        self,
        store: JobStore,
        worker_id: str,
        *,
        lease_ttl: float = 30.0,
        poll_interval: float = 0.2,
        backoff: Optional[RetryBackoff] = None,
        budget: Optional[JobBudget] = None,
        trace_clock: str = "tick",
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if trace_clock not in ("tick", "wall"):
            raise ValueError("trace_clock must be 'tick' or 'wall'")
        self.store = store
        self.worker_id = worker_id
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.backoff = backoff if backoff is not None else RetryBackoff()
        self.budget = budget if budget is not None else JobBudget()
        self.trace_clock = trace_clock

    def _new_tracer(self) -> Tracer:
        if self.trace_clock == "tick":
            return Tracer(clock=TickClock(), shard_clock=TickClock)
        return Tracer()

    def run(
        self,
        *,
        max_jobs: Optional[int] = None,
        exit_when_idle: bool = False,
        max_seconds: Optional[float] = None,
    ) -> int:
        """Poll until a stop condition holds; returns jobs processed."""
        processed = 0
        deadline = None if max_seconds is None else time.monotonic() + max_seconds
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                break
            expired = self.store.reap_expired(backoff=self.backoff)
            if expired:
                self.store.metrics.counter("service.reaps").inc(len(expired))
            record = self.store.claim_next(self.worker_id, self.lease_ttl)
            if record is None:
                if exit_when_idle:
                    break
                time.sleep(self.poll_interval)
                continue
            self.run_one(record)
            processed += 1
            if max_jobs is not None and processed >= max_jobs:
                break
        self.write_metrics()
        return processed

    def run_one(self, record: JobRecord) -> JobRecord:
        """Execute one claimed job attempt end to end.

        The claimed record's ``(generation, attempts)`` pair is this
        attempt's fencing token: every outcome call passes it back, and a
        :class:`StaleAttemptError` (this worker stalled past its lease,
        the job was reaped) discards the outcome -- the live attempt owns
        the job's state, including its trace artifact.
        """
        job_id = record.job_id
        degraded = record.degraded
        attempt = record.attempts
        generation = record.generation
        tracer = self._new_tracer()
        budget = JobBudget() if degraded else self.budget
        try:
            self.store.mark_running(
                job_id, self.worker_id, attempt=attempt, generation=generation
            )
            with _Heartbeat(self.store, record, self.worker_id, self.lease_ttl):
                with enforce(budget):
                    result = execute_job(
                        record.spec, degraded=degraded, tracer=tracer
                    )
        except StaleAttemptError:
            return self._discard_stale(job_id, attempt)
        except BudgetExceeded as exc:
            try:
                self.store.mark_degraded_retry(
                    job_id, self.worker_id, exc.kind,
                    attempt=attempt, generation=generation,
                )
            except StaleAttemptError:
                return self._discard_stale(job_id, attempt)
            write_trace(tracer.roots, self.store.trace_path(job_id))
            return self.store.load(job_id)
        except Exception as exc:  # lint: allow[EXC005] -- the dead-letter contract requires capturing any crash's type and traceback
            try:
                self.store.fail(
                    job_id,
                    self.worker_id,
                    {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback.format_exc(),
                    },
                    backoff=self.backoff,
                    attempt=attempt,
                    generation=generation,
                )
            except StaleAttemptError:
                return self._discard_stale(job_id, attempt)
            write_trace(tracer.roots, self.store.trace_path(job_id))
            return self.store.load(job_id)
        try:
            self.store.complete(
                job_id,
                self.worker_id,
                result,
                degraded=degraded,
                budget_breached=record.budget_breached,
                attempt=attempt,
                generation=generation,
            )
        except StaleAttemptError:
            return self._discard_stale(job_id, attempt)
        write_trace(tracer.roots, self.store.trace_path(job_id))
        return self.store.load(job_id)

    def _discard_stale(self, job_id: str, attempt: int) -> JobRecord:
        """This worker's attempt lapsed mid-flight: drop the outcome (and
        the trace -- the live attempt owns the artifact) and move on.
        The store already logged ``stale_discarded`` when it refused."""
        self.store.metrics.counter("service.stale.outcomes").inc()
        return self.store.load(job_id)

    def write_metrics(self) -> None:
        """Snapshot the store's metric registry for this worker."""
        path = self.store.workers_dir / f"{self.worker_id}.metrics.json"
        write_atomic(
            path,
            json.dumps(self.store.metrics.as_dict(), sort_keys=True, indent=2)
            + "\n",
        )
