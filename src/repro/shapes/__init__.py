"""3D region models used to deploy simulated wireless networks.

The paper builds its simulation scenarios with TetGen-generated 3D models
(Sec. IV-A).  TetGen is only used there to obtain a 3D region in which to
sample ground-truth boundary nodes (uniformly on the surface) and interior
nodes (uniformly in the volume).  This package provides the same capability
from scratch: every shape knows how to

* decide membership (``contains``),
* sample its boundary surface uniformly by area (``sample_surface``), and
* sample its interior uniformly by volume (``sample_interior``).

The five evaluation scenarios of Figs. 6-10 are available pre-configured in
:mod:`repro.shapes.library`.
"""

from repro.shapes.base import Shape3D
from repro.shapes.csg import Difference, Union
from repro.shapes.library import (
    SCENARIOS,
    bent_pipe_scenario,
    one_hole_scenario,
    scenario_by_name,
    sphere_scenario,
    two_hole_scenario,
    underwater_scenario,
)
from repro.shapes.pipe import BentPipe
from repro.shapes.solids import AxisAlignedBox, Cylinder, Sphere, Torus
from repro.shapes.terrain import UnderwaterTerrain

__all__ = [
    "Shape3D",
    "Difference",
    "Union",
    "Sphere",
    "AxisAlignedBox",
    "Cylinder",
    "Torus",
    "BentPipe",
    "UnderwaterTerrain",
    "SCENARIOS",
    "scenario_by_name",
    "underwater_scenario",
    "one_hole_scenario",
    "two_hole_scenario",
    "bent_pipe_scenario",
    "sphere_scenario",
]
