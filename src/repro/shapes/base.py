"""Abstract interface for 3D region models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.geometry.primitives import as_points


class Shape3D(ABC):
    """A closed, bounded region of 3D space.

    Subclasses must implement membership, uniform surface sampling, an (at
    least approximate) surface area, and an axis-aligned bounding box.
    Interior sampling and volume estimation are provided generically via
    rejection sampling against the bounding box.
    """

    @abstractmethod
    def contains(self, points) -> np.ndarray:
        """Boolean mask of which ``points`` lie inside the region.

        Points exactly on the boundary may be classified either way;
        deployments never place interior nodes exactly on the surface.
        """

    @abstractmethod
    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``(n, 3)`` points distributed uniformly by area on the boundary."""

    @property
    @abstractmethod
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` corners of an axis-aligned box enclosing the region."""

    @property
    @abstractmethod
    def surface_area(self) -> float:
        """Total boundary area (analytic where possible, else approximate)."""

    # ------------------------------------------------------------------
    # Generic helpers
    # ------------------------------------------------------------------

    def contains_point(self, point) -> bool:
        """Membership test for a single point."""
        return bool(self.contains(np.asarray(point, dtype=float)[None, :])[0])

    def sample_interior(
        self, n: int, rng: np.random.Generator, *, max_batches: int = 1000
    ) -> np.ndarray:
        """``(n, 3)`` points uniform in the region's volume.

        Uses rejection sampling against the bounding box.  Raises
        ``RuntimeError`` if the acceptance rate is so low that ``n`` points
        cannot be collected within ``max_batches`` proposal batches, which
        indicates a degenerate (near-zero-volume) shape.
        """
        if n <= 0:
            return np.empty((0, 3))
        lo, hi = self.bounding_box
        accepted = []
        total = 0
        batch = max(4 * n, 256)
        for _ in range(max_batches):
            proposals = rng.uniform(lo, hi, size=(batch, 3))
            mask = self.contains(proposals)
            accepted.append(proposals[mask])
            total += int(mask.sum())
            if total >= n:
                break
        else:
            raise RuntimeError(
                f"interior sampling did not converge: {total}/{n} points "
                f"accepted after {max_batches} batches"
            )
        return np.vstack(accepted)[:n]

    def volume_estimate(self, rng: np.random.Generator, samples: int = 200_000) -> float:
        """Monte-Carlo estimate of the region's volume."""
        lo, hi = self.bounding_box
        proposals = rng.uniform(lo, hi, size=(samples, 3))
        fraction = float(self.contains(proposals).mean())
        box_volume = float(np.prod(hi - lo))
        return fraction * box_volume

    @staticmethod
    def _as_points(points) -> np.ndarray:
        """Normalize input to an ``(n, 3)`` array (shared by subclasses)."""
        return as_points(points)
