"""Constructive solid geometry combinators.

The paper's "3D space network with internal holes" scenarios (Figs. 7 and 8)
are regions with one or two voids carved out; :class:`Difference` models
exactly that.  :class:`Union` is provided for building composite outer
regions.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.shapes.base import Shape3D
from repro.shapes.sampling import multinomial_split


class Difference(Shape3D):
    """``outer`` with one or more ``holes`` removed.

    The boundary of the resulting region is the outer boundary (excluding
    any part swallowed by a hole) plus the boundary of every hole that lies
    inside the outer shape.  Holes are expected to be strictly interior and
    mutually disjoint -- the standard configuration in the paper -- but the
    samplers stay correct under overlap by rejection-filtering.
    """

    def __init__(self, outer: Shape3D, holes: Sequence[Shape3D]):
        if not holes:
            raise ValueError("Difference requires at least one hole")
        self.outer = outer
        self.holes = list(holes)

    def __repr__(self) -> str:
        return f"Difference(outer={self.outer!r}, holes={self.holes!r})"

    def _in_any_hole(self, pts: np.ndarray) -> np.ndarray:
        mask = np.zeros(pts.shape[0], dtype=bool)
        for hole in self.holes:
            mask |= hole.contains(pts)
        return mask

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points)
        return self.outer.contains(pts) & ~self._in_any_hole(pts)

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        components = [self.outer] + self.holes
        areas = [c.surface_area for c in components]
        counts = multinomial_split(n, areas, rng)
        samples = []
        for idx, (component, count) in enumerate(zip(components, counts)):
            if count == 0:
                continue
            collected = []
            got = 0
            for _ in range(1000):
                pts = component.sample_surface(count * 2 + 8, rng)
                if idx == 0:
                    # Outer surface: keep points not swallowed by a hole.
                    keep = pts[~self._in_any_hole(pts)]
                else:
                    # Hole surface: keep points inside the outer shape.
                    keep = pts[self.outer.contains(pts)]
                collected.append(keep)
                got += keep.shape[0]
                if got >= count:
                    break
            else:
                raise RuntimeError(
                    "surface sampling did not converge; is a hole entirely "
                    "outside the outer shape?"
                )
            samples.append(np.vstack(collected)[:count])
        if not samples:
            return np.empty((0, 3))
        return np.vstack(samples)

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.outer.bounding_box

    @property
    def surface_area(self) -> float:
        # Upper bound assuming strictly interior holes; exact in the
        # configurations this library ships.
        return self.outer.surface_area + sum(h.surface_area for h in self.holes)


class Union(Shape3D):
    """Set union of several shapes.

    Surface sampling draws from each component's surface proportionally to
    area and rejects points that fall inside another component, which yields
    a uniform sample of the union's boundary.
    """

    def __init__(self, parts: Sequence[Shape3D]):
        if not parts:
            raise ValueError("Union requires at least one part")
        self.parts = list(parts)

    def __repr__(self) -> str:
        return f"Union(parts={self.parts!r})"

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points)
        mask = np.zeros(pts.shape[0], dtype=bool)
        for part in self.parts:
            mask |= part.contains(pts)
        return mask

    def _inside_other(self, pts: np.ndarray, skip: int) -> np.ndarray:
        mask = np.zeros(pts.shape[0], dtype=bool)
        for idx, part in enumerate(self.parts):
            if idx == skip:
                continue
            mask |= part.contains(pts)
        return mask

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        areas = [p.surface_area for p in self.parts]
        counts = multinomial_split(n, areas, rng)
        samples = []
        for idx, (part, count) in enumerate(zip(self.parts, counts)):
            if count == 0:
                continue
            collected = []
            got = 0
            for _ in range(1000):
                pts = part.sample_surface(count * 2 + 8, rng)
                keep = pts[~self._inside_other(pts, idx)]
                collected.append(keep)
                got += keep.shape[0]
                if got >= count:
                    break
            else:
                raise RuntimeError(
                    "union surface sampling did not converge; is one part "
                    "entirely inside another?"
                )
            samples.append(np.vstack(collected)[:count])
        if not samples:
            return np.empty((0, 3))
        return np.vstack(samples)

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        los, his = zip(*(p.bounding_box for p in self.parts))
        return np.min(np.vstack(los), axis=0), np.max(np.vstack(his), axis=0)

    @property
    def surface_area(self) -> float:
        # Upper bound; exact when parts are disjoint.
        return sum(p.surface_area for p in self.parts)
