"""Pre-configured shapes for the paper's five evaluation scenarios.

Shape dimensions here are in abstract model units; the network generator
rescales positions so that the chosen radio transmission range becomes 1
(Definition 1 of the paper), so only the shapes' proportions matter.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.shapes.base import Shape3D
from repro.shapes.csg import Difference
from repro.shapes.pipe import BentPipe
from repro.shapes.solids import Sphere
from repro.shapes.terrain import UnderwaterTerrain


def underwater_scenario() -> Shape3D:
    """Fig. 6: ocean volume with a smooth surface and a bumpy bottom."""
    return UnderwaterTerrain(
        size=(2.0, 2.0),
        depth=0.8,
        bump_count=4,
        bump_height=0.35,
        wave_amplitude=0.03,
        seed=7,
    )


def one_hole_scenario() -> Shape3D:
    """Fig. 7: 3D space network with one internal hole."""
    outer = Sphere(center=(0.0, 0.0, 0.0), radius=1.0)
    hole = Sphere(center=(0.12, 0.0, 0.0), radius=0.38)
    return Difference(outer, [hole])


def two_hole_scenario() -> Shape3D:
    """Fig. 8: 3D space network with two internal holes."""
    outer = Sphere(center=(0.0, 0.0, 0.0), radius=1.0)
    # Hole size vs spacing is a three-way balance: each hole must exceed
    # the unit ball (Definition 7) at deployment densities, while staying
    # >1 radio range away from the other hole and from the outer surface
    # so the three boundaries do not merge into one connected group.
    holes = [
        Sphere(center=(-0.42, 0.0, 0.0), radius=0.27),
        Sphere(center=(0.42, 0.1, 0.05), radius=0.27),
    ]
    return Difference(outer, holes)


def bent_pipe_scenario() -> Shape3D:
    """Fig. 9: network deployed in a bended pipe."""
    return BentPipe(bend_radius=1.0, tube_radius=0.32, sweep=3.14159)


def sphere_scenario() -> Shape3D:
    """Fig. 10: network deployed in a sphere."""
    return Sphere(center=(0.0, 0.0, 0.0), radius=1.0)


#: Scenario registry: name -> (factory, paper figure).
SCENARIOS: Dict[str, Callable[[], Shape3D]] = {
    "underwater": underwater_scenario,
    "one_hole": one_hole_scenario,
    "two_holes": two_hole_scenario,
    "bent_pipe": bent_pipe_scenario,
    "sphere": sphere_scenario,
}

#: Which paper figure each scenario reproduces.
SCENARIO_FIGURES: Dict[str, str] = {
    "underwater": "Fig. 6",
    "one_hole": "Fig. 7",
    "two_holes": "Fig. 8",
    "bent_pipe": "Fig. 9",
    "sphere": "Fig. 10",
}


def scenario_by_name(name: str) -> Shape3D:
    """Instantiate a scenario shape by registry name.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is not registered.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
    return factory()
