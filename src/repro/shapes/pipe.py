"""A bent pipe: the Fig. 9 evaluation scenario.

The pipe is modeled as a *capsule around a circular arc*: all points within
``tube_radius`` of an arc of radius ``bend_radius`` in the xy-plane, swept
through ``sweep`` radians.  The clamped-arc distance function automatically
rounds the two ends into hemispherical caps, so the region is closed and its
boundary surface has three exactly-parametrizable components (tube wall plus
two hemispheres), each sampled uniformly by area.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.shapes.base import Shape3D
from repro.shapes.sampling import multinomial_split, sample_unit_sphere


class BentPipe(Shape3D):
    """Capsule around a circular arc.

    Parameters
    ----------
    center:
        Center of the bend circle.
    bend_radius:
        Radius of the arc the pipe is swept along (centerline radius).
    tube_radius:
        Radius of the pipe's circular cross-section; must be smaller than
        ``bend_radius`` so the pipe does not self-intersect.
    sweep:
        Arc angle in radians, in ``(0, 2*pi)``; the default ``pi`` gives the
        half-circle "bended pipe" of Fig. 9.
    """

    def __init__(
        self,
        center=(0.0, 0.0, 0.0),
        bend_radius: float = 1.0,
        tube_radius: float = 0.3,
        sweep: float = np.pi,
    ):
        if not 0.0 < sweep < 2.0 * np.pi:
            raise ValueError("sweep must be in (0, 2*pi)")
        if not 0.0 < tube_radius < bend_radius:
            raise ValueError("need 0 < tube_radius < bend_radius")
        self.center = np.asarray(center, dtype=float)
        self.bend_radius = float(bend_radius)
        self.tube_radius = float(tube_radius)
        self.sweep = float(sweep)

    def __repr__(self) -> str:
        return (
            f"BentPipe(center={self.center.tolist()}, bend_radius={self.bend_radius}, "
            f"tube_radius={self.tube_radius}, sweep={self.sweep:.4f})"
        )

    # ------------------------------------------------------------------
    # Centerline helpers
    # ------------------------------------------------------------------

    def _arc_point(self, phi) -> np.ndarray:
        """Point(s) on the centerline arc at angle(s) ``phi``."""
        phi = np.asarray(phi, dtype=float)
        return self.center + self.bend_radius * np.stack(
            [np.cos(phi), np.sin(phi), np.zeros_like(phi)], axis=-1
        )

    def _clamped_arc_angle(self, pts: np.ndarray) -> np.ndarray:
        """Centerline angle of the nearest arc point for each input point."""
        rel = pts - self.center
        phi = np.arctan2(rel[:, 1], rel[:, 0])
        # Map into [0, 2*pi) then clamp into the swept range; angles in the
        # "gap" snap to whichever end of the arc is angularly closer.
        phi = np.mod(phi, 2.0 * np.pi)
        over = phi > self.sweep
        if np.any(over):
            gap_mid = self.sweep + (2.0 * np.pi - self.sweep) / 2.0
            phi = np.where(over & (phi < gap_mid), self.sweep, phi)
            phi = np.where(over & (phi >= gap_mid), 0.0, phi)
        return phi

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points)
        phi = self._clamped_arc_angle(pts)
        nearest = self._arc_point(phi)
        diff = pts - nearest
        return np.einsum("ij,ij->i", diff, diff) <= self.tube_radius ** 2

    # ------------------------------------------------------------------
    # Surface sampling
    # ------------------------------------------------------------------

    def _sample_tube(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform-by-area sample of the swept tube wall.

        The area element is proportional to ``bend_radius + tube_radius *
        cos(psi)`` in the tube angle ``psi`` (measured from the outward
        radial direction), so ``psi`` is drawn by rejection against that
        weight; the sweep angle ``phi`` is uniform because the centerline is
        a circular arc.
        """
        if n <= 0:
            return np.empty((0, 3))
        phi = rng.uniform(0.0, self.sweep, size=n)
        psi = np.empty(n)
        filled = 0
        while filled < n:
            need = n - filled
            cand = rng.uniform(0.0, 2.0 * np.pi, size=2 * need + 16)
            weight = (self.bend_radius + self.tube_radius * np.cos(cand)) / (
                self.bend_radius + self.tube_radius
            )
            keep = cand[rng.uniform(size=cand.size) < weight]
            take = min(need, keep.size)
            psi[filled : filled + take] = keep[:take]
            filled += take
        radial = np.column_stack([np.cos(phi), np.sin(phi), np.zeros(n)])
        vertical = np.array([0.0, 0.0, 1.0])
        pts = (
            self._arc_point(phi)
            + self.tube_radius * np.cos(psi)[:, None] * radial
            + self.tube_radius * np.sin(psi)[:, None] * vertical
        )
        return pts

    def _sample_cap(self, n: int, rng: np.random.Generator, at_start: bool) -> np.ndarray:
        """Uniform sample of one hemispherical end cap."""
        if n <= 0:
            return np.empty((0, 3))
        phi_end = 0.0 if at_start else self.sweep
        end = self._arc_point(phi_end)
        # Outward tangent of the arc at the end (pointing away from the pipe).
        tangent = np.array([-np.sin(phi_end), np.cos(phi_end), 0.0])
        outward = -tangent if at_start else tangent
        directions = sample_unit_sphere(n, rng)
        dots = directions @ outward
        directions[dots < 0.0] *= -1.0
        return end + self.tube_radius * directions

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        tube_area = self.sweep * self.bend_radius * 2.0 * np.pi * self.tube_radius
        cap_area = 2.0 * np.pi * self.tube_radius ** 2
        counts = multinomial_split(n, [tube_area, cap_area, cap_area], rng)
        pieces = [
            self._sample_tube(counts[0], rng),
            self._sample_cap(counts[1], rng, at_start=True),
            self._sample_cap(counts[2], rng, at_start=False),
        ]
        return np.vstack([p for p in pieces if p.size])

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        reach = self.bend_radius + self.tube_radius
        lo = self.center + np.array([-reach, -reach, -self.tube_radius])
        hi = self.center + np.array([reach, reach, self.tube_radius])
        return lo, hi

    @property
    def surface_area(self) -> float:
        tube = self.sweep * self.bend_radius * 2.0 * np.pi * self.tube_radius
        caps = 4.0 * np.pi * self.tube_radius ** 2
        return tube + caps

    @property
    def volume(self) -> float:
        """Exact volume (Pappus for the tube, one full sphere for both caps)."""
        tube = self.sweep * self.bend_radius * np.pi * self.tube_radius ** 2
        caps = 4.0 / 3.0 * np.pi * self.tube_radius ** 3
        return tube + caps
