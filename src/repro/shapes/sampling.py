"""Low-level uniform samplers shared by the shape implementations."""

from __future__ import annotations

import numpy as np


def sample_unit_sphere(n: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, 3)`` points uniform on the unit sphere (Gaussian projection)."""
    if n <= 0:
        return np.empty((0, 3))
    vecs = rng.normal(size=(n, 3))
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    # Degenerate all-zero draws are astronomically unlikely; regenerate them
    # rather than dividing by zero.
    bad = norms[:, 0] < 1e-12
    while np.any(bad):
        vecs[bad] = rng.normal(size=(int(bad.sum()), 3))
        norms = np.linalg.norm(vecs, axis=1, keepdims=True)
        bad = norms[:, 0] < 1e-12
    return vecs / norms


def sample_unit_disk(n: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, 2)`` points uniform in the unit disk (sqrt-radius trick)."""
    if n <= 0:
        return np.empty((0, 2))
    radius = np.sqrt(rng.uniform(0.0, 1.0, size=n))
    angle = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])


def sample_circle(n: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, 2)`` points uniform on the unit circle."""
    if n <= 0:
        return np.empty((0, 2))
    angle = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.column_stack([np.cos(angle), np.sin(angle)])


def multinomial_split(n: int, weights, rng: np.random.Generator) -> np.ndarray:
    """Randomly split ``n`` draws across components proportionally to ``weights``.

    Used to allocate surface samples across the faces/components of a
    composite boundary so the overall sample stays uniform by area.
    """
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0) or w.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    return rng.multinomial(n, w / w.sum())


def orthonormal_frame(direction: np.ndarray) -> tuple:
    """Two unit vectors completing ``direction`` to an orthonormal frame.

    ``direction`` need not be normalized.  The construction is deterministic
    and continuous except at the poles of the chosen reference axis.
    """
    d = np.asarray(direction, dtype=float)
    d = d / np.linalg.norm(d)
    reference = np.array([0.0, 0.0, 1.0])
    if abs(float(np.dot(d, reference))) > 0.9:
        reference = np.array([1.0, 0.0, 0.0])
    u = np.cross(d, reference)
    u = u / np.linalg.norm(u)
    v = np.cross(d, u)
    return u, v
