"""Primitive solid shapes: sphere, box, cylinder, torus."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.shapes.base import Shape3D
from repro.shapes.sampling import (
    multinomial_split,
    sample_circle,
    sample_unit_disk,
    sample_unit_sphere,
)


class Sphere(Shape3D):
    """A solid ball of given center and radius (Fig. 10's scenario shape)."""

    def __init__(self, center=(0.0, 0.0, 0.0), radius: float = 1.0):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.center = np.asarray(center, dtype=float)
        self.radius = float(radius)

    def __repr__(self) -> str:
        return f"Sphere(center={self.center.tolist()}, radius={self.radius})"

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points)
        diff = pts - self.center
        return np.einsum("ij,ij->i", diff, diff) <= self.radius ** 2

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.center + self.radius * sample_unit_sphere(n, rng)

    def sample_interior(self, n: int, rng: np.random.Generator, **_) -> np.ndarray:
        # Direct sampling beats rejection: uniform direction x cube-root radius.
        if n <= 0:
            return np.empty((0, 3))
        directions = sample_unit_sphere(n, rng)
        radii = self.radius * np.cbrt(rng.uniform(0.0, 1.0, size=n))
        return self.center + directions * radii[:, None]

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        r = np.full(3, self.radius)
        return self.center - r, self.center + r

    @property
    def surface_area(self) -> float:
        return 4.0 * np.pi * self.radius ** 2

    @property
    def volume(self) -> float:
        """Exact volume (used to bypass Monte-Carlo when available)."""
        return 4.0 / 3.0 * np.pi * self.radius ** 3


class AxisAlignedBox(Shape3D):
    """A rectangular box ``[lo, hi]`` aligned with the coordinate axes."""

    def __init__(self, lo=(0.0, 0.0, 0.0), hi=(1.0, 1.0, 1.0)):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if np.any(self.hi <= self.lo):
            raise ValueError("hi must exceed lo on every axis")

    def __repr__(self) -> str:
        return f"AxisAlignedBox(lo={self.lo.tolist()}, hi={self.hi.tolist()})"

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points)
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=1)

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        extent = self.hi - self.lo
        # Six faces, paired by the axis they are perpendicular to.
        face_areas = []
        for axis in range(3):
            other = [a for a in range(3) if a != axis]
            area = extent[other[0]] * extent[other[1]]
            face_areas.extend([area, area])  # lo face, hi face
        counts = multinomial_split(n, face_areas, rng)
        samples = []
        face = 0
        for axis in range(3):
            other = [a for a in range(3) if a != axis]
            for side, fixed in ((0, self.lo[axis]), (1, self.hi[axis])):
                count = counts[face]
                face += 1
                if count == 0:
                    continue
                pts = np.empty((count, 3))
                pts[:, axis] = fixed
                for o in other:
                    pts[:, o] = rng.uniform(self.lo[o], self.hi[o], size=count)
                samples.append(pts)
        if not samples:
            return np.empty((0, 3))
        return np.vstack(samples)

    def sample_interior(self, n: int, rng: np.random.Generator, **_) -> np.ndarray:
        if n <= 0:
            return np.empty((0, 3))
        return rng.uniform(self.lo, self.hi, size=(n, 3))

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.lo.copy(), self.hi.copy()

    @property
    def surface_area(self) -> float:
        ex, ey, ez = self.hi - self.lo
        return 2.0 * (ex * ey + ey * ez + ez * ex)

    @property
    def volume(self) -> float:
        """Exact volume."""
        return float(np.prod(self.hi - self.lo))


class Cylinder(Shape3D):
    """A solid circular cylinder with axis parallel to z."""

    def __init__(self, center=(0.0, 0.0, 0.0), radius: float = 1.0, height: float = 2.0):
        if radius <= 0 or height <= 0:
            raise ValueError("radius and height must be positive")
        self.center = np.asarray(center, dtype=float)
        self.radius = float(radius)
        self.height = float(height)

    def __repr__(self) -> str:
        return (
            f"Cylinder(center={self.center.tolist()}, radius={self.radius}, "
            f"height={self.height})"
        )

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points) - self.center
        radial = pts[:, 0] ** 2 + pts[:, 1] ** 2 <= self.radius ** 2
        axial = np.abs(pts[:, 2]) <= self.height / 2.0
        return radial & axial

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        side_area = 2.0 * np.pi * self.radius * self.height
        cap_area = np.pi * self.radius ** 2
        counts = multinomial_split(n, [side_area, cap_area, cap_area], rng)
        samples = []
        if counts[0]:
            ring = sample_circle(counts[0], rng) * self.radius
            z = rng.uniform(-self.height / 2.0, self.height / 2.0, size=counts[0])
            samples.append(np.column_stack([ring, z]))
        for sign, count in ((1.0, counts[1]), (-1.0, counts[2])):
            if count:
                disk = sample_unit_disk(count, rng) * self.radius
                z = np.full(count, sign * self.height / 2.0)
                samples.append(np.column_stack([disk, z]))
        if not samples:
            return np.empty((0, 3))
        return self.center + np.vstack(samples)

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        half = np.array([self.radius, self.radius, self.height / 2.0])
        return self.center - half, self.center + half

    @property
    def surface_area(self) -> float:
        return 2.0 * np.pi * self.radius * (self.radius + self.height)

    @property
    def volume(self) -> float:
        """Exact volume."""
        return np.pi * self.radius ** 2 * self.height


class Torus(Shape3D):
    """A solid torus in the xy-plane: tube radius ``minor`` around a circle
    of radius ``major``.
    """

    def __init__(self, center=(0.0, 0.0, 0.0), major: float = 2.0, minor: float = 0.5):
        if minor <= 0 or major <= minor:
            raise ValueError("need 0 < minor < major for a ring torus")
        self.center = np.asarray(center, dtype=float)
        self.major = float(major)
        self.minor = float(minor)

    def __repr__(self) -> str:
        return (
            f"Torus(center={self.center.tolist()}, major={self.major}, "
            f"minor={self.minor})"
        )

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points) - self.center
        ring_dist = np.sqrt(pts[:, 0] ** 2 + pts[:, 1] ** 2) - self.major
        return ring_dist ** 2 + pts[:, 2] ** 2 <= self.minor ** 2

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Area-correct torus surface sampling.

        The surface element is proportional to ``major + minor*cos(psi)``
        where ``psi`` is the tube angle, so ``psi`` is drawn by rejection
        against that weight rather than uniformly.
        """
        if n <= 0:
            return np.empty((0, 3))
        phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
        psi = np.empty(n)
        filled = 0
        while filled < n:
            need = n - filled
            candidates = rng.uniform(0.0, 2.0 * np.pi, size=2 * need + 16)
            weight = (self.major + self.minor * np.cos(candidates)) / (
                self.major + self.minor
            )
            keep = candidates[rng.uniform(size=candidates.size) < weight]
            take = min(need, keep.size)
            psi[filled : filled + take] = keep[:take]
            filled += take
        ring = self.major + self.minor * np.cos(psi)
        pts = np.column_stack(
            [ring * np.cos(phi), ring * np.sin(phi), self.minor * np.sin(psi)]
        )
        return self.center + pts

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        reach = np.array(
            [self.major + self.minor, self.major + self.minor, self.minor]
        )
        return self.center - reach, self.center + reach

    @property
    def surface_area(self) -> float:
        return 4.0 * np.pi ** 2 * self.major * self.minor

    @property
    def volume(self) -> float:
        """Exact volume."""
        return 2.0 * np.pi ** 2 * self.major * self.minor ** 2
