"""Underwater terrain region: the Fig. 6 evaluation scenario.

Models an ocean volume between a smooth water surface on top and a bumpy
seabed below, over a rectangular footprint, closed off by four vertical side
walls.  The seabed is a sum of Gaussian bumps generated deterministically
from a seed; the water surface is a gentle sinusoidal swell (or perfectly
flat when ``wave_amplitude`` is zero).
"""

from __future__ import annotations

from functools import cached_property
from typing import Tuple

import numpy as np

from repro.shapes.base import Shape3D
from repro.shapes.sampling import multinomial_split

#: Central-difference step for numeric surface gradients, in region units.
_GRAD_STEP = 1e-4


class UnderwaterTerrain(Shape3D):
    """Ocean volume between a bumpy bottom and a near-flat top surface.

    Parameters
    ----------
    size:
        ``(length_x, length_y)`` footprint of the region; it spans
        ``[0, length_x] x [0, length_y]`` in the xy-plane.
    depth:
        Mean water depth (distance from the z=0 surface to the flat part of
        the seabed).
    bump_count:
        Number of Gaussian seamounts on the bottom.
    bump_height:
        Maximum bump amplitude; capped below ``depth`` so the region never
        pinches shut.
    wave_amplitude:
        Amplitude of the sinusoidal swell on the top surface.
    seed:
        Seed for the deterministic bump layout.
    """

    def __init__(
        self,
        size=(2.0, 2.0),
        depth: float = 0.8,
        bump_count: int = 4,
        bump_height: float = 0.3,
        wave_amplitude: float = 0.03,
        seed: int = 7,
    ):
        self.size = (float(size[0]), float(size[1]))
        if min(self.size) <= 0:
            raise ValueError("footprint dimensions must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        if not 0 <= bump_height < depth:
            raise ValueError("bump_height must be in [0, depth)")
        self.depth = float(depth)
        self.wave_amplitude = float(wave_amplitude)
        rng = np.random.default_rng(seed)
        self._bump_centers = rng.uniform(
            [0.15 * self.size[0], 0.15 * self.size[1]],
            [0.85 * self.size[0], 0.85 * self.size[1]],
            size=(bump_count, 2),
        )
        self._bump_heights = rng.uniform(0.4, 1.0, size=bump_count) * bump_height
        self._bump_widths = rng.uniform(0.08, 0.2, size=bump_count) * min(self.size)

    def __repr__(self) -> str:
        return (
            f"UnderwaterTerrain(size={self.size}, depth={self.depth}, "
            f"bumps={len(self._bump_heights)})"
        )

    # ------------------------------------------------------------------
    # Height fields
    # ------------------------------------------------------------------

    def bottom_height(self, x, y) -> np.ndarray:
        """Seabed elevation ``b(x, y)`` (negative, rises at bumps)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        z = np.full(np.broadcast(x, y).shape, -self.depth)
        for (cx, cy), height, width in zip(
            self._bump_centers, self._bump_heights, self._bump_widths
        ):
            z = z + height * np.exp(
                -((x - cx) ** 2 + (y - cy) ** 2) / (2.0 * width ** 2)
            )
        return z

    def top_height(self, x, y) -> np.ndarray:
        """Water-surface elevation ``s(x, y)`` (a gentle swell around z=0)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        lx, ly = self.size
        swell = np.sin(2.0 * np.pi * x / lx) * np.sin(2.0 * np.pi * y / ly)
        return self.wave_amplitude * swell

    def contains(self, points) -> np.ndarray:
        pts = self._as_points(points)
        x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
        in_footprint = (
            (x >= 0.0) & (x <= self.size[0]) & (y >= 0.0) & (y <= self.size[1])
        )
        result = np.zeros(pts.shape[0], dtype=bool)
        if np.any(in_footprint):
            xs, ys, zs = x[in_footprint], y[in_footprint], z[in_footprint]
            result[in_footprint] = (zs >= self.bottom_height(xs, ys)) & (
                zs <= self.top_height(xs, ys)
            )
        return result

    # ------------------------------------------------------------------
    # Area estimates (cached; used for proportional surface allocation)
    # ------------------------------------------------------------------

    def _sheet_slope_weight(self, x, y, which: str) -> np.ndarray:
        """Area-density weight ``sqrt(1 + |grad f|^2)`` of a height sheet."""
        field = self.bottom_height if which == "bottom" else self.top_height
        h = _GRAD_STEP
        dfdx = (field(x + h, y) - field(x - h, y)) / (2.0 * h)
        dfdy = (field(x, y + h) - field(x, y - h)) / (2.0 * h)
        return np.sqrt(1.0 + dfdx ** 2 + dfdy ** 2)

    @cached_property
    def _area_table(self) -> dict:
        """Numerically estimated areas of the six boundary components."""
        lx, ly = self.size
        grid = 96
        gx = np.linspace(0.0, lx, grid)
        gy = np.linspace(0.0, ly, grid)
        mx, my = np.meshgrid(gx, gy)
        footprint = lx * ly
        areas = {
            "top": float(self._sheet_slope_weight(mx, my, "top").mean()) * footprint,
            "bottom": float(self._sheet_slope_weight(mx, my, "bottom").mean())
            * footprint,
        }
        walls = {
            "wall_x0": (gy, lambda t: (np.zeros_like(t), t)),
            "wall_x1": (gy, lambda t: (np.full_like(t, lx), t)),
            "wall_y0": (gx, lambda t: (t, np.zeros_like(t))),
            "wall_y1": (gx, lambda t: (t, np.full_like(t, ly))),
        }
        for name, (ts, to_xy) in walls.items():
            wx, wy = to_xy(ts)
            heights = self.top_height(wx, wy) - self.bottom_height(wx, wy)
            areas[name] = float(heights.mean()) * float(ts[-1] - ts[0])
        return areas

    @property
    def surface_area(self) -> float:
        return sum(self._area_table.values())

    # ------------------------------------------------------------------
    # Surface sampling
    # ------------------------------------------------------------------

    def _sample_sheet(
        self, n: int, rng: np.random.Generator, which: str
    ) -> np.ndarray:
        """Uniform-by-area sample of the top or bottom height sheet.

        Samples (x, y) uniformly on the footprint and rejects against the
        slope weight so sloped areas receive proportionally more points.
        """
        if n <= 0:
            return np.empty((0, 3))
        lx, ly = self.size
        field = self.bottom_height if which == "bottom" else self.top_height
        # Safe upper bound on the slope weight from a coarse grid scan.
        gx = np.linspace(0.0, lx, 64)
        gy = np.linspace(0.0, ly, 64)
        mx, my = np.meshgrid(gx, gy)
        w_max = float(self._sheet_slope_weight(mx, my, which).max()) * 1.1
        out = np.empty((n, 3))
        filled = 0
        while filled < n:
            need = n - filled
            cx = rng.uniform(0.0, lx, size=2 * need + 16)
            cy = rng.uniform(0.0, ly, size=cx.size)
            weight = self._sheet_slope_weight(cx, cy, which) / w_max
            keep = rng.uniform(size=cx.size) < weight
            kx, ky = cx[keep], cy[keep]
            take = min(need, kx.size)
            out[filled : filled + take, 0] = kx[:take]
            out[filled : filled + take, 1] = ky[:take]
            out[filled : filled + take, 2] = field(kx[:take], ky[:take])
            filled += take
        return out

    def _sample_wall(self, n: int, rng: np.random.Generator, name: str) -> np.ndarray:
        """Uniform-by-area sample of one vertical side wall.

        Rejection on the local water-column height keeps the sample uniform
        over the (curved-top, curved-bottom) wall area.
        """
        if n <= 0:
            return np.empty((0, 3))
        lx, ly = self.size
        along_x = name in ("wall_y0", "wall_y1")
        length = lx if along_x else ly
        fixed = {
            "wall_x0": 0.0,
            "wall_x1": lx,
            "wall_y0": 0.0,
            "wall_y1": ly,
        }[name]
        # Upper bound on the wall height.
        ts = np.linspace(0.0, length, 64)
        wx, wy = (ts, np.full_like(ts, fixed)) if along_x else (np.full_like(ts, fixed), ts)
        h_max = float((self.top_height(wx, wy) - self.bottom_height(wx, wy)).max()) * 1.1
        out = np.empty((n, 3))
        filled = 0
        while filled < n:
            need = n - filled
            t = rng.uniform(0.0, length, size=2 * need + 16)
            cx, cy = (t, np.full_like(t, fixed)) if along_x else (np.full_like(t, fixed), t)
            bottom = self.bottom_height(cx, cy)
            top = self.top_height(cx, cy)
            keep = rng.uniform(size=t.size) < (top - bottom) / h_max
            kx, ky = cx[keep], cy[keep]
            kb, kt = bottom[keep], top[keep]
            take = min(need, kx.size)
            out[filled : filled + take, 0] = kx[:take]
            out[filled : filled + take, 1] = ky[:take]
            out[filled : filled + take, 2] = rng.uniform(kb[:take], kt[:take])
            filled += take
        return out

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        table = self._area_table
        names = list(table.keys())
        counts = multinomial_split(n, [table[k] for k in names], rng)
        pieces = []
        for name, count in zip(names, counts):
            if count == 0:
                continue
            if name in ("top", "bottom"):
                pieces.append(self._sample_sheet(count, rng, name))
            else:
                pieces.append(self._sample_wall(count, rng, name))
        if not pieces:
            return np.empty((0, 3))
        return np.vstack(pieces)

    @property
    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        lo = np.array([0.0, 0.0, -self.depth - _GRAD_STEP])
        hi = np.array([self.size[0], self.size[1], self.wave_amplitude + _GRAD_STEP])
        return lo, hi
