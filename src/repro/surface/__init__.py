"""Triangular boundary-surface construction (Sec. III of the paper).

Turns a group of detected boundary nodes into a locally planarized
2-manifold triangular mesh in five localized steps:

I.   landmark election (k-hop separation) and combinatorial Voronoi cells
     (:mod:`repro.surface.landmarks`);
II.  Combinatorial Delaunay Graph from adjacent cells
     (:mod:`repro.surface.cdg`);
III. Combinatorial Delaunay Map via the shortest-path validity test
     (:mod:`repro.surface.cdm`);
IV.  triangulation completion with the crossing-avoidance drop rule
     (:mod:`repro.surface.triangulation`);
V.   edge flips so no edge carries more than two triangular faces
     (:mod:`repro.surface.edgeflip`).

:class:`repro.surface.pipeline.SurfaceBuilder` chains all five.
"""

from repro.surface.cdg import build_cdg
from repro.surface.cdm import CDMResult, build_cdm
from repro.surface.edgeflip import edge_flip
from repro.surface.holepatch import patch_holes
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks
from repro.surface.mesh import TriangularMesh
from repro.surface.pipeline import (
    SurfaceBuildRecord,
    SurfaceBuilder,
    SurfaceConfig,
    build_boundary_surfaces,
)
from repro.surface.triangulation import complete_triangulation

__all__ = [
    "TriangularMesh",
    "elect_landmarks",
    "assign_voronoi_cells",
    "build_cdg",
    "build_cdm",
    "CDMResult",
    "complete_triangulation",
    "edge_flip",
    "patch_holes",
    "SurfaceBuilder",
    "SurfaceBuildRecord",
    "SurfaceConfig",
    "build_boundary_surfaces",
]
