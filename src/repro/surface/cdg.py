"""Step II: Combinatorial Delaunay Graph (CDG).

Each non-landmark boundary node checks whether any of its one-hop boundary
neighbors is associated with a different landmark; if so, the two landmarks
are *neighboring* and an edge between them enters the CDG -- the dual of
the combinatorial Voronoi cells from Step I.  The CDG is generally not
planar (Fig. 1(d)); Step III prunes it into the planar CDM.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.surface.mesh import Edge, edge_key


def build_cdg(
    graph: NetworkGraph,
    group: Iterable[int],
    cells: Dict[int, int],
) -> Set[Edge]:
    """Landmark adjacency from touching Voronoi cells.

    Parameters
    ----------
    graph:
        Full network connectivity.
    group:
        Boundary node IDs of the surface under construction.
    cells:
        Node -> landmark association from Step I.

    Returns
    -------
    Set of canonical landmark edges.

    Notes
    -----
    Locality: the test at each node inspects only its one-hop neighbors'
    cell labels, one beacon round in a real deployment.
    """
    members: Set[int] = set(int(g) for g in group)
    edges: Set[Edge] = set()
    for node in sorted(members):
        own = cells.get(node)
        if own is None:
            continue
        for nbr in graph.neighbors(node):
            nbr = int(nbr)
            if nbr not in members:
                continue
            other = cells.get(nbr)
            if other is None or other == own:
                continue
            edges.add(edge_key(own, other))
    return edges
