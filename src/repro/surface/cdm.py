"""Step III: Combinatorial Delaunay Map (CDM).

A CDG edge between landmarks *i* and *j* survives into the CDM iff the
shortest boundary path from *i* to *j* satisfies two conditions (Sec. III):

1. every node on the path is associated with *i* or *j* only, and
2. the path visits *i*'s nodes first, then *j*'s, without interleaving.

Funke and Milosavljević proved the resulting graph planar in 2D; the paper
extends the construction to 3D boundary surfaces where it yields a locally
planarized graph.  Boundary nodes on an accepted path record that they lie
on a landmark shortest path -- Step IV's drop rule consults those marks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.network.graph import NetworkGraph
from repro.surface.mesh import Edge, edge_key


@dataclass
class CDMResult:
    """Output of the CDM construction.

    Attributes
    ----------
    edges:
        CDG edges that passed the path validity test.
    paths:
        Accepted edge -> the realizing shortest path (landmark endpoints
        included).
    on_path:
        Boundary nodes marked as lying on the shortest path between two
        connected landmarks (intermediate nodes of accepted paths).
    rejected:
        CDG edges that failed the test, for diagnostics.
    """

    edges: Set[Edge] = field(default_factory=set)
    paths: Dict[Edge, List[int]] = field(default_factory=dict)
    on_path: Set[int] = field(default_factory=set)
    rejected: Set[Edge] = field(default_factory=set)


def path_is_valid(path: List[int], cells: Dict[int, int], i: int, j: int) -> bool:
    """The two CDM acceptance conditions for a path from ``i`` to ``j``."""
    labels = [cells.get(node) for node in path]
    if any(label not in (i, j) for label in labels):
        return False
    # Non-interleaved: all i-cell nodes form a prefix, j-cell nodes a suffix.
    switched = False
    for label in labels:
        if label == j:
            switched = True
        elif switched:  # an i-cell node after the first j-cell node
            return False
    return True


def build_cdm(
    graph: NetworkGraph,
    group: Iterable[int],
    cells: Dict[int, int],
    cdg_edges: Set[Edge],
) -> CDMResult:
    """Filter the CDG into the planar CDM via the path validity test.

    Shortest paths are computed within the boundary group only ("based on
    the identified boundary nodes"), with deterministic lowest-ID
    tie-breaking so both endpoints -- and the message-level implementation
    -- agree on the same path.
    """
    members: Set[int] = set(int(g) for g in group)
    result = CDMResult()
    for i, j in sorted(cdg_edges):
        path = graph.shortest_path(i, j, within=members)
        if path is not None and path_is_valid(path, cells, i, j):
            key = edge_key(i, j)
            result.edges.add(key)
            result.paths[key] = path
            result.on_path.update(path[1:-1])
        else:
            result.rejected.add(edge_key(i, j))
    return result
