"""Step V: edge flips toward a 2-manifold mesh.

After Step IV an edge may still carry three triangular faces (Fig. 5:
edge AB with apex nodes C, D, E).  Such an edge is removed and replaced by
the two *shortest* edges among the apex pairs -- lengths measured in hops
between landmarks over the boundary subgraph, keeping the step
connectivity-only.  The transformation repeats until no edge has more than
two faces.

Two engineering details beyond the paper's description:

* Edges with four or more faces (possible in degenerate landmark layouts)
  are handled by the natural generalization -- remove the edge and connect
  its apex vertices with a minimum spanning tree under hop length, which
  for three apexes is exactly "the two shortest edges".
* A flip never (re-)introduces an edge that a previous flip removed.  Each
  iteration removes one edge and additions are bounded by the pairs never
  removed before, so termination is guaranteed rather than assumed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.surface.mesh import Edge, TriangularMesh, edge_key


def _hop_length_fn(graph: NetworkGraph, group: Set[int]) -> Callable[[int, int], int]:
    """Hop distance between two landmarks within the boundary subgraph.

    Unreachable pairs (which should not occur inside one group) get a large
    finite length so they sort last among candidate edges.
    """
    cache: Dict[Edge, int] = {}
    expanded: Set[int] = set()

    def hop_length(u: int, v: int) -> int:
        key = edge_key(u, v)
        if key not in cache and u not in expanded and v not in expanded:
            # Cache the whole BFS front for u to amortize repeated queries.
            hops = graph.bfs_hops([u], within=group)
            for node, dist in hops.items():
                if node != u:
                    cache[edge_key(u, node)] = dist
            expanded.add(u)
        return cache.get(key, len(group) + 1)

    return hop_length


def _apex_mst_edges(
    apexes: List[int], hop_length: Callable[[int, int], int]
) -> List[Edge]:
    """Shortest edges connecting the apex vertices (Prim's MST).

    For the paper's three-face case this returns exactly "the two shortest
    edges" among the three apex pairs: dropping the longest edge of a
    triangle is the same as its minimum spanning tree.
    """
    if len(apexes) < 2:
        return []
    remaining = set(apexes[1:])
    in_tree = {apexes[0]}
    chosen: List[Edge] = []
    while remaining:
        best: Optional[Tuple[int, int, int]] = None  # (length, u, v)
        for u in sorted(in_tree):
            for v in sorted(remaining):
                length = hop_length(u, v)
                cand = (length, u, v)
                if best is None or cand < best:
                    best = cand
        assert best is not None
        _, u, v = best
        chosen.append(edge_key(u, v))
        in_tree.add(v)
        remaining.discard(v)
    return chosen


def edge_flip(
    mesh: TriangularMesh,
    graph: NetworkGraph,
    *,
    max_iterations: Optional[int] = None,
) -> TriangularMesh:
    """Apply edge flips until every edge has at most two triangular faces.

    The mesh is modified in place and also returned.

    Raises
    ------
    RuntimeError
        If saturated edges remain when the iteration guard trips (cannot
        happen under the no-readd rule unless ``max_iterations`` is set
        artificially low).
    """
    group = set(mesh.group) if mesh.group else set(mesh.vertices)
    hop_length = _hop_length_fn(graph, group)
    n_vertices = len(mesh.vertices)
    limit = (
        max_iterations
        if max_iterations is not None
        else len(mesh.edges) + n_vertices * n_vertices + 64
    )
    removed: Set[Edge] = set()

    for _ in range(limit):
        saturated = mesh.edges_with_face_count(3)
        if not saturated:
            return mesh
        target = saturated[0]
        u, v = target
        adj = mesh.adjacency()
        apexes = sorted(adj[u] & adj[v])
        mesh.remove_edge(u, v)
        removed.add(target)
        for a, b in _apex_mst_edges(apexes, hop_length):
            key = edge_key(a, b)
            if key in removed or mesh.has_edge(a, b):
                continue
            mesh.add_edge(a, b, hop_length=hop_length(a, b))
    if mesh.edges_with_face_count(3):
        raise RuntimeError("edge flip did not converge within the iteration guard")
    return mesh
