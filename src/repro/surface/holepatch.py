"""Hole patching: closing residual open rings after triangulation.

The crossing-avoidance drop rule of Step IV is conservative, so the
triangulated mesh can retain a few *open* edges (edges with fewer than two
triangular faces) bounding small polygonal holes.  This pass finds cycles
made of open edges and triangulates each by inserting its hop-shortest
missing diagonal, repeating until every edge has two faces (or no further
cycle can be found).  No crossing is possible inside an open hole --
the face is empty by definition -- so the drop rule does not apply here.

This is a completion step the paper does not spell out; without it the
construction of Sec. III stalls a handful of faces short of the closed
2-manifold its Step V is meant to certify.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.network.graph import NetworkGraph
from repro.surface.edgeflip import _hop_length_fn
from repro.surface.mesh import Edge, TriangularMesh, edge_key

#: Upper bound on patch rounds; each round adds one diagonal.
MAX_PATCH_ROUNDS = 256


#: Cycles longer than this are not treated as patchable face holes --
#: genuine un-triangulated polygons are small, and chording a long spurious
#: cycle degrades the mesh instead of closing it.
MAX_HOLE_CYCLE = 8


def _find_open_cycle(open_edges: List[Edge]) -> Optional[List[int]]:
    """The shortest simple cycle in the open-edge graph, if any.

    For every open edge ``(u, v)``, BFS for the shortest alternative
    ``u .. v`` path avoiding that edge; the edge plus the path is a cycle.
    The overall shortest cycle (ties broken lexicographically) is returned,
    provided it does not exceed ``MAX_HOLE_CYCLE`` vertices.  Cost is
    ``O(E^2)`` over the open edges only -- small by construction.
    """
    adjacency: Dict[int, Set[int]] = defaultdict(set)
    for u, v in open_edges:
        adjacency[u].add(v)
        adjacency[v].add(u)

    best: Optional[List[int]] = None
    for u, v in sorted(open_edges):
        # BFS from u to v without using edge (u, v) directly.
        parent: Dict[int, int] = {u: -1}
        queue = [u]
        found = False
        while queue and not found:
            node = queue.pop(0)
            for nxt in sorted(adjacency[node]):
                if node == u and nxt == v:
                    continue
                if nxt in parent:
                    continue
                parent[nxt] = node
                if nxt == v:
                    found = True
                    break
                queue.append(nxt)
        if not found:
            continue
        path = [v]
        while path[-1] != u:
            path.append(parent[path[-1]])
        cycle = list(reversed(path))  # u .. v; closing edge (v, u) implied
        if len(cycle) >= 3 and (best is None or len(cycle) < len(best)):
            best = cycle
            if len(best) == 3:
                break
    if best is not None and len(best) <= MAX_HOLE_CYCLE:
        return best
    return None


def patch_holes(
    mesh: TriangularMesh,
    graph: NetworkGraph,
    *,
    max_rounds: int = MAX_PATCH_ROUNDS,
) -> bool:
    """Insert diagonals until no cycle of open edges remains.

    Returns
    -------
    bool
        True when the mesh ended with every edge on at least two faces
        (holes fully patched); False when open edges remain -- either a
        non-cyclic open structure (a genuinely broken region, e.g. a group
        too sparse to be a closed surface) or the round budget ran out.
    """
    group = set(mesh.group) if mesh.group else set(mesh.vertices)
    hop_length = _hop_length_fn(graph, group)
    for _ in range(max_rounds):
        counts = mesh.edge_face_counts()
        open_edges = sorted(e for e, c in counts.items() if c <= 1)
        if not open_edges:
            return True
        cycle = _find_open_cycle(open_edges)
        if cycle is None:
            return False
        size = len(cycle)
        best: Optional[tuple] = None  # (hops, u, v)
        for a in range(size):
            for b in range(a + 2, size):
                if a == 0 and b == size - 1:
                    continue  # adjacent around the cycle
                u, v = cycle[a], cycle[b]
                if mesh.has_edge(u, v):
                    continue
                candidate = (hop_length(u, v), *edge_key(u, v))
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            # Cycle is a triangle already fully chorded; nothing to add.
            return False
        hops, u, v = best
        mesh.add_edge(u, v, hop_length=hops)
    return not any(c <= 1 for c in mesh.edge_face_counts().values())
