"""Step I: landmark election and combinatorial Voronoi cells.

A subset of boundary nodes is elected as landmarks such that any two
landmarks are at least ``k`` hops apart within the boundary subgraph; ``k``
controls the mesh fineness (3..5 in the paper).  Every other boundary node
then associates with its hop-closest landmark, breaking ties toward the
smallest landmark ID -- producing approximate Voronoi cells on the boundary
surface (Fig. 1(c)).

The election here is the deterministic greedy k-hop maximal independent
set: nodes are considered in increasing ID order and selected unless an
already-selected landmark sits within ``k - 1`` hops.  This is exactly the
fixed point the distributed ID-priority election of
:mod:`repro.runtime.protocols.election` converges to.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.network.graph import NetworkGraph


def elect_landmarks(
    graph: NetworkGraph,
    group: Iterable[int],
    k: int = 3,
) -> List[int]:
    """Elect landmarks within one boundary group.

    Parameters
    ----------
    graph:
        Full network connectivity.
    group:
        Boundary node IDs of one boundary surface (one connected component
        of the boundary subgraph).
    k:
        Minimum pairwise landmark hop distance (within the group).

    Returns
    -------
    Sorted landmark IDs.  Every group member is within ``k - 1`` hops of a
    landmark (maximality), and no two landmarks are closer than ``k`` hops
    (independence).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    members: Set[int] = set(int(g) for g in group)
    landmarks: List[int] = []
    covered: Set[int] = set()
    for node in sorted(members):
        if node in covered:
            continue
        landmarks.append(node)
        # Suppress any node within k-1 hops: a later candidate there would
        # be closer than k hops to this landmark.
        reached = graph.bfs_hops([node], within=members, max_hops=k - 1)
        covered.update(reached.keys())
    return landmarks


def assign_voronoi_cells(
    graph: NetworkGraph,
    group: Iterable[int],
    landmarks: Iterable[int],
) -> Dict[int, int]:
    """Associate every group node with its closest landmark.

    Ties (equal hop distance to several landmarks) go to the landmark with
    the smallest ID, the paper's tiebreaker.

    Returns
    -------
    dict mapping every reachable group node to its landmark ID.
    """
    members: Set[int] = set(int(g) for g in group)
    best: Dict[int, Tuple[int, int]] = {}
    for landmark in sorted(int(l) for l in landmarks):
        if landmark not in members:
            raise ValueError(f"landmark {landmark} is not in the group")
        hops = graph.bfs_hops([landmark], within=members)
        for node, dist in hops.items():
            incumbent = best.get(node)
            if incumbent is None or (dist, landmark) < incumbent:
                best[node] = (dist, landmark)
    return {node: landmark for node, (_, landmark) in best.items()}


def cell_sizes(cells: Dict[int, int]) -> Dict[int, int]:
    """Number of associated nodes per landmark (landmark itself included)."""
    sizes: Dict[int, int] = {}
    for landmark in cells.values():
        sizes[landmark] = sizes.get(landmark, 0) + 1
    return sizes
