"""Landmark-level triangular mesh data structure.

The surface-construction pipeline produces a graph over landmark nodes whose
faces are triangles.  :class:`TriangularMesh` stores the vertices (landmark
node IDs), the virtual edges with the boundary-node paths realizing them,
and per-edge hop lengths, and provides the topological diagnostics the
paper's claims are checked against: triangle enumeration, per-edge face
counts, 2-manifoldness, and the Euler characteristic/genus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

Edge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Canonical (sorted) form of an undirected edge."""
    if u == v:
        raise ValueError("self-loops are not valid mesh edges")
    return (u, v) if u < v else (v, u)


@dataclass
class TriangularMesh:
    """A landmark mesh over one boundary surface.

    Attributes
    ----------
    vertices:
        Landmark node IDs (sorted).
    edges:
        Canonical virtual edges between landmarks.
    paths:
        For edges realized by a boundary-node shortest path, the full node
        path including both landmark endpoints.  Edges introduced by the
        edge-flip step may have no recorded path.
    hop_lengths:
        Hop distance between the endpoints of each edge (the
        connectivity-only notion of edge length used by edge flips).
    group:
        The boundary-node group this mesh was built from.
    """

    vertices: List[int]
    edges: Set[Edge] = field(default_factory=set)
    paths: Dict[Edge, List[int]] = field(default_factory=dict)
    hop_lengths: Dict[Edge, int] = field(default_factory=dict)
    group: List[int] = field(default_factory=list)

    def __post_init__(self):
        self.vertices = sorted(set(self.vertices))
        vertex_set = set(self.vertices)
        for u, v in self.edges:
            if u not in vertex_set or v not in vertex_set:
                raise ValueError(f"edge ({u}, {v}) references unknown vertex")

    # ------------------------------------------------------------------
    # Mutation (used by construction steps)
    # ------------------------------------------------------------------

    def add_edge(
        self,
        u: int,
        v: int,
        *,
        path: Optional[List[int]] = None,
        hop_length: Optional[int] = None,
    ) -> None:
        """Insert a virtual edge (idempotent)."""
        key = edge_key(u, v)
        self.edges.add(key)
        if path is not None:
            self.paths[key] = list(path)
            if hop_length is None:
                hop_length = len(path) - 1
        if hop_length is not None:
            self.hop_lengths[key] = int(hop_length)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete a virtual edge and its bookkeeping."""
        key = edge_key(u, v)
        self.edges.discard(key)
        self.paths.pop(key, None)
        self.hop_lengths.pop(key, None)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the two landmarks are connected by a virtual edge."""
        return edge_key(u, v) in self.edges

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def adjacency(self) -> Dict[int, Set[int]]:
        """Vertex -> set of mesh-adjacent vertices."""
        adj: Dict[int, Set[int]] = {v: set() for v in self.vertices}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def triangles(self) -> List[Tuple[int, int, int]]:
        """All triangles (3-cliques) of the landmark graph, sorted.

        After the construction pipeline the 3-cliques are exactly the mesh
        faces; the edge-flip step exists precisely to make that reading
        consistent (no edge on more than two triangles).
        """
        adj = self.adjacency()
        found: Set[Tuple[int, int, int]] = set()
        for u, v in self.edges:
            for w in adj[u] & adj[v]:
                tri = tuple(sorted((u, v, w)))
                found.add(tri)  # type: ignore[arg-type]
        return sorted(found)

    def edge_face_counts(self) -> Dict[Edge, int]:
        """Number of triangles incident to every edge."""
        counts: Dict[Edge, int] = {e: 0 for e in self.edges}
        for a, b, c in self.triangles():
            for pair in ((a, b), (a, c), (b, c)):
                counts[edge_key(*pair)] += 1
        return counts

    def edges_with_face_count(self, minimum: int) -> List[Edge]:
        """Edges whose triangle count is at least ``minimum``."""
        return sorted(e for e, c in self.edge_face_counts().items() if c >= minimum)

    def is_two_manifold(self) -> bool:
        """Whether every edge lies on exactly two triangles.

        This is the closed-2-manifold condition the paper's Step V
        establishes; open meshes (edges on one triangle) and over-saturated
        edges (three or more) both fail.
        """
        counts = self.edge_face_counts()
        if not counts:
            return False
        return all(c == 2 for c in counts.values())

    def euler_characteristic(self) -> int:
        """``V - E + F`` with F the triangle count."""
        return len(self.vertices) - len(self.edges) + len(self.triangles())

    def genus(self) -> Optional[float]:
        """Surface genus ``(2 - chi) / 2``; None when not an integer.

        Only meaningful for closed 2-manifold meshes: a sphere-like
        boundary has genus 0, a torus-like one genus 1.
        """
        chi = self.euler_characteristic()
        genus_twice = 2 - chi
        if genus_twice % 2 != 0:
            return None
        return genus_twice / 2

    def covered_nodes(self) -> Set[int]:
        """Boundary nodes participating in the mesh (landmarks + path nodes)."""
        covered: Set[int] = set(self.vertices)
        for path in self.paths.values():
            covered.update(path)
        return covered

    def summary(self) -> str:
        """One-line diagnostic used by examples and benches."""
        tris = self.triangles()
        return (
            f"mesh: V={len(self.vertices)} E={len(self.edges)} F={len(tris)} "
            f"chi={self.euler_characteristic()} "
            f"2-manifold={self.is_two_manifold()}"
        )
