"""The five-step surface construction pipeline (Sec. III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.network.graph import NetworkGraph
from repro.surface.cdg import build_cdg
from repro.surface.cdm import build_cdm
from repro.surface.edgeflip import edge_flip
from repro.surface.holepatch import patch_holes
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks
from repro.surface.mesh import TriangularMesh
from repro.surface.triangulation import complete_triangulation


@dataclass(frozen=True)
class SurfaceConfig:
    """Surface-construction parameters.

    Attributes
    ----------
    k:
        Landmark separation in hops; "usually set between 3 to 5" in the
        paper.  Larger values give coarser meshes and leave more boundary
        nodes outside the mesh surface.  The default of 4 yields closed
        2-manifolds on the deployment densities this library ships; k=3
        needs denser boundary sampling to close every face.
    candidate_radius:
        Maximum landmark hop distance tried during triangulation
        completion; None means ``2 * k``.
    min_landmarks:
        Groups electing fewer landmarks than this are skipped -- below four
        landmarks no closed triangular surface exists.
    apply_edge_flip:
        Whether to run Step V (disable only for ablations).
    apply_hole_patching:
        Whether to close residual open rings (see
        :mod:`repro.surface.holepatch`); disable only for ablations.
    finalize_rounds:
        Edge-flip / hole-patch alternations; each pass can expose work for
        the other, and two rounds close every case seen in practice.
    adaptive_k:
        When a group elects fewer than ``min_landmarks`` landmarks at
        spacing ``k`` (typical for small hole boundaries), retry with
        ``k-1, k-2, .., 2`` before giving up.  Matches the paper's remark
        that ``k`` is chosen "according to the needs of specific
        applications": a small hole needs a finer mesh.
    quality_retry:
        When the mesh at spacing ``k`` is not fully closed (some edge not
        on exactly two faces), also build at ``k+1`` and ``k+2`` and keep
        the best mesh.  Coarser landmarks often close surfaces that a fine
        spacing leaves ragged, at the cost of mesh resolution.
    """

    k: int = 4
    candidate_radius: Optional[int] = None
    min_landmarks: int = 4
    apply_edge_flip: bool = True
    apply_hole_patching: bool = True
    finalize_rounds: int = 6
    adaptive_k: bool = True
    quality_retry: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.min_landmarks < 4:
            raise ValueError("min_landmarks must be at least 4")
        if self.candidate_radius is not None and self.candidate_radius < 1:
            raise ValueError("candidate_radius must be positive")
        if self.finalize_rounds < 1:
            raise ValueError("finalize_rounds must be at least 1")

    @property
    def effective_candidate_radius(self) -> int:
        """Candidate radius actually used (defaults to ``2 * k``)."""
        return self.candidate_radius if self.candidate_radius is not None else 2 * self.k


@dataclass
class SurfaceBuildRecord:
    """Mesh plus the intermediate artifacts of its construction.

    Keeping the intermediates allows the benches to report exactly what the
    paper's Figs. 1(c)-1(f) show: landmarks, CDG (with crossing edges),
    CDM, and the final triangular mesh.
    """

    mesh: TriangularMesh
    landmarks: List[int]
    cells: Dict[int, int]
    cdg_edges: set
    cdm_edges: set
    cdm_rejected: set


class SurfaceBuilder:
    """Builds one triangular mesh per boundary group."""

    def __init__(self, config: SurfaceConfig = SurfaceConfig()):
        self.config = config

    @staticmethod
    def _two_faced_fraction(record: "SurfaceBuildRecord") -> float:
        counts = record.mesh.edge_face_counts()
        if not counts:
            return 0.0
        return sum(1 for c in counts.values() if c == 2) / len(counts)

    def build_one(
        self, graph: NetworkGraph, group: Iterable[int]
    ) -> Optional[SurfaceBuildRecord]:
        """Run Steps I-V (plus hole patching) on a single boundary group.

        Returns None when the group is too small to carry a closed surface
        (fewer than ``min_landmarks`` landmarks elected).  With
        ``quality_retry`` enabled, coarser spacings are also attempted when
        the first mesh does not close, and the best mesh wins.
        """
        best = self._build_at_k(graph, group, self.config.k)
        if not self.config.quality_retry:
            return best
        best_score = self._two_faced_fraction(best) if best else 0.0
        k = self.config.k
        while best_score < 1.0 and k < self.config.k + 2:
            k += 1
            candidate = self._build_at_k(graph, group, k)
            if candidate is None:
                continue
            score = self._two_faced_fraction(candidate)
            if score > best_score or best is None:
                best, best_score = candidate, score
        return best

    def _build_at_k(
        self, graph: NetworkGraph, group: Iterable[int], k: int
    ) -> Optional[SurfaceBuildRecord]:
        """One full construction attempt at landmark spacing ``k``."""
        group = sorted(int(g) for g in group)
        landmarks = elect_landmarks(graph, group, k)
        while (
            self.config.adaptive_k
            and len(landmarks) < self.config.min_landmarks
            and k > 2
        ):
            k -= 1
            landmarks = elect_landmarks(graph, group, k)
        if len(landmarks) < self.config.min_landmarks:
            return None
        cells = assign_voronoi_cells(graph, group, landmarks)
        cdg_edges = build_cdg(graph, group, cells)
        cdm = build_cdm(graph, group, cells, cdg_edges)
        candidate_radius = (
            self.config.candidate_radius
            if self.config.candidate_radius is not None
            else 2 * k
        )
        edges, paths = complete_triangulation(
            graph,
            group,
            landmarks,
            cdm,
            candidate_radius=candidate_radius,
        )

        mesh = TriangularMesh(vertices=landmarks, group=list(group))
        for u, v in sorted(edges):
            mesh.add_edge(u, v, path=paths.get((u, v)))

        for _ in range(self.config.finalize_rounds):
            dirty = False
            if self.config.apply_edge_flip and mesh.edges_with_face_count(3):
                edge_flip(mesh, graph)
                dirty = True
            if self.config.apply_hole_patching and any(
                c <= 1 for c in mesh.edge_face_counts().values()
            ):
                patch_holes(mesh, graph)
                dirty = True
            if not dirty:
                break
        return SurfaceBuildRecord(
            mesh=mesh,
            landmarks=landmarks,
            cells=cells,
            cdg_edges=cdg_edges,
            cdm_edges=set(cdm.edges),
            cdm_rejected=set(cdm.rejected),
        )

    def build(
        self, graph: NetworkGraph, groups: Iterable[Iterable[int]]
    ) -> List[TriangularMesh]:
        """Build meshes for all groups large enough to carry one."""
        meshes: List[TriangularMesh] = []
        for group in groups:
            record = self.build_one(graph, group)
            if record is not None:
                meshes.append(record.mesh)
        return meshes

    def build_records(
        self, graph: NetworkGraph, groups: Iterable[Iterable[int]]
    ) -> List[SurfaceBuildRecord]:
        """Like :meth:`build` but keeps the per-step intermediates."""
        records: List[SurfaceBuildRecord] = []
        for group in groups:
            record = self.build_one(graph, group)
            if record is not None:
                records.append(record)
        return records


def build_boundary_surfaces(
    graph: NetworkGraph,
    groups: Iterable[Iterable[int]],
    config: SurfaceConfig = SurfaceConfig(),
) -> List[TriangularMesh]:
    """Functional one-shot form of :class:`SurfaceBuilder`."""
    return SurfaceBuilder(config).build(graph, groups)
