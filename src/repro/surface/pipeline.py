"""The five-step surface construction pipeline (Sec. III)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.network.graph import NetworkGraph
from repro.observability.tracer import ensure_tracer
from repro.surface.cdg import build_cdg
from repro.surface.cdm import build_cdm
from repro.surface.edgeflip import edge_flip
from repro.surface.holepatch import patch_holes
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks
from repro.surface.mesh import TriangularMesh
from repro.surface.triangulation import complete_triangulation


@dataclass(frozen=True)
class SurfaceConfig:
    """Surface-construction parameters.

    Attributes
    ----------
    k:
        Landmark separation in hops; "usually set between 3 to 5" in the
        paper.  Larger values give coarser meshes and leave more boundary
        nodes outside the mesh surface.  The default of 4 yields closed
        2-manifolds on the deployment densities this library ships; k=3
        needs denser boundary sampling to close every face.
    candidate_radius:
        Maximum landmark hop distance tried during triangulation
        completion; None means ``2 * k``.
    min_landmarks:
        Groups electing fewer landmarks than this are skipped -- below four
        landmarks no closed triangular surface exists.
    apply_edge_flip:
        Whether to run Step V (disable only for ablations).
    apply_hole_patching:
        Whether to close residual open rings (see
        :mod:`repro.surface.holepatch`); disable only for ablations.
    finalize_rounds:
        Edge-flip / hole-patch alternations; each pass can expose work for
        the other, and two rounds close every case seen in practice.
    adaptive_k:
        When a group elects fewer than ``min_landmarks`` landmarks at
        spacing ``k`` (typical for small hole boundaries), retry with
        ``k-1, k-2, .., 2`` before giving up.  Matches the paper's remark
        that ``k`` is chosen "according to the needs of specific
        applications": a small hole needs a finer mesh.
    quality_retry:
        When the mesh at spacing ``k`` is not fully closed (some edge not
        on exactly two faces), also build at ``k+1`` and ``k+2`` and keep
        the best mesh.  Coarser landmarks often close surfaces that a fine
        spacing leaves ragged, at the cost of mesh resolution.
    """

    k: int = 4
    candidate_radius: Optional[int] = None
    min_landmarks: int = 4
    apply_edge_flip: bool = True
    apply_hole_patching: bool = True
    finalize_rounds: int = 6
    adaptive_k: bool = True
    quality_retry: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.min_landmarks < 4:
            raise ValueError("min_landmarks must be at least 4")
        if self.candidate_radius is not None and self.candidate_radius < 1:
            raise ValueError("candidate_radius must be positive")
        if self.finalize_rounds < 1:
            raise ValueError("finalize_rounds must be at least 1")

    @property
    def effective_candidate_radius(self) -> int:
        """Candidate radius actually used (defaults to ``2 * k``)."""
        return self.candidate_radius if self.candidate_radius is not None else 2 * self.k


@dataclass
class SurfaceBuildRecord:
    """Mesh plus the intermediate artifacts of its construction.

    Keeping the intermediates allows the benches to report exactly what the
    paper's Figs. 1(c)-1(f) show: landmarks, CDG (with crossing edges),
    CDM, and the final triangular mesh.  ``effective_k`` is the landmark
    spacing the mesh was actually built at -- after any ``adaptive_k``
    decay from the requested spacing.
    """

    mesh: TriangularMesh
    landmarks: List[int]
    cells: Dict[int, int]
    cdg_edges: set
    cdm_edges: set
    cdm_rejected: set
    effective_k: int = 0


class SurfaceBuilder:
    """Builds one triangular mesh per boundary group.

    Pass a :class:`repro.observability.Tracer` to record one
    ``surface.group`` span per group with one ``surface.attempt`` child
    per spacing tried, each stating the requested and effective (post
    ``adaptive_k`` decay) spacing and why it was built, skipped, or
    rejected.
    """

    def __init__(self, config: SurfaceConfig = SurfaceConfig(), tracer=None):
        self.config = config
        self._tracer = ensure_tracer(tracer)

    @staticmethod
    def _two_faced_fraction(record: "SurfaceBuildRecord") -> float:
        counts = record.mesh.edge_face_counts()
        if not counts:
            return 0.0
        return sum(1 for c in counts.values() if c == 2) / len(counts)

    def build_one(
        self, graph: NetworkGraph, group: Iterable[int]
    ) -> Optional[SurfaceBuildRecord]:
        """Run Steps I-V (plus hole patching) on a single boundary group.

        Returns None when the group is too small to carry a closed surface
        (fewer than ``min_landmarks`` landmarks elected).  With
        ``quality_retry`` enabled, coarser spacings are also attempted when
        the first mesh does not close, and the best mesh wins.  Each
        *effective* spacing is constructed at most once per group: a retry
        at ``k+1`` whose ``adaptive_k`` decay lands back on an
        already-built spacing is skipped instead of silently rebuilding
        the identical mesh.
        """
        tracer = self._tracer
        group = sorted(int(g) for g in group)
        with tracer.span(
            "surface.group", n_nodes=len(group), requested_k=self.config.k
        ) as gspan:
            tried: Set[int] = set()
            election_cache: Dict[int, List[int]] = {}
            best = self._build_at_k(
                graph, group, self.config.k,
                tried=tried, election_cache=election_cache,
            )
            if self.config.quality_retry:
                best_score = self._two_faced_fraction(best) if best else 0.0
                k = self.config.k
                while best_score < 1.0 and k < self.config.k + 2:
                    k += 1
                    candidate = self._build_at_k(
                        graph, group, k,
                        tried=tried, election_cache=election_cache,
                    )
                    if candidate is None:
                        continue
                    score = self._two_faced_fraction(candidate)
                    if score > best_score or best is None:
                        tracer.event(
                            "quality_retry_accepted",
                            effective_k=candidate.effective_k,
                            score=score,
                            previous_score=best_score,
                        )
                        best, best_score = candidate, score
                    else:
                        tracer.event(
                            "quality_retry_rejected",
                            effective_k=candidate.effective_k,
                            score=score,
                            best_score=best_score,
                        )
            if tracer.enabled:
                gspan.set("built", best is not None)
                if best is not None:
                    gspan.set("chosen_k", best.effective_k)
                    gspan.set("two_faced_fraction", self._two_faced_fraction(best))
        return best

    def _build_at_k(
        self,
        graph: NetworkGraph,
        group: Iterable[int],
        k: int,
        *,
        tried: Optional[Set[int]] = None,
        election_cache: Optional[Dict[int, List[int]]] = None,
    ) -> Optional[SurfaceBuildRecord]:
        """One full construction attempt at landmark spacing ``k``.

        ``tried`` collects the effective spacings already *constructed*
        for this group; when the ``adaptive_k`` decay lands on one of
        them, the attempt is skipped (the mesh would be identical).
        ``election_cache`` memoizes ``elect_landmarks`` per spacing so the
        decay walk never re-elects a spacing it has already seen.
        """
        group = sorted(int(g) for g in group)
        with self._tracer.span("surface.attempt", requested_k=k) as span:
            landmarks = self._elect(graph, group, k, election_cache)
            while (
                self.config.adaptive_k
                and len(landmarks) < self.config.min_landmarks
                and k > 2
            ):
                k -= 1
                landmarks = self._elect(graph, group, k, election_cache)
            span.set("effective_k", k)
            span.set("n_landmarks", len(landmarks))
            if len(landmarks) < self.config.min_landmarks:
                span.set("outcome", "too_few_landmarks")
                return None
            if tried is not None:
                if k in tried:
                    span.set("outcome", "duplicate_spacing")
                    return None
                tried.add(k)
            cells = assign_voronoi_cells(graph, group, landmarks)
            cdg_edges = build_cdg(graph, group, cells)
            cdm = build_cdm(graph, group, cells, cdg_edges)
            candidate_radius = (
                self.config.candidate_radius
                if self.config.candidate_radius is not None
                else 2 * k
            )
            edges, paths = complete_triangulation(
                graph,
                group,
                landmarks,
                cdm,
                candidate_radius=candidate_radius,
            )

            mesh = TriangularMesh(vertices=landmarks, group=list(group))
            for u, v in sorted(edges):
                mesh.add_edge(u, v, path=paths.get((u, v)))

            for _ in range(self.config.finalize_rounds):
                dirty = False
                if self.config.apply_edge_flip and mesh.edges_with_face_count(3):
                    edge_flip(mesh, graph)
                    dirty = True
                if self.config.apply_hole_patching and any(
                    c <= 1 for c in mesh.edge_face_counts().values()
                ):
                    patch_holes(mesh, graph)
                    dirty = True
                if not dirty:
                    break
            if self._tracer.enabled:
                span.set("outcome", "built")
                span.set("n_cdg_edges", len(cdg_edges))
                span.set("n_cdm_edges", len(cdm.edges))
                span.set("n_mesh_edges", len(mesh.edges))
            return SurfaceBuildRecord(
                mesh=mesh,
                landmarks=landmarks,
                cells=cells,
                cdg_edges=cdg_edges,
                cdm_edges=set(cdm.edges),
                cdm_rejected=set(cdm.rejected),
                effective_k=k,
            )

    @staticmethod
    def _elect(
        graph: NetworkGraph,
        group: List[int],
        k: int,
        cache: Optional[Dict[int, List[int]]],
    ) -> List[int]:
        """Landmark election memoized per spacing (pure in graph/group/k)."""
        if cache is None:
            return elect_landmarks(graph, group, k)
        if k not in cache:
            cache[k] = elect_landmarks(graph, group, k)
        return cache[k]

    def build(
        self, graph: NetworkGraph, groups: Iterable[Iterable[int]]
    ) -> List[TriangularMesh]:
        """Build meshes for all groups large enough to carry one."""
        meshes: List[TriangularMesh] = []
        for group in groups:
            record = self.build_one(graph, group)
            if record is not None:
                meshes.append(record.mesh)
        return meshes

    def build_records(
        self, graph: NetworkGraph, groups: Iterable[Iterable[int]]
    ) -> List[SurfaceBuildRecord]:
        """Like :meth:`build` but keeps the per-step intermediates."""
        records: List[SurfaceBuildRecord] = []
        for group in groups:
            record = self.build_one(graph, group)
            if record is not None:
                records.append(record)
        return records


def build_boundary_surfaces(
    graph: NetworkGraph,
    groups: Iterable[Iterable[int]],
    config: SurfaceConfig = SurfaceConfig(),
) -> List[TriangularMesh]:
    """Functional one-shot form of :class:`SurfaceBuilder`."""
    return SurfaceBuilder(config).build(graph, groups)
